//! Obfuscated-library mapping (paper §3.4).
//!
//! "When library code included in our semantic model is obfuscated … we
//! pre-process the code to generate a map between the obfuscated identifier
//! and the original one. For this, we compare the signatures of the method
//! contained in our semantic model to identify the class and method that
//! has the most similar signature patterns."
//!
//! The *shape signature* of a method — return/parameter types with class
//! names erased — survives identifier renaming ([`MethodRef::shape`]), so
//! an obfuscated bundled-library class is matched against the reference
//! library classes ([`crate::stubs::library_reference`]) by comparing
//! shape multisets. Methods then map by unique shape within the class.
//! An ambiguous mapping degrades signatures to wildcards rather than
//! failing, as the paper notes.

use extractocol_ir::obfuscate::{apply_map, ObfuscationMap};
use extractocol_ir::{Apk, Class, MethodRef};
use std::collections::{BTreeMap, HashMap};

/// Minimum multiset-overlap score to accept a class match.
const MIN_SCORE: f64 = 0.6;

/// The inferred map, in obfuscated → original direction.
#[derive(Debug, Default, Clone)]
pub struct LibraryMap {
    /// Obfuscated class name → reference class name.
    pub classes: BTreeMap<String, String>,
    /// `(obfuscated class, obfuscated method, arity)` → reference name.
    pub methods: BTreeMap<(String, String, usize), String>,
}

impl LibraryMap {
    /// True when nothing was inferred (the common "libraries left
    /// unobfuscated" case, §3.4).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

fn shape_of(class: &str, m: &extractocol_ir::Method) -> String {
    MethodRef {
        class: class.to_string(),
        name: m.name.clone(),
        params: m.params.clone(),
        ret: m.ret.clone(),
    }
    .shape()
}

/// The level-0 shape multiset of a class's methods (constructors included —
/// their names are stable but their shapes still discriminate).
fn shape_multiset(c: &Class) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for m in &c.methods {
        *out.entry(shape_of(&c.name, m)).or_insert(0) += 1;
    }
    out
}

/// Canonical string of a level-0 multiset, used as a type color.
fn canon(ms: &BTreeMap<String, usize>) -> String {
    ms.iter().map(|(k, v)| format!("{k}*{v}")).collect::<Vec<_>>().join(";")
}

/// One round of Weisfeiler–Leman-style refinement: a method shape where
/// each referenced *library* class is replaced by the canonical form of
/// its own level-0 multiset. This separates structural twins such as
/// `okhttp3.Call` and `retrofit2.Call`, whose parameter/return types have
/// different shapes even though the classes themselves match.
fn refined_shape(m: &extractocol_ir::Method, colors: &HashMap<&str, String>) -> String {
    fn erase(t: &extractocol_ir::Type, colors: &HashMap<&str, String>) -> String {
        match t {
            extractocol_ir::Type::Object(n) => {
                colors.get(n.as_str()).map(|c| format!("C<{c}>")).unwrap_or_else(|| "L".to_string())
            }
            extractocol_ir::Type::Array(e) => format!("{}[]", erase(e, colors)),
            other => other.to_string(),
        }
    }
    let params: Vec<String> = m.params.iter().map(|t| erase(t, colors)).collect();
    format!("{}({})", erase(&m.ret, colors), params.join(","))
}

/// Level-1 refined multiset per class.
fn refined_multiset(c: &Class, colors: &HashMap<&str, String>) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for m in &c.methods {
        *out.entry(refined_shape(m, colors)).or_insert(0) += 1;
    }
    out
}

fn overlap_score(a: &BTreeMap<String, usize>, b: &BTreeMap<String, usize>) -> f64 {
    let inter: usize = a.iter().map(|(k, &ca)| ca.min(b.get(k).copied().unwrap_or(0))).sum();
    let total_a: usize = a.values().sum();
    let total_b: usize = b.values().sum();
    let denom = total_a.max(total_b);
    if denom == 0 {
        return 0.0;
    }
    inter as f64 / denom as f64
}

/// Infers the obfuscated→reference map for bundled library classes whose
/// names do not already match a reference class.
pub fn infer_library_map(apk: &Apk, reference: &[Class]) -> LibraryMap {
    let ref_names: HashMap<&str, &Class> = reference.iter().map(|c| (c.name.as_str(), c)).collect();

    // Type colors (level-0 canonical shapes) for both sides.
    let ref_colors: HashMap<&str, String> =
        reference.iter().map(|c| (c.name.as_str(), canon(&shape_multiset(c)))).collect();
    let obf_colors: HashMap<&str, String> = apk
        .classes
        .iter()
        .filter(|c| c.is_library)
        .map(|c| (c.name.as_str(), canon(&shape_multiset(c))))
        .collect();
    let ref_refined: Vec<(&Class, BTreeMap<String, usize>)> =
        reference.iter().map(|c| (c, refined_multiset(c, &ref_colors))).collect();

    let mut map = LibraryMap::default();
    for c in &apk.classes {
        if !c.is_library || ref_names.contains_key(c.name.as_str()) {
            continue;
        }
        let shapes = refined_multiset(c, &obf_colors);
        let mut scored: Vec<(&Class, f64)> =
            ref_refined.iter().map(|(rc, rs)| (*rc, overlap_score(&shapes, rs))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let Some(&(rc, score)) = scored.first() else { continue };
        // An inaccurate mapping is worse than none (the analysis then
        // degrades to wildcards, §3.4): require a clear, unambiguous win.
        if score < MIN_SCORE {
            continue;
        }
        if let Some(&(_, second)) = scored.get(1) {
            if (score - second).abs() < 1e-9 {
                continue; // structural twins (e.g. two callback-style clients)
            }
        }
        map.classes.insert(c.name.clone(), rc.name.clone());
    }

    // Anchor propagation: matched classes pin the identity of the classes
    // their method signatures reference (e.g. `Response.body()` returning
    // the obfuscated `ResponseBody`), resolving classes whose own shape is
    // too generic to match — to a fixpoint.
    let obf_by_name: HashMap<&str, &Class> =
        apk.classes.iter().filter(|c| c.is_library).map(|c| (c.name.as_str(), c)).collect();
    loop {
        let mut added: Vec<(String, String)> = Vec::new();
        for (obf_name, ref_name) in &map.classes {
            let (Some(c), Some(rc)) =
                (obf_by_name.get(obf_name.as_str()), ref_names.get(ref_name.as_str()))
            else {
                continue;
            };
            for (m, rm) in align_methods(c, rc, &obf_colors, &ref_colors) {
                let pairs =
                    m.params.iter().zip(&rm.params).chain(std::iter::once((&m.ret, &rm.ret)));
                for (ot, rt) in pairs {
                    if let (Some(on), Some(rn)) = (ot.class_name(), rt.class_name()) {
                        if obf_by_name.contains_key(on)
                            && ref_names.contains_key(rn)
                            && on != rn
                            && !map.classes.contains_key(on)
                            && !added.iter().any(|(a, _)| a == on)
                        {
                            added.push((on.to_string(), rn.to_string()));
                        }
                    }
                }
            }
        }
        if added.is_empty() {
            break;
        }
        for (o, r) in added {
            map.classes.insert(o, r);
        }
    }

    // Method-level mapping for every matched class.
    for (obf_name, ref_name) in map.classes.clone() {
        let (Some(c), Some(rc)) =
            (obf_by_name.get(obf_name.as_str()), ref_names.get(ref_name.as_str()))
        else {
            continue;
        };
        for (m, rm) in align_methods(c, rc, &obf_colors, &ref_colors) {
            if m.name.starts_with('<') {
                continue; // constructors keep their names
            }
            map.methods.insert((obf_name.clone(), m.name.clone(), m.params.len()), rm.name.clone());
        }
    }
    map
}

/// Aligns an obfuscated class's methods with a reference class's by
/// refined shape, declaration order within a shape group.
fn align_methods<'a>(
    c: &'a Class,
    rc: &'a Class,
    obf_colors: &HashMap<&str, String>,
    ref_colors: &HashMap<&str, String>,
) -> Vec<(&'a extractocol_ir::Method, &'a extractocol_ir::Method)> {
    let mut ref_by_shape: HashMap<String, Vec<&extractocol_ir::Method>> = HashMap::new();
    for m in &rc.methods {
        ref_by_shape.entry(refined_shape(m, ref_colors)).or_default().push(m);
    }
    let mut used: HashMap<String, usize> = HashMap::new();
    let mut out = Vec::new();
    for m in &c.methods {
        let sh = refined_shape(m, obf_colors);
        if let Some(cands) = ref_by_shape.get(&sh) {
            let idx = used.entry(sh).or_insert(0);
            if let Some(rm) = cands.get(*idx) {
                out.push((m, *rm));
                *idx += 1;
            }
        }
    }
    out
}

/// Rewrites the APK so inferred library classes/methods carry their
/// canonical names again; the analysis then proceeds unchanged.
pub fn deobfuscate(apk: &Apk, map: &LibraryMap) -> Apk {
    if map.is_empty() {
        return apk.clone();
    }
    let om = ObfuscationMap {
        classes: map.classes.clone(),
        methods: map.methods.clone(),
        fields: BTreeMap::new(),
    };
    apply_map(apk, &om)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stubs;
    use extractocol_ir::obfuscate::{obfuscate, ObfuscationOptions};
    use extractocol_ir::{ApkBuilder, Type};

    #[test]
    fn recovers_obfuscated_okhttp_names() {
        // Build an app with library stubs, obfuscate *including* the
        // libraries, then infer the map back.
        let mut b = ApkBuilder::new("t", "t");
        stubs::install(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.C");
                let builder = m.new_obj("okhttp3.Request$Builder", vec![]);
                m.vcall_void(
                    builder,
                    "okhttp3.Request$Builder",
                    "url",
                    vec![extractocol_ir::Value::str("http://x/")],
                );
                m.ret_void();
            });
        });
        let apk = b.build();
        let (obf, omap) = obfuscate(
            &apk,
            &ObfuscationOptions { obfuscate_libraries: true, extra_keep_prefixes: vec![] },
        );
        // The builder class was renamed.
        let obf_builder = omap.classes.get("okhttp3.Request$Builder").expect("renamed");
        assert!(obf.class(obf_builder).is_some());

        let inferred = infer_library_map(&obf, &stubs::library_reference());
        assert_eq!(
            inferred.classes.get(obf_builder).map(String::as_str),
            Some("okhttp3.Request$Builder"),
            "inferred: {:?}",
            inferred.classes
        );
        // And applying it restores analyzable names.
        let recovered = deobfuscate(&obf, &inferred);
        let rb = recovered.class("okhttp3.Request$Builder").expect("class back");
        assert!(rb.method("url", 1).is_some() || !inferred.methods.is_empty());
    }

    #[test]
    fn unobfuscated_apps_yield_empty_map() {
        let mut b = ApkBuilder::new("t", "t");
        stubs::install(&mut b);
        let apk = b.build();
        let map = infer_library_map(&apk, &stubs::library_reference());
        assert!(map.is_empty());
        // deobfuscate is then the identity.
        assert_eq!(deobfuscate(&apk, &map), apk);
    }
}
