//! A minimal scoped-thread work pool for the per-DP fan-out.
//!
//! The pipeline's unit of parallelism is one demarcation point (slicing)
//! or one transaction (signature extraction); both are independent given
//! the shared read-only program structures, so a work-stealing pool is
//! overkill — workers pull indices off one atomic counter and results are
//! reassembled in input order, which keeps parallel output byte-identical
//! to sequential output.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves an [`Options::jobs`](crate::Options) value: `0` means "one
/// worker per available core", anything else is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Maps `f` over `items` with up to `jobs` worker threads (`0` = auto),
/// returning results in input order. `jobs <= 1` runs inline on the
/// calling thread — the strictly sequential path.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        done.push((i, f(i, item)));
                    }
                    done
                })
            })
            .collect();
        for w in workers {
            for (i, r) in w.join().expect("pipeline worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every index claimed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let seq = parallel_map(&items, 1, |i, &x| (i, x * 2));
        let par = parallel_map(&items, 8, |i, &x| (i, x * 2));
        assert_eq!(seq, par);
        assert_eq!(par[200], (200, 400));
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 0, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 0, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn resolve_jobs_auto_is_positive() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}
