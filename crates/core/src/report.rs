//! The analysis output model: reconstructed transactions, dependency
//! edges, statistics, and the table-style renderings used in the paper's
//! case studies (Tables 3–6).

use crate::interdep::DependencyEdge;
use crate::metrics::Metrics;
use crate::pairing::Pairing;
use crate::sigbuild::{BodySig, ResponseSig};
use crate::siglang::SigPat;
use extractocol_http::HttpMethod;
use std::fmt::Write as _;
use std::time::Duration;

/// One reconstructed HTTP transaction.
#[derive(Clone, Debug)]
pub struct TxnReport {
    /// Transaction id, referenced by dependency edges.
    pub id: usize,
    /// The demarcation-point class (e.g. `org.apache.http.client.HttpClient`).
    pub dp_class: String,
    /// `class.method` anchoring the transaction.
    pub root: String,
    /// The request method.
    pub method: HttpMethod,
    /// URI signature (intermediate language).
    pub uri: SigPat,
    /// URI signature compiled to a regex.
    pub uri_regex: String,
    /// Headers the app sets (name, value regex).
    pub headers: Vec<(String, String)>,
    /// Headers in the intermediate signature language (name, value sig) —
    /// kept alongside the rendered regexes so the conformance oracle can
    /// structurally match header values without re-parsing regexes.
    pub header_sigs: Vec<(String, SigPat)>,
    /// Request body signature, if any.
    pub request_body: Option<BodySig>,
    /// Response body signature, if the app processes one.
    pub response: Option<ResponseSig>,
    /// Pairing resolution.
    pub pairing: Pairing,
    /// Device/user data origins feeding the request.
    pub origins: Vec<String>,
    /// Consumption sinks of the response.
    pub consumptions: Vec<String>,
}

impl TxnReport {
    /// True when the URI is entirely unknown — a *dynamically-derived* URI
    /// obtained from a prior response (the `GET (.*)` rows of Tables 3–4).
    pub fn is_dynamic_uri(&self) -> bool {
        matches!(self.uri, SigPat::Unknown(_))
    }

    /// The number of distinct URI patterns this transaction's signature
    /// covers when fully expanded (disjunctive normal form) — Fig. 3's
    /// "nine request URI patterns" combined into one Diode regex.
    pub fn uri_pattern_count(&self) -> usize {
        fn dnf(p: &SigPat) -> usize {
            match p {
                SigPat::Or(items) => items.iter().map(dnf).sum(),
                SigPat::Concat(items) => items.iter().map(dnf).product(),
                _ => 1,
            }
        }
        dnf(&self.uri).clamp(1, 4096)
    }

    /// Renders the URI as template strings with `\u{0}` placeholders for
    /// wildcard parts (used for query-string decomposition). Disjunctions
    /// expand — capped — so every branch's constant keys are visible.
    fn uri_template(&self) -> Vec<String> {
        let mut out = expand_templates(&self.uri, 64);
        out.dedup();
        out
    }

    /// Constant query-string keys in the URI (`…?key=…&key2=…`).
    pub fn query_keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in self.uri_template() {
            let Some(q) = t.split_once('?').map(|(_, q)| q) else { continue };
            for kv in q.split('&') {
                let key = kv.split('=').next().unwrap_or("");
                if !key.is_empty() && !key.contains('\u{0}') && !out.contains(&key.to_string()) {
                    out.push(key.to_string());
                }
            }
        }
        out
    }

    /// True when the request carries a query string (in the URI or as a
    /// form body) — Table 1's "Query string" column.
    pub fn has_query_string(&self) -> bool {
        !self.query_keys().is_empty()
            || self
                .uri_template()
                .iter()
                .any(|t| t.split_once('?').map(|(_, q)| q.contains('=')).unwrap_or(false))
            || matches!(self.request_body, Some(BodySig::Form(_)))
    }

    /// Constant keywords of the request (query keys + form keys + JSON
    /// body keys) — the request half of the Fig. 7 metric.
    pub fn request_keywords(&self) -> Vec<String> {
        let mut out = self.query_keys();
        if let Some(b) = &self.request_body {
            for k in b.keywords() {
                if !out.contains(&k) {
                    out.push(k);
                }
            }
        }
        out
    }

    /// Constant keywords of the response body — the response half of the
    /// Fig. 7 metric.
    pub fn response_keywords(&self) -> Vec<String> {
        match &self.response {
            Some(ResponseSig::Json(j)) => j.keys().into_iter().map(str::to_string).collect(),
            Some(ResponseSig::Xml(x)) => {
                x.keywords().into_iter().filter(|k| !k.is_empty()).map(str::to_string).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Whether the transaction involves JSON (request body or response).
    pub fn uses_json(&self) -> bool {
        matches!(self.request_body, Some(BodySig::Json(_)))
            || matches!(self.response, Some(ResponseSig::Json(_)))
    }

    /// Whether the transaction's response is XML.
    pub fn uses_xml(&self) -> bool {
        matches!(self.response, Some(ResponseSig::Xml(_)))
    }
}

/// Expands a signature into concrete template strings (wildcards become
/// NUL placeholders), up to `cap` branches.
fn expand_templates(p: &SigPat, cap: usize) -> Vec<String> {
    match p {
        SigPat::Const(s) => vec![s.clone()],
        SigPat::Unknown(_) | SigPat::Json(_) | SigPat::Xml(_) => vec!["\u{0}".to_string()],
        SigPat::Rep(inner) => {
            // One unrolling exposes the loop body's constant keys.
            let mut out = vec![String::new()];
            out.extend(expand_templates(inner, cap.saturating_sub(1)));
            out.truncate(cap.max(1));
            out
        }
        SigPat::Or(items) => {
            let mut out = Vec::new();
            for item in items {
                out.extend(expand_templates(item, cap));
                if out.len() >= cap {
                    out.truncate(cap);
                    break;
                }
            }
            out
        }
        SigPat::Concat(items) => {
            let mut out = vec![String::new()];
            for item in items {
                let parts = expand_templates(item, cap);
                let mut next = Vec::with_capacity(out.len() * parts.len());
                'outer: for prefix in &out {
                    for part in &parts {
                        next.push(format!("{prefix}{part}"));
                        if next.len() >= cap {
                            break 'outer;
                        }
                    }
                }
                out = next;
            }
            out
        }
    }
}

/// Aggregate statistics of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Total statements in the app (concrete methods).
    pub total_stmts: usize,
    /// Statements in any slice (Fig. 3: Diode 6.3%).
    pub sliced_stmts: usize,
    /// Demarcation-point sites found.
    pub dp_sites: usize,
    /// Obfuscated library classes recovered by the §3.4 mapper.
    pub deobfuscated_classes: usize,
    /// Wall-clock analysis time.
    pub duration: Duration,
}

impl Stats {
    /// Slice fraction of the program.
    pub fn slice_fraction(&self) -> f64 {
        if self.total_stmts == 0 {
            0.0
        } else {
            self.sliced_stmts as f64 / self.total_stmts as f64
        }
    }
}

/// The full result of analyzing one APK.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// App display name.
    pub app: String,
    /// Reconstructed transactions.
    pub transactions: Vec<TxnReport>,
    /// Inter-transaction dependency edges.
    pub dependencies: Vec<DependencyEdge>,
    /// Run statistics.
    pub stats: Stats,
    /// Instrumentation: phase timings, summary-cache counters, per-DP
    /// slice sizes. Observational only — never serialized by `to_table`
    /// or `to_json`, so reports from different `jobs` settings compare
    /// equal.
    pub metrics: Metrics,
}

impl AnalysisReport {
    /// Transactions using a given method.
    pub fn by_method(&self, m: HttpMethod) -> impl Iterator<Item = &TxnReport> {
        self.transactions.iter().filter(move |t| t.method == m)
    }

    /// Count of request URI patterns per method (Table 1's method columns
    /// count unique request signatures).
    pub fn method_count(&self, m: HttpMethod) -> usize {
        self.by_method(m).count()
    }

    /// Number of reconstructed request/response pairs (Table 1 "#Pair").
    pub fn pair_count(&self) -> usize {
        self.transactions
            .iter()
            .filter(|t| t.pairing != Pairing::Unpaired && t.response.is_some())
            .count()
    }

    /// Paper-style table rendering (the shape of Tables 3–4).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} transactions ==", self.app, self.transactions.len());
        for t in &self.transactions {
            let dyn_tag = if t.is_dynamic_uri() { " (D)" } else { " (S)" };
            let _ = writeln!(out, "#{} {} {}{}", t.id + 1, t.method, t.uri.display(), dyn_tag);
            for (k, v) in &t.headers {
                let _ = writeln!(out, "      header {k}: {v}");
            }
            match &t.request_body {
                Some(BodySig::Form(pairs)) => {
                    let kv: Vec<String> = pairs
                        .iter()
                        .map(|(k, v)| format!("{}={}", k.display(), v.display()))
                        .collect();
                    let _ = writeln!(out, "      body (form): {}", kv.join("&"));
                }
                Some(BodySig::Json(j)) => {
                    let _ = writeln!(out, "      body (json): {}", j.display());
                }
                Some(BodySig::Xml(x)) => {
                    let _ = writeln!(out, "      body (xml): {}", x.to_regex());
                }
                Some(BodySig::Text(p)) => {
                    let _ = writeln!(out, "      body (text): {}", p.display());
                }
                None => {}
            }
            match &t.response {
                Some(ResponseSig::Json(j)) => {
                    let _ = writeln!(out, "   -> JSON response: {}", j.display());
                }
                Some(ResponseSig::Xml(x)) => {
                    let _ = writeln!(out, "   -> XML response: {}", x.to_dtd().replace('\n', " "));
                }
                Some(ResponseSig::Raw) => {
                    let _ = writeln!(out, "   -> response consumed unparsed");
                }
                None => {}
            }
            for c in &t.consumptions {
                let _ = writeln!(out, "   -> consumed by: {c}");
            }
            for o in &t.origins {
                let _ = writeln!(out, "   <- originates from: {o}");
            }
        }
        if !self.dependencies.is_empty() {
            let _ = writeln!(out, "-- dependency graph --");
            for d in &self.dependencies {
                let detail = match (&d.resp_field, &d.req_field) {
                    (Some(rf), Some(qf)) => format!(" ({rf} -> {qf})"),
                    (Some(rf), None) => format!(" ({rf})"),
                    (None, Some(qf)) => format!(" (-> {qf})"),
                    (None, None) => String::new(),
                };
                let _ = writeln!(out, "#{} -> #{} via {}{}", d.from + 1, d.to + 1, d.via, detail);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::siglang::{JsonSig, TypeHint};

    fn txn(uri: SigPat) -> TxnReport {
        TxnReport {
            id: 0,
            dp_class: "org.apache.http.client.HttpClient".into(),
            root: "t.C.go".into(),
            method: HttpMethod::Get,
            uri_regex: uri.to_regex(),
            uri,
            headers: Vec::new(),
            header_sigs: Vec::new(),
            request_body: None,
            response: None,
            pairing: Pairing::Unique,
            origins: Vec::new(),
            consumptions: Vec::new(),
        }
    }

    #[test]
    fn query_keys_from_uri_signature() {
        let uri = SigPat::Concat(vec![
            SigPat::lit("https://h/api/login?user="),
            SigPat::any_str(),
            SigPat::lit("&passwd="),
            SigPat::any_str(),
            SigPat::lit("&api_type=json"),
        ]);
        let t = txn(uri);
        assert_eq!(t.query_keys(), vec!["user", "passwd", "api_type"]);
        assert!(t.has_query_string());
        assert!(!t.is_dynamic_uri());
    }

    #[test]
    fn dynamic_uri_detection() {
        let t = txn(SigPat::Unknown(TypeHint::Str));
        assert!(t.is_dynamic_uri());
        assert!(!t.has_query_string());
        assert_eq!(t.uri_pattern_count(), 1);
    }

    #[test]
    fn keywords_combine_query_and_body() {
        let mut t = txn(SigPat::Concat(vec![SigPat::lit("https://h/x?id="), SigPat::any_str()]));
        let mut j = JsonSig::object();
        j.put("uh", JsonSig::Unknown);
        t.request_body = Some(BodySig::Json(j.clone()));
        t.response = Some(ResponseSig::Json(j));
        assert_eq!(t.request_keywords(), vec!["id", "uh"]);
        assert_eq!(t.response_keywords(), vec!["uh"]);
        assert!(t.uses_json());
        assert!(!t.uses_xml());
    }

    #[test]
    fn table_rendering_mentions_everything() {
        let mut t = txn(SigPat::lit("https://h/a"));
        t.consumptions.push("media-player".into());
        t.origins.push("gps".into());
        let r = AnalysisReport {
            app: "demo".into(),
            transactions: vec![t],
            dependencies: vec![],
            stats: Stats::default(),
            metrics: Metrics::default(),
        };
        let s = r.to_table();
        assert!(s.contains("#1 GET (https://h/a) (S)"));
        assert!(s.contains("consumed by: media-player"));
        assert!(s.contains("originates from: gps"));
    }
}

// ---------------------------------------------------------------------------
// Machine-readable export
// ---------------------------------------------------------------------------

use extractocol_http::JsonValue;

impl TxnReport {
    /// JSON form of one transaction (for proxy generators and other
    /// downstream consumers — the paper's acceleration use case, §2).
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.insert("id", JsonValue::num(self.id as f64));
        o.insert("method", JsonValue::str(self.method.as_str()));
        o.insert("uri_regex", JsonValue::str(&self.uri_regex));
        o.insert("uri_display", JsonValue::str(&self.uri.display()));
        o.insert("dynamic_uri", JsonValue::Bool(self.is_dynamic_uri()));
        o.insert("dp_class", JsonValue::str(&self.dp_class));
        o.insert("root", JsonValue::str(&self.root));
        let mut headers = JsonValue::object();
        for (k, v) in &self.headers {
            headers.insert(k, JsonValue::str(v));
        }
        o.insert("headers", headers);
        match &self.request_body {
            Some(BodySig::Form(pairs)) => {
                let mut form = JsonValue::object();
                for (k, v) in pairs {
                    form.insert(&k.to_regex(), JsonValue::str(&v.to_regex()));
                }
                o.insert("request_body_form", form);
            }
            Some(BodySig::Json(j)) => {
                o.insert("request_body_schema", j.to_json_schema());
            }
            Some(BodySig::Xml(x)) => {
                o.insert("request_body_dtd", JsonValue::str(&x.to_dtd()));
            }
            Some(BodySig::Text(p)) => {
                o.insert("request_body_regex", JsonValue::str(&p.to_regex()));
            }
            None => {}
        }
        match &self.response {
            Some(ResponseSig::Json(j)) => {
                o.insert("response_schema", j.to_json_schema());
            }
            Some(ResponseSig::Xml(x)) => {
                o.insert("response_dtd", JsonValue::str(&x.to_dtd()));
            }
            Some(ResponseSig::Raw) => {
                o.insert("response_raw", JsonValue::Bool(true));
            }
            None => {}
        }
        if !self.origins.is_empty() {
            o.insert(
                "origins",
                JsonValue::Array(self.origins.iter().map(|s| JsonValue::str(s)).collect()),
            );
        }
        if !self.consumptions.is_empty() {
            o.insert(
                "consumptions",
                JsonValue::Array(self.consumptions.iter().map(|s| JsonValue::str(s)).collect()),
            );
        }
        o
    }
}

impl AnalysisReport {
    /// The whole report as JSON: transactions plus dependency edges.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.insert("app", JsonValue::str(&self.app));
        o.insert(
            "transactions",
            JsonValue::Array(self.transactions.iter().map(TxnReport::to_json).collect()),
        );
        let deps: Vec<JsonValue> = self
            .dependencies
            .iter()
            .map(|d| {
                let mut e = JsonValue::object();
                e.insert("from", JsonValue::num(d.from as f64));
                e.insert("to", JsonValue::num(d.to as f64));
                e.insert("via", JsonValue::str(&d.via.to_string()));
                if let Some(rf) = &d.resp_field {
                    e.insert("response_field", JsonValue::str(rf));
                }
                if let Some(qf) = &d.req_field {
                    e.insert("request_field", JsonValue::str(qf));
                }
                e
            })
            .collect();
        o.insert("dependencies", JsonValue::Array(deps));
        let mut stats = JsonValue::object();
        stats.insert("total_statements", JsonValue::num(self.stats.total_stmts as f64));
        stats.insert("sliced_statements", JsonValue::num(self.stats.sliced_stmts as f64));
        stats.insert("demarcation_sites", JsonValue::num(self.stats.dp_sites as f64));
        o.insert("stats", stats);
        o
    }
}

#[cfg(test)]
mod json_export_tests {
    use super::*;
    use crate::siglang::JsonSig;

    #[test]
    fn report_exports_valid_json() {
        let mut j = JsonSig::object();
        j.put("token", JsonSig::Unknown);
        let txn = TxnReport {
            id: 0,
            dp_class: "org.apache.http.client.HttpClient".into(),
            root: "a.B.login".into(),
            method: HttpMethod::Post,
            uri: SigPat::lit("https://h/login"),
            uri_regex: "https://h/login".into(),
            headers: vec![("Cookie".into(), ".*".into())],
            header_sigs: vec![("Cookie".into(), SigPat::any_str())],
            request_body: Some(BodySig::Form(vec![(SigPat::lit("user"), SigPat::any_str())])),
            response: Some(ResponseSig::Json(j)),
            pairing: Pairing::Unique,
            origins: vec!["user-input".into()],
            consumptions: vec![],
        };
        let report = AnalysisReport {
            app: "demo".into(),
            transactions: vec![txn],
            dependencies: vec![],
            stats: Stats::default(),
            metrics: Metrics::default(),
        };
        let exported = report.to_json();
        // Round-trips through the JSON parser (well-formed).
        let text = exported.to_json();
        let reparsed = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(reparsed.get("app").unwrap().as_str(), Some("demo"));
        let t0 = reparsed.get("transactions").unwrap().at(0).unwrap();
        assert_eq!(t0.get("method").unwrap().as_str(), Some("POST"));
        assert!(t0.get("request_body_form").is_some());
        assert!(t0.get("response_schema").is_some());
    }
}
