//! Taint-transfer model over the API semantic model.
//!
//! The taint engine cannot step into platform/library methods (they are
//! stubs); instead it asks this model which call slots taint which. Precise
//! per-op flows keep slices tight — e.g. `StringBuilder.append` taints the
//! receiver and returns it, `JSONObject.getString` taints only its result —
//! while unmodelled calls fall back to the conservative any-input→output
//! rule.

use crate::semantics::{ApiOp, SemanticModel};
use extractocol_analysis::{ApiFlowModel, ConservativeModel, Slot};
use extractocol_ir::{MethodRef, ProgramIndex};

/// Adapter implementing the engine's [`ApiFlowModel`] over a
/// [`SemanticModel`].
pub struct SemanticFlowModel<'a> {
    model: &'a SemanticModel,
    prog: &'a ProgramIndex<'a>,
}

impl<'a> SemanticFlowModel<'a> {
    /// Wraps the semantic model for a program.
    pub fn new(model: &'a SemanticModel, prog: &'a ProgramIndex<'a>) -> Self {
        SemanticFlowModel { model, prog }
    }
}

fn args_to(n: usize, to: Slot) -> Vec<(Slot, Slot)> {
    (0..n).map(|i| (Slot::Arg(i), to)).collect()
}

impl ApiFlowModel for SemanticFlowModel<'_> {
    fn flows(&self, callee: &MethodRef) -> Vec<(Slot, Slot)> {
        let n = callee.params.len();
        match self.model.op_for(self.prog, callee) {
            // Constructors: arguments flow into the object being built.
            ApiOp::SbNew
            | ApiOp::ApacheRequestNew(_)
            | ApiOp::UrlNew
            | ApiOp::FormEntityNew
            | ApiOp::NameValuePairNew
            | ApiOp::StringEntityNew
            | ApiOp::VolleyRequestNew
            | ApiOp::GoogleUrlNew
            | ApiOp::JsonNewObj
            | ApiOp::JsonNewArr
            | ApiOp::ListNew
            | ApiOp::MapNew
            | ApiOp::ContentValuesNew => args_to(n, Slot::Receiver),

            // Mutators: arguments into receiver.
            ApiOp::SbAppend => {
                let mut f = args_to(n, Slot::Receiver);
                // append returns `this` for chaining
                f.push((Slot::Receiver, Slot::Return));
                f.extend(args_to(n, Slot::Return));
                f
            }
            ApiOp::SetHeader
            | ApiOp::SetBody
            | ApiOp::SetRequestMethod
            | ApiOp::JsonPut
            | ApiOp::JsonArrayPut
            | ApiOp::ListAdd
            | ApiOp::MapPut
            | ApiOp::ContentValuesPut
            | ApiOp::CellPut(_) => args_to(n, Slot::Receiver),

            // Builder steps: arg into receiver, receiver returned.
            ApiOp::OkUrl | ApiOp::OkHeader | ApiOp::OkMethodBody(_) => {
                let mut f = args_to(n, Slot::Receiver);
                f.push((Slot::Receiver, Slot::Return));
                f.extend(args_to(n, Slot::Return));
                f
            }
            ApiOp::OkGet | ApiOp::OkBuild | ApiOp::OkBuilderNew => {
                vec![(Slot::Receiver, Slot::Return)]
            }

            // Converters: inputs to return value.
            ApiOp::SbToString
            | ApiOp::StrIdentity
            | ApiOp::JsonToString
            | ApiOp::RespEntity
            | ApiOp::RespToString
            | ApiOp::JsonGet(_)
            | ApiOp::JsonArrayGet
            | ApiOp::MapGet
            | ApiOp::ListGet
            | ApiOp::CursorGet
            | ApiOp::XmlGetElements
            | ApiOp::XmlGetAttr
            | ApiOp::XmlGetText
            | ApiOp::DbQuery => {
                let mut f = vec![(Slot::Receiver, Slot::Return)];
                f.extend(args_to(n, Slot::Return));
                f
            }
            ApiOp::StrConcat
            | ApiOp::Stringify
            | ApiOp::StrFormat
            | ApiOp::UrlEncode
            | ApiOp::JsonParse
            | ApiOp::XmlParse
            | ApiOp::ReflectToJson
            | ApiOp::ReflectFromJson
            | ApiOp::OkBodyCreate
            | ApiOp::RetrofitCreate
            | ApiOp::GoogleBuildRequest(_)
            | ApiOp::OkNewCall => {
                let mut f = args_to(n, Slot::Return);
                f.push((Slot::Receiver, Slot::Return));
                // JSONObject.<init>(String) parse form mutates receiver too.
                f.extend(args_to(n, Slot::Receiver));
                f
            }

            // Demarcation points: request data flows through to the
            // response object — this is exactly the flow the pairing
            // analysis traces from URI slices to response slices (§3.3).
            ApiOp::Demarcation(_) => {
                let mut f = args_to(n, Slot::Return);
                f.push((Slot::Receiver, Slot::Return));
                f
            }

            // Reads of independent state, constants, counters.
            ApiOp::ResGetString | ApiOp::CellGet(_) | ApiOp::RespStatus | ApiOp::JsonArrayLen => {
                Vec::new()
            }

            // Origins produce fresh data (seeded explicitly); sinks consume.
            ApiOp::Origin(_) | ApiOp::Sink(_) => Vec::new(),

            ApiOp::Unknown => ConservativeModel.flows(callee),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::{ApkBuilder, Type};

    #[test]
    fn precise_flows_for_modelled_apis() {
        let apk = ApkBuilder::new("t", "t").build();
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let fm = SemanticFlowModel::new(&model, &prog);

        let append = MethodRef::new(
            "java.lang.StringBuilder",
            "append",
            vec![Type::string()],
            Type::object("java.lang.StringBuilder"),
        );
        let flows = fm.flows(&append);
        assert!(flows.contains(&(Slot::Arg(0), Slot::Receiver)));
        assert!(flows.contains(&(Slot::Receiver, Slot::Return)));

        // getString: only receiver→return, arg (the key) too, but crucially
        // no receiver mutation.
        let get = MethodRef::new(
            "org.json.JSONObject",
            "getString",
            vec![Type::string()],
            Type::string(),
        );
        let flows = fm.flows(&get);
        assert!(flows.contains(&(Slot::Receiver, Slot::Return)));
        assert!(!flows.iter().any(|(_, to)| *to == Slot::Receiver));

        // Resources.getString carries no taint (constant-valued).
        let res = MethodRef::new(
            "android.content.res.Resources",
            "getString",
            vec![Type::Int],
            Type::string(),
        );
        assert!(fm.flows(&res).is_empty());
    }

    #[test]
    fn unknown_falls_back_to_conservative() {
        let apk = ApkBuilder::new("t", "t").build();
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let fm = SemanticFlowModel::new(&model, &prog);
        let mystery = MethodRef::new("x.Y", "z", vec![Type::string()], Type::string());
        let flows = fm.flows(&mystery);
        assert!(flows.contains(&(Slot::Arg(0), Slot::Return)));
        assert!(flows.contains(&(Slot::Receiver, Slot::Return)));
    }
}
