//! The API semantic model.
//!
//! "For signature extraction, Extractocol utilizes semantic models for
//! commonly used Android and Java APIs for HTTP processing. … The model
//! captures the semantics of each API's operations and its parameters"
//! (§3.2). "The current implementation of Extractocol uses 39 demarcation
//! points from 16 classes and popular http libraries, including
//! org.apache.http, android.net.http, android.volley, java.net,
//! android.media, retrofit, BeeFramework, and okhttp" (§4).
//!
//! The model serves four consumers:
//!
//! * demarcation-point discovery ([`SemanticModel::demarcation`]);
//! * the taint engine's transfer for bodyless library calls
//!   ([`crate::flowmodel`]);
//! * the signature-building abstract interpreter ([`crate::sigbuild`]),
//!   which matches on [`ApiOp`];
//! * the dynamic IR interpreter in `extractocol-dynamic`, which gives the
//!   same APIs their concrete semantics.
//!
//! New APIs are added with [`SemanticModel::register`] /
//! [`SemanticModel::register_dp`] — the "easy plugin for adding new API
//! semantics" the paper describes.

use extractocol_http::HttpMethod;
use extractocol_ir::{MethodRef, ProgramIndex};
use std::collections::HashMap;

/// Where a demarcation point's request object lives in the call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DpRequestLoc {
    /// The receiver (e.g. `okhttp3.Call.execute()` — the call wraps the
    /// request; `java.net.URL.openConnection()` — the URL is the request).
    Receiver,
    /// The i-th argument (e.g. `HttpClient.execute(request)`).
    Arg(usize),
}

/// Where the response surfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DpResponseLoc {
    /// The call's return value.
    Return,
    /// Delivered through an implicit callback parameter (Volley, retrofit
    /// `enqueue`, BeeFramework, loopj handlers) — forward seeds are planted
    /// at the callback's parameters via the callback registry.
    Callback,
    /// No app-visible response object (media players consume the stream
    /// directly; the "response goes to media player" case of Fig. 1).
    Consumed,
}

/// A demarcation-point specification.
#[derive(Clone, Debug, PartialEq)]
pub struct DpSpec {
    pub class: String,
    pub method: String,
    /// `None` matches any arity.
    pub arity: Option<usize>,
    pub request: DpRequestLoc,
    pub response: DpResponseLoc,
    /// Fixed request method implied by the DP itself (e.g. MediaPlayer and
    /// `URL.openStream` imply GET).
    pub implied_method: Option<HttpMethod>,
}

/// JSON accessor result shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JsonAccess {
    /// `getString`/`optString`/`asText` — a leaf value.
    Leaf,
    /// `getJSONObject`/`get` returning an object.
    Object,
    /// `getJSONArray` returning an array.
    Array,
}

/// Cells that bridge transactions through app/platform state (§5.2's
/// SQLite- and resource-mediated dependencies; `interdep` keys on these).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// `SharedPreferences` entry by key.
    Prefs,
    /// SQLite table (column granularity comes from `ContentValues` keys).
    Database,
}

/// The abstract operation a modelled API call performs.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiOp {
    // ---- demarcation points ----
    Demarcation(DpSpec),

    // ---- string construction ----
    /// `StringBuilder.<init>()` / `<init>(String)`.
    SbNew,
    /// `StringBuilder.append(x)` — returns the receiver.
    SbAppend,
    /// `StringBuilder.toString()`.
    SbToString,
    /// `String.concat(s)`.
    StrConcat,
    /// `String.trim()` and similar identity-ish transforms.
    StrIdentity,
    /// `String.valueOf(x)` / `Integer.toString(x)` — stringify.
    Stringify,
    /// `String.format(fmt, args…)`.
    StrFormat,
    /// `URLEncoder.encode(s, enc)`.
    UrlEncode,

    // ---- request objects ----
    /// `HttpGet/HttpPost/HttpPut/HttpDelete.<init>(uri)`.
    ApacheRequestNew(HttpMethod),
    /// `java.net.URL.<init>(String)`.
    UrlNew,
    /// `HttpURLConnection.setRequestMethod("POST")`.
    SetRequestMethod,
    /// `setHeader/addHeader/setRequestProperty(k, v)`.
    SetHeader,
    /// `HttpPost.setEntity(entity)` / writing a request body.
    SetBody,
    /// `UrlEncodedFormEntity.<init>(List)`.
    FormEntityNew,
    /// `BasicNameValuePair.<init>(k, v)`.
    NameValuePairNew,
    /// `StringEntity.<init>(s)`.
    StringEntityNew,
    /// `okhttp3.Request$Builder.<init>()`.
    OkBuilderNew,
    /// `Request$Builder.url(String)`.
    OkUrl,
    /// `Request$Builder.method-name(body)` for post/put/delete.
    OkMethodBody(HttpMethod),
    /// `Request$Builder.header(k, v)`.
    OkHeader,
    /// `Request$Builder.get()`.
    OkGet,
    /// `Request$Builder.build()`.
    OkBuild,
    /// `okhttp3.RequestBody.create(type, content)`.
    OkBodyCreate,
    /// `OkHttpClient.newCall(request)` — wraps request into the Call.
    OkNewCall,
    /// `com.android.volley.Request.<init>(int method, String url)` (and
    /// subclasses calling through to it).
    VolleyRequestNew,
    /// `retrofit2.CallFactory.create(method, url, body)` — our static
    /// stand-in for retrofit's reflection proxies.
    RetrofitCreate,
    /// `com.google.api.client.http.GenericUrl.<init>(String)`.
    GoogleUrlNew,
    /// `HttpRequestFactory.buildGetRequest/buildPostRequest(url[, content])`.
    GoogleBuildRequest(HttpMethod),

    // ---- response reading ----
    /// `HttpResponse.getEntity()` / `Response.body()`.
    RespEntity,
    /// `EntityUtils.toString(entity)` / `ResponseBody.string()` /
    /// stream-to-string reads.
    RespToString,
    /// `getStatusLine`/`code()`.
    RespStatus,

    // ---- JSON ----
    /// `JSONObject.<init>()` / gson `JsonObject.<init>()`.
    JsonNewObj,
    /// `JSONArray.<init>()`.
    JsonNewArr,
    /// Parse text into a JSON value (`JSONObject.<init>(String)`,
    /// `JsonParser.parse`, `JSON.parseObject`, `ObjectMapper.readTree`).
    JsonParse,
    /// `put(k, v)` / `addProperty(k, v)`.
    JsonPut,
    /// Keyed accessor; the shape of the result.
    JsonGet(JsonAccess),
    /// Array element accessor `getJSONObject(i)` / `get(i)`.
    JsonArrayGet,
    /// `JSONArray.put(v)` / `add(v)`.
    JsonArrayPut,
    /// `length()`/`size()`.
    JsonArrayLen,
    /// Serialize a JSON value to text (`JSONObject.toString`,
    /// `writeValueAsString`).
    JsonToString,
    /// Reflection-based serialization: `Gson.toJson(obj)` — the signature
    /// comes from the object's class fields (§3.2 "reflection-based nested
    /// json serialization").
    ReflectToJson,
    /// Reflection-based parsing: `Gson.fromJson(s, C.class)` /
    /// `ObjectMapper.readValue`.
    ReflectFromJson,

    // ---- XML ----
    /// Parse text into a DOM (`DocumentBuilder.parse`).
    XmlParse,
    /// `getElementsByTagName(tag)` / `getElementsByTag`.
    XmlGetElements,
    /// `Element.getAttribute(k)`.
    XmlGetAttr,
    /// `getTextContent()`.
    XmlGetText,

    // ---- containers ----
    ListNew,
    ListAdd,
    ListGet,
    MapNew,
    MapPut,
    MapGet,

    // ---- Android state cells ----
    /// `Resources.getString(R.string.x)`.
    ResGetString,
    /// `SharedPreferences.getString(key, default)`.
    CellGet(CellKind),
    /// `SharedPreferences$Editor.putString(key, v)` /
    /// `SQLiteDatabase.insert/update`.
    CellPut(CellKind),
    /// `SQLiteDatabase.query(table, …)` → Cursor.
    DbQuery,
    /// `Cursor.getString(i)`.
    CursorGet,
    /// `ContentValues.<init>()`.
    ContentValuesNew,
    /// `ContentValues.put(k, v)`.
    ContentValuesPut,

    // ---- origins and sinks (traffic characterization, §2) ----
    /// Data originating from device sensors/user: GPS, microphone, camera,
    /// text input.
    Origin(&'static str),
    /// Network data consumed by: media player, file, webview, image view.
    Sink(&'static str),

    /// Not modelled.
    Unknown,
}

/// Model entries for one `(class, method)` key: `(arity filter, op)`.
type ModelEntries = Vec<(Option<usize>, ApiOp)>;

/// The model: `(class, method)` → op, with subtype-aware lookup.
pub struct SemanticModel {
    map: HashMap<(String, String), ModelEntries>,
    dp_count: usize,
    dp_classes: std::collections::BTreeSet<String>,
}

impl SemanticModel {
    /// Builds the full default model.
    pub fn standard() -> SemanticModel {
        let mut m =
            SemanticModel { map: HashMap::new(), dp_count: 0, dp_classes: Default::default() };
        m.install_strings();
        m.install_apache_http();
        m.install_java_net();
        m.install_volley();
        m.install_okhttp();
        m.install_retrofit();
        m.install_google_http();
        m.install_bee_loopj_kevinsawicki();
        m.install_media();
        m.install_json();
        m.install_xml();
        m.install_containers();
        m.install_android_state();
        m.install_origins_sinks();
        m
    }

    /// Registers an op for `class.method` (the plugin hook).
    pub fn register(&mut self, class: &str, method: &str, arity: Option<usize>, op: ApiOp) {
        self.map.entry((class.to_string(), method.to_string())).or_default().push((arity, op));
    }

    /// Registers a demarcation point.
    pub fn register_dp(
        &mut self,
        class: &str,
        method: &str,
        arity: Option<usize>,
        request: DpRequestLoc,
        response: DpResponseLoc,
        implied_method: Option<HttpMethod>,
    ) {
        self.dp_count += 1;
        self.dp_classes.insert(class.to_string());
        let spec = DpSpec {
            class: class.to_string(),
            method: method.to_string(),
            arity,
            request,
            response,
            implied_method,
        };
        self.register(class, method, arity, ApiOp::Demarcation(spec));
    }

    /// Number of registered demarcation points (the paper's count is 39).
    pub fn dp_count(&self) -> usize {
        self.dp_count
    }

    /// Number of distinct classes contributing demarcation points (16).
    pub fn dp_class_count(&self) -> usize {
        self.dp_classes.len()
    }

    /// All model entries matching a call, walking the static receiver
    /// class's superclass chain and interfaces through the program's stubs
    /// (so a call typed at `DefaultHttpClient` finds the `HttpClient`
    /// model).
    fn entries_for<'m>(&'m self, prog: &ProgramIndex<'_>, callee: &MethodRef) -> Vec<&'m ApiOp> {
        let mut classes: Vec<String> = vec![callee.class.clone()];
        // Walk superclasses and interfaces breadth-first.
        let mut i = 0;
        while i < classes.len() {
            if let Some(cid) = prog.class_id(&classes[i]) {
                let c = prog.class(cid);
                if let Some(s) = &c.superclass {
                    if !classes.contains(s) {
                        classes.push(s.clone());
                    }
                }
                for itf in &c.interfaces {
                    if !classes.contains(itf) {
                        classes.push(itf.clone());
                    }
                }
            }
            i += 1;
        }
        let mut out = Vec::new();
        for cn in &classes {
            if let Some(entries) = self.map.get(&(cn.clone(), callee.name.clone())) {
                for (arity, op) in entries {
                    if arity.map(|a| a == callee.params.len()).unwrap_or(true) {
                        out.push(op);
                    }
                }
            }
            if !out.is_empty() {
                break; // most-derived class wins
            }
        }
        out
    }

    /// The op for a call. Non-DP semantics win over a DP registered for
    /// the same method (e.g. `newCall` both wraps the request and is a
    /// boundary; interpretation uses the wrap, discovery uses the DP).
    pub fn op_for(&self, prog: &ProgramIndex<'_>, callee: &MethodRef) -> ApiOp {
        let entries = self.entries_for(prog, callee);
        entries
            .iter()
            .find(|op| !matches!(op, ApiOp::Demarcation(_)))
            .or_else(|| entries.first())
            .map(|op| (*op).clone())
            .unwrap_or(ApiOp::Unknown)
    }

    /// The demarcation spec if this call is a DP.
    pub fn demarcation(&self, prog: &ProgramIndex<'_>, callee: &MethodRef) -> Option<DpSpec> {
        self.entries_for(prog, callee).into_iter().find_map(|op| match op {
            ApiOp::Demarcation(spec) => Some(spec.clone()),
            _ => None,
        })
    }

    // ---- installation of the standard model --------------------------------

    fn install_strings(&mut self) {
        let sb = "java.lang.StringBuilder";
        self.register(sb, "<init>", None, ApiOp::SbNew);
        self.register(sb, "append", None, ApiOp::SbAppend);
        self.register(sb, "toString", None, ApiOp::SbToString);
        let s = "java.lang.String";
        self.register(s, "concat", None, ApiOp::StrConcat);
        self.register(s, "trim", None, ApiOp::StrIdentity);
        self.register(s, "toLowerCase", None, ApiOp::StrIdentity);
        self.register(s, "toString", None, ApiOp::StrIdentity);
        self.register(s, "valueOf", None, ApiOp::Stringify);
        self.register(s, "format", None, ApiOp::StrFormat);
        self.register("java.lang.Integer", "toString", None, ApiOp::Stringify);
        self.register("java.lang.Long", "toString", None, ApiOp::Stringify);
        self.register("java.lang.Double", "toString", None, ApiOp::Stringify);
        self.register("java.net.URLEncoder", "encode", None, ApiOp::UrlEncode);
    }

    fn install_apache_http(&mut self) {
        for (cls, method) in [
            ("org.apache.http.client.methods.HttpGet", HttpMethod::Get),
            ("org.apache.http.client.methods.HttpPost", HttpMethod::Post),
            ("org.apache.http.client.methods.HttpPut", HttpMethod::Put),
            ("org.apache.http.client.methods.HttpDelete", HttpMethod::Delete),
        ] {
            self.register(cls, "<init>", None, ApiOp::ApacheRequestNew(method));
            self.register(cls, "setHeader", Some(2), ApiOp::SetHeader);
            self.register(cls, "addHeader", Some(2), ApiOp::SetHeader);
            self.register(cls, "setEntity", Some(1), ApiOp::SetBody);
        }
        self.register(
            "org.apache.http.client.entity.UrlEncodedFormEntity",
            "<init>",
            None,
            ApiOp::FormEntityNew,
        );
        self.register(
            "org.apache.http.message.BasicNameValuePair",
            "<init>",
            Some(2),
            ApiOp::NameValuePairNew,
        );
        self.register(
            "org.apache.http.entity.StringEntity",
            "<init>",
            None,
            ApiOp::StringEntityNew,
        );
        self.register("org.apache.http.HttpResponse", "getEntity", Some(0), ApiOp::RespEntity);
        self.register("org.apache.http.HttpResponse", "getStatusLine", Some(0), ApiOp::RespStatus);
        self.register("org.apache.http.HttpEntity", "getContent", Some(0), ApiOp::RespEntity);
        self.register("org.apache.http.util.EntityUtils", "toString", None, ApiOp::RespToString);
        // commons-io stream draining, ubiquitous with java.net connections.
        self.register("org.apache.commons.io.IOUtils", "toString", None, ApiOp::RespToString);

        // DP class 1: org.apache.http.client.HttpClient — 4 execute overloads.
        let hc = "org.apache.http.client.HttpClient";
        self.register_dp(hc, "execute", Some(1), DpRequestLoc::Arg(0), DpResponseLoc::Return, None);
        self.register_dp(hc, "execute", Some(2), DpRequestLoc::Arg(0), DpResponseLoc::Return, None);
        self.register_dp(hc, "execute", Some(3), DpRequestLoc::Arg(1), DpResponseLoc::Return, None);
        self.register_dp(hc, "execute", Some(4), DpRequestLoc::Arg(1), DpResponseLoc::Return, None);
        // DP class 2: DefaultHttpClient (same overloads, reached directly
        // when apps type receivers concretely).
        let dhc = "org.apache.http.impl.client.DefaultHttpClient";
        self.register_dp(
            dhc,
            "execute",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            dhc,
            "execute",
            Some(2),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            dhc,
            "execute",
            Some(3),
            DpRequestLoc::Arg(1),
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            dhc,
            "execute",
            Some(4),
            DpRequestLoc::Arg(1),
            DpResponseLoc::Return,
            None,
        );
        // DP class 3: android.net.http.AndroidHttpClient.
        let ahc = "android.net.http.AndroidHttpClient";
        self.register_dp(
            ahc,
            "execute",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            ahc,
            "execute",
            Some(2),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            ahc,
            "execute",
            Some(3),
            DpRequestLoc::Arg(1),
            DpResponseLoc::Return,
            None,
        );
    }

    fn install_java_net(&mut self) {
        self.register("java.net.URL", "<init>", Some(1), ApiOp::UrlNew);
        // DP class 4: java.net.URL.
        self.register_dp(
            "java.net.URL",
            "openConnection",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            "java.net.URL",
            "openStream",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            Some(HttpMethod::Get),
        );
        self.register_dp(
            "java.net.URL",
            "getContent",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            Some(HttpMethod::Get),
        );
        // DP class 5: java.net.HttpURLConnection.
        let huc = "java.net.HttpURLConnection";
        self.register(huc, "setRequestMethod", Some(1), ApiOp::SetRequestMethod);
        self.register(huc, "setRequestProperty", Some(2), ApiOp::SetHeader);
        self.register_dp(
            huc,
            "connect",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            huc,
            "getInputStream",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            huc,
            "getOutputStream",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
        // DP class 6: java.net.URLConnection.
        let uc = "java.net.URLConnection";
        self.register(uc, "setRequestProperty", Some(2), ApiOp::SetHeader);
        self.register_dp(
            uc,
            "getInputStream",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            uc,
            "getContent",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
    }

    fn install_volley(&mut self) {
        self.register("com.android.volley.Request", "<init>", None, ApiOp::VolleyRequestNew);
        // JsonObjectRequest(method, url, jsonBody, listener, errListener)
        self.register(
            "com.android.volley.toolbox.JsonObjectRequest",
            "<init>",
            None,
            ApiOp::VolleyRequestNew,
        );
        self.register(
            "com.android.volley.toolbox.StringRequest",
            "<init>",
            None,
            ApiOp::VolleyRequestNew,
        );
        // DP class 7: com.android.volley.RequestQueue.
        self.register_dp(
            "com.android.volley.RequestQueue",
            "add",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Callback,
            None,
        );
    }

    fn install_okhttp(&mut self) {
        let b = "okhttp3.Request$Builder";
        self.register(b, "<init>", Some(0), ApiOp::OkBuilderNew);
        self.register(b, "url", Some(1), ApiOp::OkUrl);
        self.register(b, "get", Some(0), ApiOp::OkGet);
        self.register(b, "post", Some(1), ApiOp::OkMethodBody(HttpMethod::Post));
        self.register(b, "put", Some(1), ApiOp::OkMethodBody(HttpMethod::Put));
        self.register(b, "delete", None, ApiOp::OkMethodBody(HttpMethod::Delete));
        self.register(b, "header", Some(2), ApiOp::OkHeader);
        self.register(b, "addHeader", Some(2), ApiOp::OkHeader);
        self.register(b, "build", Some(0), ApiOp::OkBuild);
        self.register("okhttp3.RequestBody", "create", None, ApiOp::OkBodyCreate);
        self.register("okhttp3.Response", "body", Some(0), ApiOp::RespEntity);
        self.register("okhttp3.Response", "code", Some(0), ApiOp::RespStatus);
        self.register("okhttp3.ResponseBody", "string", Some(0), ApiOp::RespToString);
        // DP class 8: okhttp3.OkHttpClient.
        self.register("okhttp3.OkHttpClient", "newCall", Some(1), ApiOp::OkNewCall);
        self.register_dp(
            "okhttp3.OkHttpClient",
            "newCall",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            None,
        );
        // DP class 9: okhttp3.Call.
        self.register_dp(
            "okhttp3.Call",
            "execute",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            "okhttp3.Call",
            "enqueue",
            Some(1),
            DpRequestLoc::Receiver,
            DpResponseLoc::Callback,
            None,
        );
        // DP class 10: okhttp2 (com.squareup.okhttp).
        self.register_dp(
            "com.squareup.okhttp.OkHttpClient",
            "newCall",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            None,
        );
    }

    fn install_retrofit(&mut self) {
        self.register("retrofit2.CallFactory", "create", None, ApiOp::RetrofitCreate);
        // DP class 11: retrofit2.Call.
        self.register_dp(
            "retrofit2.Call",
            "execute",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            "retrofit2.Call",
            "enqueue",
            Some(1),
            DpRequestLoc::Receiver,
            DpResponseLoc::Callback,
            None,
        );
        self.register("retrofit2.Response", "body", Some(0), ApiOp::RespEntity);
    }

    fn install_google_http(&mut self) {
        self.register(
            "com.google.api.client.http.GenericUrl",
            "<init>",
            Some(1),
            ApiOp::GoogleUrlNew,
        );
        let f = "com.google.api.client.http.HttpRequestFactory";
        self.register(f, "buildGetRequest", Some(1), ApiOp::GoogleBuildRequest(HttpMethod::Get));
        self.register(f, "buildPostRequest", Some(2), ApiOp::GoogleBuildRequest(HttpMethod::Post));
        // DP class 12: com.google.api.client.http.HttpRequest.
        let r = "com.google.api.client.http.HttpRequest";
        self.register_dp(
            r,
            "execute",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Return,
            None,
        );
        self.register_dp(
            r,
            "executeAsync",
            Some(0),
            DpRequestLoc::Receiver,
            DpResponseLoc::Callback,
            None,
        );
    }

    fn install_bee_loopj_kevinsawicki(&mut self) {
        // DP class 13: BeeFramework.
        let bee = "com.beeframework.Bee";
        self.register_dp(
            bee,
            "get",
            Some(2),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Callback,
            Some(HttpMethod::Get),
        );
        self.register_dp(
            bee,
            "post",
            Some(3),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Callback,
            Some(HttpMethod::Post),
        );
        // DP class 15: loopj android-async-http.
        let loopj = "com.loopj.android.http.AsyncHttpClient";
        self.register_dp(
            loopj,
            "get",
            Some(2),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Callback,
            Some(HttpMethod::Get),
        );
        self.register_dp(
            loopj,
            "get",
            Some(3),
            DpRequestLoc::Arg(1),
            DpResponseLoc::Callback,
            Some(HttpMethod::Get),
        );
        self.register_dp(
            loopj,
            "post",
            Some(3),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Callback,
            Some(HttpMethod::Post),
        );
        self.register_dp(
            loopj,
            "post",
            Some(4),
            DpRequestLoc::Arg(1),
            DpResponseLoc::Callback,
            Some(HttpMethod::Post),
        );
        // DP class 16: kevinsawicki http-request.
        let ks = "com.github.kevinsawicki.http.HttpRequest";
        self.register_dp(
            ks,
            "get",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            Some(HttpMethod::Get),
        );
        self.register_dp(
            ks,
            "post",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            Some(HttpMethod::Post),
        );
        self.register_dp(
            ks,
            "put",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            Some(HttpMethod::Put),
        );
        self.register(ks, "body", Some(0), ApiOp::RespToString);
    }

    fn install_media(&mut self) {
        // DP class 14: android.media.MediaPlayer — the stream URI *is* the
        // request; the response is consumed by the player (Fig. 1, RR #6).
        let mp = "android.media.MediaPlayer";
        self.register_dp(
            mp,
            "setDataSource",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Consumed,
            Some(HttpMethod::Get),
        );
        self.register_dp(
            mp,
            "create",
            Some(2),
            DpRequestLoc::Arg(1),
            DpResponseLoc::Consumed,
            Some(HttpMethod::Get),
        );
    }

    fn install_json(&mut self) {
        // org.json
        let jo = "org.json.JSONObject";
        self.register(jo, "<init>", Some(0), ApiOp::JsonNewObj);
        self.register(jo, "<init>", Some(1), ApiOp::JsonParse);
        self.register(jo, "put", Some(2), ApiOp::JsonPut);
        self.register(jo, "getString", Some(1), ApiOp::JsonGet(JsonAccess::Leaf));
        self.register(jo, "optString", None, ApiOp::JsonGet(JsonAccess::Leaf));
        self.register(jo, "getInt", Some(1), ApiOp::JsonGet(JsonAccess::Leaf));
        self.register(jo, "getBoolean", Some(1), ApiOp::JsonGet(JsonAccess::Leaf));
        self.register(jo, "getJSONObject", Some(1), ApiOp::JsonGet(JsonAccess::Object));
        self.register(jo, "getJSONArray", Some(1), ApiOp::JsonGet(JsonAccess::Array));
        self.register(jo, "toString", Some(0), ApiOp::JsonToString);
        let ja = "org.json.JSONArray";
        self.register(ja, "<init>", Some(0), ApiOp::JsonNewArr);
        self.register(ja, "<init>", Some(1), ApiOp::JsonParse);
        self.register(ja, "getJSONObject", Some(1), ApiOp::JsonArrayGet);
        self.register(ja, "get", Some(1), ApiOp::JsonArrayGet);
        self.register(ja, "length", Some(0), ApiOp::JsonArrayLen);
        self.register(ja, "put", Some(1), ApiOp::JsonArrayPut);
        self.register(ja, "toString", Some(0), ApiOp::JsonToString);
        // gson
        let gson = "com.google.gson.Gson";
        self.register(gson, "toJson", None, ApiOp::ReflectToJson);
        self.register(gson, "fromJson", Some(2), ApiOp::ReflectFromJson);
        let gjo = "com.google.gson.JsonObject";
        self.register(gjo, "<init>", Some(0), ApiOp::JsonNewObj);
        self.register(gjo, "addProperty", Some(2), ApiOp::JsonPut);
        self.register(gjo, "get", Some(1), ApiOp::JsonGet(JsonAccess::Leaf));
        self.register(gjo, "getAsJsonObject", Some(1), ApiOp::JsonGet(JsonAccess::Object));
        self.register(gjo, "getAsJsonArray", Some(1), ApiOp::JsonGet(JsonAccess::Array));
        self.register("com.google.gson.JsonParser", "parse", Some(1), ApiOp::JsonParse);
        // jackson (fasterxml + legacy codehaus)
        for om in
            ["com.fasterxml.jackson.databind.ObjectMapper", "org.codehaus.jackson.map.ObjectMapper"]
        {
            self.register(om, "readTree", Some(1), ApiOp::JsonParse);
            self.register(om, "readValue", Some(2), ApiOp::ReflectFromJson);
            self.register(om, "writeValueAsString", Some(1), ApiOp::ReflectToJson);
        }
        let jn = "com.fasterxml.jackson.databind.JsonNode";
        self.register(jn, "get", Some(1), ApiOp::JsonGet(JsonAccess::Object));
        self.register(jn, "path", Some(1), ApiOp::JsonGet(JsonAccess::Object));
        self.register(jn, "asText", Some(0), ApiOp::JsonToString);
        // fastjson
        self.register("com.alibaba.fastjson.JSON", "parseObject", Some(1), ApiOp::JsonParse);
        let fjo = "com.alibaba.fastjson.JSONObject";
        self.register(fjo, "getString", Some(1), ApiOp::JsonGet(JsonAccess::Leaf));
        self.register(fjo, "getJSONObject", Some(1), ApiOp::JsonGet(JsonAccess::Object));
        self.register(fjo, "getJSONArray", Some(1), ApiOp::JsonGet(JsonAccess::Array));
        self.register(fjo, "put", Some(2), ApiOp::JsonPut);
        self.register(fjo, "toJSONString", Some(0), ApiOp::JsonToString);
    }

    fn install_xml(&mut self) {
        self.register("javax.xml.parsers.DocumentBuilder", "parse", None, ApiOp::XmlParse);
        for cls in ["org.w3c.dom.Document", "org.w3c.dom.Element"] {
            self.register(cls, "getElementsByTagName", Some(1), ApiOp::XmlGetElements);
            self.register(cls, "getAttribute", Some(1), ApiOp::XmlGetAttr);
            self.register(cls, "getTextContent", Some(0), ApiOp::XmlGetText);
        }
        self.register("org.w3c.dom.NodeList", "item", Some(1), ApiOp::JsonArrayGet);
        self.register("android.util.Xml", "parse", None, ApiOp::XmlParse);
        self.register("org.xmlpull.v1.XmlPullParser", "getName", Some(0), ApiOp::XmlGetText);
    }

    fn install_containers(&mut self) {
        for cls in ["java.util.ArrayList", "java.util.LinkedList", "java.util.List"] {
            self.register(cls, "<init>", None, ApiOp::ListNew);
            self.register(cls, "add", Some(1), ApiOp::ListAdd);
            self.register(cls, "get", Some(1), ApiOp::ListGet);
        }
        for cls in ["java.util.HashMap", "java.util.Map"] {
            self.register(cls, "<init>", None, ApiOp::MapNew);
            self.register(cls, "put", Some(2), ApiOp::MapPut);
            self.register(cls, "get", Some(1), ApiOp::MapGet);
        }
    }

    fn install_android_state(&mut self) {
        self.register("android.content.res.Resources", "getString", Some(1), ApiOp::ResGetString);
        self.register(
            "android.content.SharedPreferences",
            "getString",
            Some(2),
            ApiOp::CellGet(CellKind::Prefs),
        );
        self.register(
            "android.content.SharedPreferences$Editor",
            "putString",
            Some(2),
            ApiOp::CellPut(CellKind::Prefs),
        );
        let db = "android.database.sqlite.SQLiteDatabase";
        self.register(db, "insert", Some(3), ApiOp::CellPut(CellKind::Database));
        self.register(db, "update", Some(4), ApiOp::CellPut(CellKind::Database));
        self.register(db, "query", None, ApiOp::DbQuery);
        self.register("android.database.Cursor", "getString", Some(1), ApiOp::CursorGet);
        self.register("android.content.ContentValues", "<init>", Some(0), ApiOp::ContentValuesNew);
        self.register("android.content.ContentValues", "put", Some(2), ApiOp::ContentValuesPut);
    }

    fn install_origins_sinks(&mut self) {
        self.register("android.location.Location", "getLatitude", Some(0), ApiOp::Origin("gps"));
        self.register("android.location.Location", "getLongitude", Some(0), ApiOp::Origin("gps"));
        self.register("android.location.Location", "getCity", Some(0), ApiOp::Origin("gps"));
        self.register("android.media.AudioRecord", "read", None, ApiOp::Origin("microphone"));
        self.register("android.hardware.Camera", "takePicture", None, ApiOp::Origin("camera"));
        self.register("android.widget.EditText", "getText", Some(0), ApiOp::Origin("user-input"));
        self.register("java.io.FileOutputStream", "write", None, ApiOp::Sink("file"));
        self.register("android.webkit.WebView", "loadUrl", Some(1), ApiOp::Sink("webview"));
        self.register(
            "android.widget.ImageView",
            "setImageBitmap",
            Some(1),
            ApiOp::Sink("image-view"),
        );
        self.register("android.media.MediaPlayer", "start", Some(0), ApiOp::Sink("media-player"));
        self.register("android.media.MediaPlayer", "prepare", Some(0), ApiOp::Sink("media-player"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::{ApkBuilder, Type};

    fn empty_prog_apk() -> extractocol_ir::Apk {
        ApkBuilder::new("t", "t").build()
    }

    #[test]
    fn dp_counts_match_the_paper() {
        let m = SemanticModel::standard();
        assert_eq!(m.dp_count(), 39, "paper §4: 39 demarcation points");
        assert_eq!(m.dp_class_count(), 16, "paper §4: from 16 classes");
    }

    #[test]
    fn direct_lookup_finds_ops() {
        let apk = empty_prog_apk();
        let prog = ProgramIndex::new(&apk);
        let m = SemanticModel::standard();
        let append = MethodRef::new(
            "java.lang.StringBuilder",
            "append",
            vec![Type::string()],
            Type::object("java.lang.StringBuilder"),
        );
        assert_eq!(m.op_for(&prog, &append), ApiOp::SbAppend);
        let exec = MethodRef::new(
            "org.apache.http.client.HttpClient",
            "execute",
            vec![Type::object("org.apache.http.client.methods.HttpUriRequest")],
            Type::object("org.apache.http.HttpResponse"),
        );
        assert!(matches!(m.op_for(&prog, &exec), ApiOp::Demarcation(_)));
        assert!(m.demarcation(&prog, &exec).is_some());
    }

    #[test]
    fn lookup_walks_superclasses_through_stubs() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("org.apache.http.client.HttpClient", |c| {
            c.stub_method("execute", vec![Type::obj_root()], Type::obj_root());
        });
        b.class("my.custom.Client", |c| {
            c.extends("org.apache.http.client.HttpClient");
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let m = SemanticModel::standard();
        let call =
            MethodRef::new("my.custom.Client", "execute", vec![Type::obj_root()], Type::obj_root());
        let dp = m.demarcation(&prog, &call).expect("inherited DP");
        assert_eq!(dp.request, DpRequestLoc::Arg(0));
        assert_eq!(dp.response, DpResponseLoc::Return);
    }

    #[test]
    fn arity_disambiguates_overloads() {
        let apk = empty_prog_apk();
        let prog = ProgramIndex::new(&apk);
        let m = SemanticModel::standard();
        // execute(host, req): the request is Arg(1).
        let exec3 = MethodRef::new(
            "org.apache.http.client.HttpClient",
            "execute",
            vec![Type::obj_root(), Type::obj_root(), Type::obj_root()],
            Type::obj_root(),
        );
        let dp = m.demarcation(&prog, &exec3).unwrap();
        assert_eq!(dp.request, DpRequestLoc::Arg(1));
    }

    #[test]
    fn plugin_registration_extends_the_model() {
        let apk = empty_prog_apk();
        let prog = ProgramIndex::new(&apk);
        let mut m = SemanticModel::standard();
        let before = m.dp_count();
        m.register_dp(
            "my.lib.Net",
            "fire",
            Some(1),
            DpRequestLoc::Arg(0),
            DpResponseLoc::Return,
            None,
        );
        assert_eq!(m.dp_count(), before + 1);
        let call = MethodRef::new("my.lib.Net", "fire", vec![Type::string()], Type::obj_root());
        assert!(m.demarcation(&prog, &call).is_some());
    }

    #[test]
    fn unmodelled_calls_are_unknown() {
        let apk = empty_prog_apk();
        let prog = ProgramIndex::new(&apk);
        let m = SemanticModel::standard();
        let call = MethodRef::new("com.example.Foo", "bar", vec![], Type::Void);
        assert_eq!(m.op_for(&prog, &call), ApiOp::Unknown);
    }
}
