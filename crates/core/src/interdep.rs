//! Inter-transaction dependency analysis (paper §3.3).
//!
//! "Extractocol also identifies fine-grained dependencies by inferring
//! whether objects that are derived from a response are used to construct
//! another request. … We identify all objects modified/set as a result of
//! response processing (response-originated objects) … and all objects
//! that make up a request (request-originating objects). Extractocol
//! infers potential dependency by checking whether the two sets overlap."
//!
//! Overlap is detected three ways, matching the paper's case studies:
//!
//! * **direct** — a statement belongs to both transaction A's response
//!   segment and transaction B's request segment (the login-token flow of
//!   radio reddit, Table 3);
//! * **state cells** — A's response slice writes an instance/static field,
//!   a `SharedPreferences` entry, or a SQLite table that B's request slice
//!   reads (TED stores thumbnail/media URIs in its SQLite DB, Table 4);
//! * and each edge carries **field granularity** where recoverable: the
//!   JSON response key the value came from and the request part (header /
//!   body key / form key / URI) it feeds — "Extractocol finally outputs
//!   which request fields originate from which response fields".

use crate::pairing::Transaction;
use crate::semantics::{ApiOp, CellKind, SemanticModel};
use crate::slicing::SliceSet;
use extractocol_ir::{Call, Expr, Local, MethodId, Place, ProgramIndex, Stmt, Value};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

/// The channel a dependency flows through.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepVia {
    /// Response-derived value used directly in request construction.
    Direct,
    /// Through an instance field (`class#field`).
    Field(String),
    /// Through a static field (`class#field`).
    Static(String),
    /// Through `SharedPreferences` (key).
    Prefs(String),
    /// Through a SQLite table (table name).
    Database(String),
}

impl fmt::Display for DepVia {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepVia::Direct => write!(f, "direct"),
            DepVia::Field(c) => write!(f, "field {c}"),
            DepVia::Static(c) => write!(f, "static {c}"),
            DepVia::Prefs(k) => write!(f, "prefs \"{k}\""),
            DepVia::Database(t) => write!(f, "db {t}"),
        }
    }
}

/// A fine-grained dependency edge between transactions.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DependencyEdge {
    /// Producing transaction id (its response originates the data).
    pub from: usize,
    /// Consuming transaction id (its request uses the data).
    pub to: usize,
    /// The channel.
    pub via: DepVia,
    /// JSON key of the response field, when recoverable.
    pub resp_field: Option<String>,
    /// Request part consuming it (`header:Cookie`, `body:uh`, `form:id`,
    /// `uri`), when recoverable.
    pub req_field: Option<String>,
}

/// What a transaction's response slice writes / request slice reads.
#[derive(Debug, Default)]
struct TxnCells {
    resp_writes: BTreeMap<DepViaKey, Option<String>>, // cell → resp json key
    req_reads: BTreeMap<DepViaKey, Option<String>>,   // cell → req part
}

type DepViaKey = DepVia;

/// Infers all dependency edges over the paired transactions.
pub fn dependencies(
    prog: &ProgramIndex<'_>,
    model: &SemanticModel,
    slices: &[SliceSet],
    txns: &[Transaction],
) -> Vec<DependencyEdge> {
    let cells: Vec<TxnCells> =
        txns.iter().map(|t| collect_cells(prog, model, &slices[t.dp_index], t)).collect();

    let mut out: BTreeSet<DependencyEdge> = BTreeSet::new();

    // Direct overlap: response stmts of A ∩ request stmts of B.
    for (ai, a) in txns.iter().enumerate() {
        for (bi, b) in txns.iter().enumerate() {
            if ai == bi {
                continue;
            }
            let mut shared: Vec<(MethodId, usize)> =
                a.response_stmts.intersection(&b.request_stmts).copied().collect();
            // HashSet intersection order is randomized; sort so the
            // reported field below is stable run-to-run.
            shared.sort();
            // The DP statements themselves are plumbing, not data overlap.
            let meaningful = shared.iter().any(|site| {
                *site != (slices[a.dp_index].dp.method, slices[a.dp_index].dp.stmt)
                    && *site != (slices[b.dp_index].dp.method, slices[b.dp_index].dp.stmt)
            });
            if meaningful {
                let resp_field = shared.iter().find_map(|&(m, s)| json_key_of(prog, model, m, s));
                out.insert(DependencyEdge {
                    from: a.id,
                    to: b.id,
                    via: DepVia::Direct,
                    resp_field,
                    req_field: None,
                });
            }
        }
    }

    // Cell overlap: writes(A) ∩ reads(B).
    for (ai, a) in txns.iter().enumerate() {
        for (bi, b) in txns.iter().enumerate() {
            if ai == bi {
                continue;
            }
            for (cell, resp_field) in &cells[ai].resp_writes {
                if let Some(req_field) = cells[bi].req_reads.get(cell) {
                    out.insert(DependencyEdge {
                        from: a.id,
                        to: b.id,
                        via: cell.clone(),
                        resp_field: resp_field.clone(),
                        req_field: req_field.clone(),
                    });
                }
            }
        }
    }

    out.into_iter().collect()
}

/// Collects the state cells a transaction's slices touch.
fn collect_cells(
    prog: &ProgramIndex<'_>,
    model: &SemanticModel,
    _slice: &SliceSet,
    txn: &Transaction,
) -> TxnCells {
    let mut cells = TxnCells::default();

    // Response side: writes.
    for &(m, s) in &txn.response_stmts {
        let stmt = &prog.method(m).body[s];
        match stmt {
            Stmt::Assign { place: Place::InstanceField { field, .. }, expr } => {
                let key = DepVia::Field(format!("{}#{}", field.class, field.name));
                let jf = expr_json_key(prog, model, m, s, expr);
                cells.resp_writes.entry(key).or_insert(jf);
            }
            Stmt::Assign { place: Place::StaticField(field), expr } => {
                let key = DepVia::Static(format!("{}#{}", field.class, field.name));
                let jf = expr_json_key(prog, model, m, s, expr);
                cells.resp_writes.entry(key).or_insert(jf);
            }
            _ => {}
        }
        if let Some(call) = stmt.call() {
            match model.op_for(prog, &call.callee) {
                ApiOp::CellPut(CellKind::Prefs) => {
                    if let Some(Value::Const(extractocol_ir::Const::Str(k))) = call.args.first() {
                        // Field granularity: which response key produced the
                        // stored value.
                        let jf =
                            call.args.get(1).and_then(|v| value_json_key(prog, model, m, s, v));
                        cells.resp_writes.entry(DepVia::Prefs(k.clone())).or_insert(jf);
                    }
                }
                ApiOp::CellPut(CellKind::Database) => {
                    if let Some(Value::Const(extractocol_ir::Const::Str(t))) = call.args.first() {
                        cells.resp_writes.entry(DepVia::Database(t.clone())).or_insert(None);
                    }
                }
                _ => {}
            }
        }
    }

    // Request side: reads.
    for &(m, s) in &txn.request_stmts {
        let stmt = &prog.method(m).body[s];
        match stmt {
            Stmt::Assign { expr: Expr::Load(Place::InstanceField { field, .. }), place } => {
                let key = DepVia::Field(format!("{}#{}", field.class, field.name));
                let part = place.base_local().and_then(|_| match place {
                    Place::Local(l) => request_part_of(prog, model, m, s, *l),
                    _ => None,
                });
                cells.req_reads.entry(key).or_insert(part);
            }
            Stmt::Assign { expr: Expr::Load(Place::StaticField(field)), place } => {
                let key = DepVia::Static(format!("{}#{}", field.class, field.name));
                let part = match place {
                    Place::Local(l) => request_part_of(prog, model, m, s, *l),
                    _ => None,
                };
                cells.req_reads.entry(key).or_insert(part);
            }
            _ => {}
        }
        if let Some(call) = stmt.call() {
            match model.op_for(prog, &call.callee) {
                ApiOp::CellGet(CellKind::Prefs) => {
                    if let Some(Value::Const(extractocol_ir::Const::Str(k))) = call.args.first() {
                        let part =
                            result_local(stmt).and_then(|l| request_part_of(prog, model, m, s, l));
                        cells.req_reads.entry(DepVia::Prefs(k.clone())).or_insert(part);
                    }
                }
                ApiOp::DbQuery => {
                    if let Some(Value::Const(extractocol_ir::Const::Str(t))) = call.args.first() {
                        cells.req_reads.entry(DepVia::Database(t.clone())).or_insert(None);
                    }
                }
                _ => {}
            }
        }
    }
    cells
}

fn result_local(stmt: &Stmt) -> Option<Local> {
    match stmt {
        Stmt::Assign { place: Place::Local(l), .. } => Some(*l),
        _ => None,
    }
}

/// The JSON key whose `get` produced this value, walking copies backward
/// within the method from statement `s`.
fn value_json_key(
    prog: &ProgramIndex<'_>,
    model: &SemanticModel,
    m: MethodId,
    s: usize,
    v: &Value,
) -> Option<String> {
    match v {
        Value::Local(l) => expr_json_key(prog, model, m, s, &Expr::Use(Value::Local(*l))),
        _ => None,
    }
}

/// The JSON key whose `get` produced this statement's RHS, walking copies
/// backward within the method.
fn expr_json_key(
    prog: &ProgramIndex<'_>,
    model: &SemanticModel,
    m: MethodId,
    s: usize,
    expr: &Expr,
) -> Option<String> {
    let mut cur: Local = match expr {
        Expr::Use(Value::Local(l)) => *l,
        Expr::Invoke(c) => return call_json_key(prog, model, c),
        _ => return None,
    };
    let body = &prog.method(m).body;
    for i in (0..s).rev() {
        match &body[i] {
            Stmt::Assign { place: Place::Local(l), expr } if *l == cur => match expr {
                Expr::Use(Value::Local(src)) => cur = *src,
                Expr::Invoke(c) => return call_json_key(prog, model, c),
                _ => return None,
            },
            _ => {}
        }
    }
    None
}

fn call_json_key(prog: &ProgramIndex<'_>, model: &SemanticModel, c: &Call) -> Option<String> {
    match model.op_for(prog, &c.callee) {
        ApiOp::JsonGet(_) => match c.args.first() {
            Some(Value::Const(extractocol_ir::Const::Str(k))) => Some(k.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// The JSON key read at a specific sliced statement (for direct overlaps).
fn json_key_of(
    prog: &ProgramIndex<'_>,
    model: &SemanticModel,
    m: MethodId,
    s: usize,
) -> Option<String> {
    prog.method(m).body[s].call().and_then(|c| call_json_key(prog, model, c))
}

/// Where a loaded value ends up in the request being built: follows copies
/// forward within the method and reports the consuming part.
fn request_part_of(
    prog: &ProgramIndex<'_>,
    model: &SemanticModel,
    m: MethodId,
    s: usize,
    start: Local,
) -> Option<String> {
    let body = &prog.method(m).body;
    let mut aliases: HashSet<Local> = HashSet::new();
    aliases.insert(start);
    for stmt in body.iter().skip(s + 1) {
        // Track copies.
        if let Stmt::Assign { place: Place::Local(dst), expr: Expr::Use(Value::Local(src)) } = stmt
        {
            if aliases.contains(src) {
                aliases.insert(*dst);
            }
        }
        let Some(call) = stmt.call() else { continue };
        let uses_alias =
            call.args.iter().any(|v| matches!(v, Value::Local(l) if aliases.contains(l)));
        if !uses_alias {
            continue;
        }
        match model.op_for(prog, &call.callee) {
            ApiOp::SetHeader | ApiOp::OkHeader => {
                if let Some(Value::Const(extractocol_ir::Const::Str(k))) = call.args.first() {
                    return Some(format!("header:{k}"));
                }
            }
            ApiOp::JsonPut => {
                if let Some(Value::Const(extractocol_ir::Const::Str(k))) = call.args.first() {
                    // only when the alias is the value, not the key
                    if matches!(call.args.get(1), Some(Value::Local(l)) if aliases.contains(l)) {
                        return Some(format!("body:{k}"));
                    }
                }
            }
            ApiOp::NameValuePairNew => {
                if let Some(Value::Const(extractocol_ir::Const::Str(k))) = call.args.first() {
                    if matches!(call.args.get(1), Some(Value::Local(l)) if aliases.contains(l)) {
                        return Some(format!("form:{k}"));
                    }
                }
            }
            ApiOp::SbAppend
            | ApiOp::StrConcat
            | ApiOp::UrlNew
            | ApiOp::ApacheRequestNew(_)
            | ApiOp::OkUrl
            | ApiOp::VolleyRequestNew => {
                return Some("uri".to_string());
            }
            _ => {
                // Track results of transforming calls as aliases.
                if let Some(l) = result_local(stmt) {
                    aliases.insert(l);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demarcation;
    use crate::pairing::pair;
    use crate::slicing::{slice_all, SliceOptions};
    use extractocol_analysis::{CallGraph, CallbackRegistry};
    use extractocol_ir::{ApkBuilder, Type};

    /// A login transaction whose response token feeds a second request's
    /// form body and header — the radio reddit shape (Table 3).
    fn login_then_vote() -> extractocol_ir::Apk {
        let mut b = ApkBuilder::new("rr", "t");
        b.class("org.apache.http.client.HttpClient", |c| {
            c.stub_method(
                "execute",
                vec![Type::obj_root()],
                Type::object("org.apache.http.HttpResponse"),
            );
        });
        b.class("t.Api", |c| {
            let modhash = c.field("mModhash", Type::string());
            let cookie = c.field("mCookie", Type::string());
            c.method("login", vec![Type::string(), Type::string()], Type::Void, |m| {
                let this = m.recv("t.Api");
                let user = m.arg(0, "user");
                let pw = m.arg(1, "pw");
                let sb = m.new_obj(
                    "java.lang.StringBuilder",
                    vec![Value::str("https://ssl.reddit.com/api/login?user=")],
                );
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(user)]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&passwd=")]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(pw)]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpPost", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let mh = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("modhash")],
                    Type::string(),
                );
                m.put_field(this, &modhash, mh);
                let ck = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("cookie")],
                    Type::string(),
                );
                m.put_field(this, &cookie, ck);
                m.ret_void();
            });
            c.method("vote", vec![Type::string()], Type::Void, |m| {
                let this = m.recv("t.Api");
                let id = m.arg(0, "id");
                let mh = m.temp(Type::string());
                m.get_field(mh, this, &modhash);
                let ck = m.temp(Type::string());
                m.get_field(ck, this, &cookie);
                let list = m.new_obj("java.util.ArrayList", vec![]);
                let p1 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("id"), Value::Local(id)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p1)]);
                let p2 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("uh"), Value::Local(mh)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p2)]);
                let ent = m.new_obj(
                    "org.apache.http.client.entity.UrlEncodedFormEntity",
                    vec![Value::Local(list)],
                );
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpPost",
                    vec![Value::str("http://www.reddit.com/api/vote")],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setEntity",
                    vec![Value::Local(ent)],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setHeader",
                    vec![Value::str("Cookie"), Value::Local(ck)],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });
        });
        b.build()
    }

    #[test]
    fn login_token_feeds_vote_request() {
        let apk = login_then_vote();
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
        let sites = demarcation::scan(&prog, &model);
        assert_eq!(sites.len(), 2);
        let slices = slice_all(&prog, &graph, &model, &sites, &SliceOptions::default());
        let txns = pair(&prog, &graph, &slices);
        assert_eq!(txns.len(), 2);
        let deps = dependencies(&prog, &model, &slices, &txns);
        assert!(!deps.is_empty(), "must find login→vote dependency");
        // Find the modhash field edge with field granularity.
        let field_edges: Vec<&DependencyEdge> = deps
            .iter()
            .filter(|d| matches!(&d.via, DepVia::Field(c) if c.contains("mModhash")))
            .collect();
        assert_eq!(field_edges.len(), 1, "deps: {deps:?}");
        let e = field_edges[0];
        assert_eq!(e.resp_field.as_deref(), Some("modhash"));
        assert_eq!(e.req_field.as_deref(), Some("form:uh"));
        // And the cookie → header edge.
        assert!(
            deps.iter().any(|d| matches!(&d.via, DepVia::Field(c) if c.contains("mCookie"))
                && d.req_field.as_deref() == Some("header:Cookie")),
            "deps: {deps:?}"
        );
        // Direction: login (txn of login method) → vote.
        let login_root = prog.resolve_method("t.Api", "login", 2).unwrap();
        for d in &deps {
            let from_txn = &txns[d.from];
            assert_eq!(from_txn.root, login_root, "dependency must originate at login");
        }
    }
}
