//! Canonical platform and library stub classes.
//!
//! Real APKs resolve calls against `android.jar` and bundled library jars;
//! our corpus apps include these *bodyless stubs* instead, so that
//!
//! * CHA and the callback registry can resolve override relationships
//!   (e.g. `doInBackground` overriding `android.os.AsyncTask`),
//! * the ProGuard-style obfuscator knows which override names to keep,
//! * and the de-obfuscation mapper (§3.4) has reference method *shapes*
//!   to match renamed library classes against —
//!   [`library_reference`] returns exactly the third-party classes
//!   (marked `is_library`) that ship inside an APK and may be obfuscated
//!   with it; platform classes never are.
//!
//! Every corpus app calls [`install`] first.

use extractocol_ir::{ApkBuilder, Class, ClassBuilder, Type};

fn obj() -> Type {
    Type::obj_root()
}

fn s() -> Type {
    Type::string()
}

fn o(n: &str) -> Type {
    Type::object(n)
}

/// Installs all platform and library stubs into an APK under construction.
pub fn install(b: &mut ApkBuilder) {
    platform(b);
    apache_http(b);
    libraries(b);
}

fn platform(b: &mut ApkBuilder) {
    b.class("java.lang.Object", |c| {
        c.no_super();
    });
    b.class("java.lang.StringBuilder", |c| {
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("<init>", vec![s()], Type::Void)
            .stub_method("append", vec![obj()], o("java.lang.StringBuilder"))
            .stub_method("toString", vec![], s());
    });
    b.class("java.lang.Thread", |c| {
        c.stub_method("<init>", vec![o("java.lang.Runnable")], Type::Void).stub_method(
            "start",
            vec![],
            Type::Void,
        );
    });
    b.iface("java.lang.Runnable", |c| {
        c.stub_method("run", vec![], Type::Void);
    });
    b.iface("java.util.concurrent.Callable", |c| {
        c.stub_method("call", vec![], obj());
    });
    b.class("java.util.Timer", |c| {
        c.stub_method("<init>", vec![], Type::Void).stub_method(
            "schedule",
            vec![o("java.util.TimerTask"), Type::Long],
            Type::Void,
        );
    });
    b.class("java.util.TimerTask", |c| {
        c.implements("java.lang.Runnable");
        c.stub_method("run", vec![], Type::Void);
    });
    b.class("java.util.ArrayList", |c| {
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("add", vec![obj()], Type::Bool)
            .stub_method("get", vec![Type::Int], obj());
    });
    b.class("java.util.HashMap", |c| {
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("put", vec![obj(), obj()], obj())
            .stub_method("get", vec![obj()], obj());
    });
    b.class("java.net.URL", |c| {
        c.stub_method("<init>", vec![s()], Type::Void)
            .stub_method("openConnection", vec![], o("java.net.HttpURLConnection"))
            .stub_method("openStream", vec![], o("java.io.InputStream"));
    });
    b.class("java.net.URLConnection", |c| {
        c.stub_method("getInputStream", vec![], o("java.io.InputStream")).stub_method(
            "setRequestProperty",
            vec![s(), s()],
            Type::Void,
        );
    });
    b.class("java.net.HttpURLConnection", |c| {
        c.extends("java.net.URLConnection");
        c.stub_method("setRequestMethod", vec![s()], Type::Void)
            .stub_method("getInputStream", vec![], o("java.io.InputStream"))
            .stub_method("getOutputStream", vec![], o("java.io.OutputStream"))
            .stub_method("connect", vec![], Type::Void);
    });
    b.class("java.net.URLEncoder", |c| {
        c.stub_method("encode", vec![s(), s()], s());
    });
    b.class("java.io.InputStream", |c| {
        c.stub_method("read", vec![], Type::Int);
    });
    b.class("java.io.OutputStream", |c| {
        c.stub_method("write", vec![Type::Byte.array_of()], Type::Void);
    });
    b.class("java.io.FileOutputStream", |c| {
        c.extends("java.io.OutputStream");
        c.stub_method("<init>", vec![s()], Type::Void).stub_method(
            "write",
            vec![Type::Byte.array_of()],
            Type::Void,
        );
    });

    // Android components and services.
    b.class("android.app.Activity", |c| {
        c.stub_method("onCreate", vec![o("android.os.Bundle")], Type::Void)
            .stub_method("onResume", vec![], Type::Void)
            .stub_method("findViewById", vec![Type::Int], o("android.view.View"))
            .stub_method("getResources", vec![], o("android.content.res.Resources"));
    });
    b.class("android.app.Service", |c| {
        c.stub_method(
            "onStartCommand",
            vec![o("android.content.Intent"), Type::Int, Type::Int],
            Type::Int,
        );
    });
    b.class("android.content.BroadcastReceiver", |c| {
        c.stub_method(
            "onReceive",
            vec![o("android.content.Context"), o("android.content.Intent")],
            Type::Void,
        );
    });
    b.class("android.os.AsyncTask", |c| {
        c.stub_method("execute", vec![obj()], Type::Void)
            .stub_method("doInBackground", vec![obj()], obj())
            .stub_method("onPostExecute", vec![obj()], Type::Void)
            .stub_method("onPreExecute", vec![], Type::Void);
    });
    b.class("android.os.Handler", |c| {
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("post", vec![o("java.lang.Runnable")], Type::Bool)
            .stub_method("postDelayed", vec![o("java.lang.Runnable"), Type::Long], Type::Bool);
    });
    b.class("android.view.View", |c| {
        c.stub_method(
            "setOnClickListener",
            vec![o("android.view.View$OnClickListener")],
            Type::Void,
        );
    });
    b.iface("android.view.View$OnClickListener", |c| {
        c.stub_method("onClick", vec![o("android.view.View")], Type::Void);
    });
    b.class("android.location.LocationManager", |c| {
        c.stub_method(
            "requestLocationUpdates",
            vec![s(), Type::Long, Type::Float, o("android.location.LocationListener")],
            Type::Void,
        );
    });
    b.iface("android.location.LocationListener", |c| {
        c.stub_method("onLocationChanged", vec![o("android.location.Location")], Type::Void);
    });
    b.class("android.location.Location", |c| {
        c.stub_method("getLatitude", vec![], Type::Double)
            .stub_method("getLongitude", vec![], Type::Double)
            .stub_method("getCity", vec![], s());
    });
    b.class("android.widget.EditText", |c| {
        c.extends("android.view.View");
        c.stub_method("getText", vec![], s());
    });
    b.class("android.widget.ImageView", |c| {
        c.extends("android.view.View");
        c.stub_method("setImageBitmap", vec![obj()], Type::Void);
    });
    b.class("android.webkit.WebView", |c| {
        c.extends("android.view.View");
        c.stub_method("loadUrl", vec![s()], Type::Void);
    });
    b.class("android.media.MediaPlayer", |c| {
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("setDataSource", vec![s()], Type::Void)
            .stub_method("prepare", vec![], Type::Void)
            .stub_method("start", vec![], Type::Void);
    });
    b.class("android.media.AudioRecord", |c| {
        c.stub_method("read", vec![Type::Byte.array_of(), Type::Int, Type::Int], Type::Int);
    });
    b.class("android.content.res.Resources", |c| {
        c.stub_method("getString", vec![s()], s());
    });
    b.class("android.content.SharedPreferences", |c| {
        c.stub_method("getString", vec![s(), s()], s()).stub_method(
            "edit",
            vec![],
            o("android.content.SharedPreferences$Editor"),
        );
    });
    b.class("android.content.SharedPreferences$Editor", |c| {
        c.stub_method("putString", vec![s(), s()], o("android.content.SharedPreferences$Editor"))
            .stub_method("apply", vec![], Type::Void);
    });
    b.class("android.database.sqlite.SQLiteDatabase", |c| {
        c.stub_method("insert", vec![s(), s(), o("android.content.ContentValues")], Type::Long)
            .stub_method(
                "update",
                vec![s(), o("android.content.ContentValues"), s(), s().array_of()],
                Type::Int,
            )
            .stub_method("query", vec![s(), s().array_of(), s()], o("android.database.Cursor"));
    });
    b.class("android.database.Cursor", |c| {
        c.stub_method("getString", vec![Type::Int], s()).stub_method(
            "moveToNext",
            vec![],
            Type::Bool,
        );
    });
    b.class("android.content.ContentValues", |c| {
        c.stub_method("<init>", vec![], Type::Void).stub_method(
            "put",
            vec![s(), obj()],
            Type::Void,
        );
    });

    // org.json ships in the platform.
    b.class("org.json.JSONObject", |c| {
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("<init>", vec![s()], Type::Void)
            .stub_method("put", vec![s(), obj()], o("org.json.JSONObject"))
            .stub_method("getString", vec![s()], s())
            .stub_method("optString", vec![s()], s())
            .stub_method("getInt", vec![s()], Type::Int)
            .stub_method("getBoolean", vec![s()], Type::Bool)
            .stub_method("getJSONObject", vec![s()], o("org.json.JSONObject"))
            .stub_method("getJSONArray", vec![s()], o("org.json.JSONArray"))
            .stub_method("toString", vec![], s());
    });
    b.class("org.json.JSONArray", |c| {
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("<init>", vec![s()], Type::Void)
            .stub_method("length", vec![], Type::Int)
            .stub_method("getJSONObject", vec![Type::Int], o("org.json.JSONObject"))
            .stub_method("put", vec![obj()], o("org.json.JSONArray"))
            .stub_method("toString", vec![], s());
    });

    // W3C DOM (platform XML).
    b.class("javax.xml.parsers.DocumentBuilder", |c| {
        c.stub_method("parse", vec![obj()], o("org.w3c.dom.Document"));
    });
    b.class("org.w3c.dom.Document", |c| {
        c.stub_method("getElementsByTagName", vec![s()], o("org.w3c.dom.NodeList"));
    });
    b.class("org.w3c.dom.Element", |c| {
        c.stub_method("getElementsByTagName", vec![s()], o("org.w3c.dom.NodeList"))
            .stub_method("getAttribute", vec![s()], s())
            .stub_method("getTextContent", vec![], s());
    });
    b.class("org.w3c.dom.NodeList", |c| {
        c.stub_method("item", vec![Type::Int], o("org.w3c.dom.Element")).stub_method(
            "getLength",
            vec![],
            Type::Int,
        );
    });
}

fn apache_http(b: &mut ApkBuilder) {
    b.iface("org.apache.http.client.HttpClient", |c| {
        c.stub_method(
            "execute",
            vec![o("org.apache.http.client.methods.HttpUriRequest")],
            o("org.apache.http.HttpResponse"),
        );
    });
    b.class("org.apache.http.impl.client.DefaultHttpClient", |c| {
        c.implements("org.apache.http.client.HttpClient");
        c.stub_method("<init>", vec![], Type::Void).stub_method(
            "execute",
            vec![o("org.apache.http.client.methods.HttpUriRequest")],
            o("org.apache.http.HttpResponse"),
        );
    });
    b.class("android.net.http.AndroidHttpClient", |c| {
        c.implements("org.apache.http.client.HttpClient");
        c.stub_method("newInstance", vec![s()], o("android.net.http.AndroidHttpClient"))
            .stub_method(
                "execute",
                vec![o("org.apache.http.client.methods.HttpUriRequest")],
                o("org.apache.http.HttpResponse"),
            );
    });
    b.class("org.apache.http.client.methods.HttpUriRequest", |c| {
        c.stub_method("setHeader", vec![s(), s()], Type::Void).stub_method(
            "addHeader",
            vec![s(), s()],
            Type::Void,
        );
    });
    for m in ["HttpGet", "HttpPost", "HttpPut", "HttpDelete"] {
        let name = format!("org.apache.http.client.methods.{m}");
        b.class(&name, |c: &mut ClassBuilder| {
            c.extends("org.apache.http.client.methods.HttpUriRequest");
            c.stub_method("<init>", vec![s()], Type::Void)
                .stub_method("setHeader", vec![s(), s()], Type::Void)
                .stub_method("setEntity", vec![o("org.apache.http.HttpEntity")], Type::Void);
        });
    }
    b.class("org.apache.http.HttpResponse", |c| {
        c.stub_method("getEntity", vec![], o("org.apache.http.HttpEntity")).stub_method(
            "getStatusLine",
            vec![],
            obj(),
        );
    });
    b.class("org.apache.http.HttpEntity", |c| {
        c.stub_method("getContent", vec![], o("java.io.InputStream"));
    });
    b.class("org.apache.http.util.EntityUtils", |c| {
        c.stub_method("toString", vec![o("org.apache.http.HttpEntity")], s());
    });
    b.class("org.apache.commons.io.IOUtils", |c| {
        c.stub_method("toString", vec![o("java.io.InputStream")], s());
    });
    // An unmodeled ad/analytics library doing its own socket I/O — the
    // §5.1 "missed messages" source. Not in the semantic model on purpose.
    b.class("com.adlib.Tracker", |c| {
        c.library();
        c.stub_method("send", vec![s()], Type::Void).stub_method(
            "sendPost",
            vec![s(), s()],
            Type::Void,
        );
    });
    b.class("org.apache.http.client.entity.UrlEncodedFormEntity", |c| {
        c.extends("org.apache.http.HttpEntity");
        c.stub_method("<init>", vec![o("java.util.ArrayList")], Type::Void);
    });
    b.class("org.apache.http.entity.StringEntity", |c| {
        c.extends("org.apache.http.HttpEntity");
        c.stub_method("<init>", vec![s()], Type::Void);
    });
    b.class("org.apache.http.message.BasicNameValuePair", |c| {
        c.stub_method("<init>", vec![s(), s()], Type::Void);
    });
}

/// Bundled third-party libraries (subject to obfuscation, `is_library`).
fn libraries(b: &mut ApkBuilder) {
    b.class("okhttp3.OkHttpClient", |c| {
        c.library();
        c.stub_method("<init>", vec![], Type::Void).stub_method(
            "newCall",
            vec![o("okhttp3.Request")],
            o("okhttp3.Call"),
        );
    });
    b.class("okhttp3.Request", |c| {
        c.library();
    });
    b.class("okhttp3.Request$Builder", |c| {
        c.library();
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("url", vec![s()], o("okhttp3.Request$Builder"))
            .stub_method("get", vec![], o("okhttp3.Request$Builder"))
            .stub_method("post", vec![o("okhttp3.RequestBody")], o("okhttp3.Request$Builder"))
            .stub_method("put", vec![o("okhttp3.RequestBody")], o("okhttp3.Request$Builder"))
            .stub_method("delete", vec![], o("okhttp3.Request$Builder"))
            .stub_method("header", vec![s(), s()], o("okhttp3.Request$Builder"))
            .stub_method("build", vec![], o("okhttp3.Request"));
    });
    b.class("okhttp3.RequestBody", |c| {
        c.library();
        c.stub_method("create", vec![o("okhttp3.MediaType"), s()], o("okhttp3.RequestBody"));
    });
    b.class("okhttp3.MediaType", |c| {
        c.library();
        c.stub_method("parse", vec![s()], o("okhttp3.MediaType"));
    });
    b.class("okhttp3.Call", |c| {
        c.library();
        c.stub_method("execute", vec![], o("okhttp3.Response")).stub_method(
            "enqueue",
            vec![o("okhttp3.Callback")],
            Type::Void,
        );
    });
    b.iface("okhttp3.Callback", |c| {
        c.library();
        c.stub_method("onResponse", vec![o("okhttp3.Call"), o("okhttp3.Response")], Type::Void)
            .stub_method("onFailure", vec![o("okhttp3.Call"), obj()], Type::Void);
    });
    b.class("okhttp3.Response", |c| {
        c.library();
        c.stub_method("body", vec![], o("okhttp3.ResponseBody")).stub_method(
            "code",
            vec![],
            Type::Int,
        );
    });
    b.class("okhttp3.ResponseBody", |c| {
        c.library();
        c.stub_method("string", vec![], s());
    });

    b.class("com.android.volley.RequestQueue", |c| {
        c.library();
        c.stub_method(
            "add",
            vec![o("com.android.volley.Request")],
            o("com.android.volley.Request"),
        );
    });
    b.class("com.android.volley.Request", |c| {
        c.library();
        c.stub_method("<init>", vec![Type::Int, s()], Type::Void)
            .stub_method("deliverResponse", vec![obj()], Type::Void)
            .stub_method("parseNetworkResponse", vec![obj()], obj());
    });
    b.class("com.android.volley.toolbox.JsonObjectRequest", |c| {
        c.library();
        c.extends("com.android.volley.Request");
        c.stub_method("<init>", vec![Type::Int, s(), o("org.json.JSONObject")], Type::Void);
    });
    b.class("com.android.volley.toolbox.StringRequest", |c| {
        c.library();
        c.extends("com.android.volley.Request");
        c.stub_method("<init>", vec![Type::Int, s()], Type::Void);
    });
    b.class("com.android.volley.toolbox.Volley", |c| {
        c.library();
        c.stub_method("newRequestQueue", vec![obj()], o("com.android.volley.RequestQueue"));
    });

    b.class("retrofit2.CallFactory", |c| {
        c.library();
        c.stub_method("create", vec![s(), s(), obj()], o("retrofit2.Call"));
    });
    b.class("retrofit2.Call", |c| {
        c.library();
        c.stub_method("execute", vec![], o("retrofit2.Response")).stub_method(
            "enqueue",
            vec![o("retrofit2.Callback")],
            Type::Void,
        );
    });
    b.iface("retrofit2.Callback", |c| {
        c.library();
        c.stub_method("onResponse", vec![o("retrofit2.Call"), o("retrofit2.Response")], Type::Void)
            .stub_method("onFailure", vec![o("retrofit2.Call"), obj()], Type::Void);
    });
    b.class("retrofit2.Response", |c| {
        c.library();
        c.stub_method("body", vec![], obj());
    });

    b.class("com.google.gson.Gson", |c| {
        c.library();
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("toJson", vec![obj()], s())
            .stub_method("fromJson", vec![s(), o("java.lang.Class")], obj());
    });
    b.class("com.google.gson.JsonObject", |c| {
        c.library();
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("addProperty", vec![s(), s()], Type::Void)
            .stub_method("get", vec![s()], obj());
    });

    b.class("com.fasterxml.jackson.databind.ObjectMapper", |c| {
        c.library();
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("readTree", vec![s()], o("com.fasterxml.jackson.databind.JsonNode"))
            .stub_method("readValue", vec![s(), o("java.lang.Class")], obj())
            .stub_method("writeValueAsString", vec![obj()], s());
    });
    b.class("com.fasterxml.jackson.databind.JsonNode", |c| {
        c.library();
        c.stub_method("get", vec![s()], o("com.fasterxml.jackson.databind.JsonNode"))
            .stub_method("path", vec![s()], o("com.fasterxml.jackson.databind.JsonNode"))
            .stub_method("asText", vec![], s());
    });

    b.class("com.beeframework.Bee", |c| {
        c.library();
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("get", vec![s(), o("com.beeframework.Callback")], Type::Void)
            .stub_method("post", vec![s(), s(), o("com.beeframework.Callback")], Type::Void);
    });
    b.iface("com.beeframework.Callback", |c| {
        c.library();
        c.stub_method("onReceive", vec![s()], Type::Void);
    });

    b.class("com.loopj.android.http.AsyncHttpClient", |c| {
        c.library();
        c.stub_method("<init>", vec![], Type::Void)
            .stub_method("get", vec![s(), o("com.loopj.android.http.ResponseHandler")], Type::Void)
            .stub_method(
                "post",
                vec![s(), s(), o("com.loopj.android.http.ResponseHandler")],
                Type::Void,
            );
    });
    b.iface("com.loopj.android.http.ResponseHandler", |c| {
        c.library();
        c.stub_method("onSuccess", vec![s()], Type::Void);
    });

    b.class("com.github.kevinsawicki.http.HttpRequest", |c| {
        c.library();
        c.stub_method("get", vec![s()], o("com.github.kevinsawicki.http.HttpRequest"))
            .stub_method("post", vec![s()], o("com.github.kevinsawicki.http.HttpRequest"))
            .stub_method("put", vec![s()], o("com.github.kevinsawicki.http.HttpRequest"))
            .stub_method("body", vec![], s());
    });

    b.class("com.google.api.client.http.GenericUrl", |c| {
        c.library();
        c.stub_method("<init>", vec![s()], Type::Void);
    });
    b.class("com.google.api.client.http.HttpRequestFactory", |c| {
        c.library();
        c.stub_method(
            "buildGetRequest",
            vec![o("com.google.api.client.http.GenericUrl")],
            o("com.google.api.client.http.HttpRequest"),
        )
        .stub_method(
            "buildPostRequest",
            vec![o("com.google.api.client.http.GenericUrl"), obj()],
            o("com.google.api.client.http.HttpRequest"),
        );
    });
    b.class("com.google.api.client.http.HttpRequest", |c| {
        c.library();
        c.stub_method("execute", vec![], obj());
    });

    b.class("rx.Observable", |c| {
        c.library();
        c.stub_method("subscribe", vec![o("rx.Observer")], Type::Void);
    });
    b.iface("rx.Observer", |c| {
        c.library();
        c.stub_method("onNext", vec![obj()], Type::Void);
    });
}

/// The reference third-party library classes for the de-obfuscation
/// mapper: what Extractocol "knows" unobfuscated libraries look like.
pub fn library_reference() -> Vec<Class> {
    let mut b = ApkBuilder::new("reference", "reference");
    libraries(&mut b);
    b.build().classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn stubs_install_and_validate() {
        let mut b = ApkBuilder::new("t", "t");
        install(&mut b);
        let apk = b.build();
        assert!(validate_apk(&apk).is_empty());
        assert!(apk.class("android.os.AsyncTask").is_some());
        assert!(apk.class("okhttp3.Call").unwrap().is_library);
        assert!(!apk.class("java.lang.StringBuilder").unwrap().is_library);
    }

    #[test]
    fn reference_is_library_only() {
        let classes = library_reference();
        assert!(classes.iter().all(|c| c.is_library));
        assert!(classes.iter().any(|c| c.name == "okhttp3.Request$Builder"));
    }
}
