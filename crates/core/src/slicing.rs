//! Network-aware program slicing (paper §3.1).
//!
//! From every demarcation point, Extractocol runs *bi-directional* taint
//! propagation: backward from the request operand (yielding the **request
//! slice** — "the code and objects for constructing a request") and forward
//! from the response object (the **response slice** — "the code and objects
//! used for processing a response"). Two refinements follow:
//!
//! * **Object-aware slice augmentation**: a forward slice "may not be
//!   self-contained … if an object used in a forward slice is initialized
//!   before the demarcation point"; such initialization statements are
//!   pulled in from backward slices sharing the DP, to a fixpoint.
//! * **Asynchronous events** (§3.4): request-constructing heap objects may
//!   be written by one event handler and read by another; for each field
//!   cell read in a request slice, backward propagation re-runs from every
//!   out-of-slice store to that cell (one hop, matching the paper's stated
//!   limitation).

use crate::demarcation::DpSite;
use crate::flowmodel::SemanticFlowModel;
use crate::semantics::{DpResponseLoc, SemanticModel};
use extractocol_analysis::{
    AccessPath, CacheStats, CallGraph, Direction, PointsTo, Seed, TaintEngine, TaintOptions,
    TaintReport,
};
use extractocol_ir::{Expr, Local, MethodId, Place, ProgramIndex, Stmt, Value};
use std::collections::HashSet;

/// Options for the slicing phase.
#[derive(Clone, Debug)]
pub struct SliceOptions {
    /// Enable the §3.4 asynchronous-event heuristic (the evaluation turns
    /// it off for open-source apps and on for closed-source ones, §5.1).
    pub async_heuristic: bool,
    /// How many asynchronous hops to chase. The paper's implementation
    /// "only detects dependencies across one hop" but notes that "one can
    /// perform multiple iterations until it does not discover new
    /// dependencies" (§4) — values > 1 implement that extension.
    pub async_hops: usize,
    /// Enable object-aware forward-slice augmentation (ablation toggle).
    pub augmentation: bool,
    /// Access-path depth for the taint engine.
    pub max_field_depth: usize,
}

impl Default for SliceOptions {
    fn default() -> Self {
        SliceOptions {
            async_heuristic: true,
            async_hops: 1,
            augmentation: true,
            max_field_depth: 2,
        }
    }
}

/// The slices of one demarcation point.
#[derive(Debug)]
pub struct SliceSet {
    pub dp: DpSite,
    /// Backward (request) slice statements.
    pub request_slice: HashSet<(MethodId, usize)>,
    /// Forward (response) slice statements, after augmentation.
    pub response_slice: HashSet<(MethodId, usize)>,
    /// Full backward report (facts, statics) for downstream phases.
    pub request_report: TaintReport,
    /// Full forward report.
    pub response_report: TaintReport,
}

impl SliceSet {
    /// All statements in either slice.
    pub fn all_stmts(&self) -> HashSet<(MethodId, usize)> {
        self.request_slice.union(&self.response_slice).copied().collect()
    }
}

/// Aggregate slice statistics (paper Fig. 3 reports Diode's slices cover
/// 6.3% of all code).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceStats {
    pub total_stmts: usize,
    pub sliced_stmts: usize,
}

impl SliceStats {
    /// Sliced fraction of the program.
    pub fn fraction(&self) -> f64 {
        if self.total_stmts == 0 {
            0.0
        } else {
            self.sliced_stmts as f64 / self.total_stmts as f64
        }
    }
}

/// Runs bidirectional slicing for every DP site, sequentially.
pub fn slice_all(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    model: &SemanticModel,
    sites: &[DpSite],
    opts: &SliceOptions,
) -> Vec<SliceSet> {
    slice_all_with(prog, graph, model, sites, opts, 1, None).0
}

/// Runs bidirectional slicing for every DP site, fanning independent DPs
/// across up to `jobs` worker threads (`0` = one per core, `1` =
/// sequential). One [`TaintEngine`] — and therefore one method-summary
/// cache — is shared by every worker, so helper methods reached from
/// several DPs are analyzed once; the returned [`CacheStats`] quantifies
/// that sharing. Results are ordered by DP site regardless of `jobs`.
///
/// With `pts`, the engine consults alias information (narrowed virtual
/// transfer), the §3.4 async heuristic only bridges field cells whose
/// base objects may alias, and augmentation seeds initialization contexts
/// from allocation sites.
pub fn slice_all_with(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    model: &SemanticModel,
    sites: &[DpSite],
    opts: &SliceOptions,
    jobs: usize,
    pts: Option<&PointsTo>,
) -> (Vec<SliceSet>, CacheStats) {
    slice_all_traced(
        prog,
        graph,
        model,
        sites,
        opts,
        jobs,
        pts,
        &extractocol_obs::TraceCollector::disabled(),
    )
}

/// [`slice_all_with`], recording one `dp` span per demarcation point into
/// `trace` (attributes: `dp_id`, `method`, slice sizes, summary-cache
/// delta). Worker threads record into the same collector; with `jobs <=
/// 1` the spans nest under the caller's open `phase:slicing` span.
#[allow(clippy::too_many_arguments)]
pub fn slice_all_traced(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    model: &SemanticModel,
    sites: &[DpSite],
    opts: &SliceOptions,
    jobs: usize,
    pts: Option<&PointsTo>,
    trace: &extractocol_obs::TraceCollector,
) -> (Vec<SliceSet>, CacheStats) {
    let flow_model = SemanticFlowModel::new(model, prog);
    let engine = TaintEngine::with_pointsto(
        prog,
        graph,
        &flow_model,
        TaintOptions { max_field_depth: opts.max_field_depth, ..TaintOptions::default() },
        pts,
    );
    let sets = slice_all_on(&engine, prog, graph, sites, opts, jobs, pts, trace);
    (sets, engine.cache_stats())
}

/// [`slice_all_traced`] over a caller-owned [`TaintEngine`] — the hook the
/// incremental pipeline uses to preload persisted summaries before slicing
/// and export the final summary set afterwards. The engine must have been
/// built over `prog`/`graph` with the same `pts` and field depth.
#[allow(clippy::too_many_arguments)]
pub fn slice_all_on(
    engine: &TaintEngine<'_, '_, '_>,
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    sites: &[DpSite],
    opts: &SliceOptions,
    jobs: usize,
    pts: Option<&PointsTo>,
    trace: &extractocol_obs::TraceCollector,
) -> Vec<SliceSet> {
    crate::par::parallel_map(sites, jobs, |_, dp| {
        let mut span = trace.span_in("dp", format!("dp:{}", dp.id));
        let before = engine.cache_stats();
        let set = slice_one(prog, graph, engine, dp, opts, pts);
        if span.is_recording() {
            let after = engine.cache_stats();
            let m = prog.method(dp.method);
            span.attr("dp_id", dp.id)
                .attr("method", format!("{}.{}", prog.class(dp.method.class).name, m.name))
                .attr("dp_class", dp.spec.class.as_str())
                .attr("request_stmts", set.request_slice.len())
                .attr("response_stmts", set.response_slice.len())
                .attr("cache_lookups_during", after.lookups() - before.lookups());
        }
        set
    })
}

fn slice_one(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    engine: &TaintEngine<'_, '_, '_>,
    dp: &DpSite,
    opts: &SliceOptions,
    pts: Option<&PointsTo>,
) -> SliceSet {
    // ---- backward (request) slice ----
    let mut request_report = TaintReport::default();
    if let Some(Value::Local(req)) = &dp.request_value {
        request_report = engine.run(
            Direction::Backward,
            &[Seed { method: dp.method, stmt: dp.stmt, fact: AccessPath::local(*req) }],
        );
        if opts.async_heuristic {
            for _ in 0..opts.async_hops.max(1) {
                if !async_augment(prog, engine, &mut request_report, pts) {
                    break; // fixpoint: no new dependencies discovered
                }
            }
        }
    }
    let mut request_slice = request_report.slice.clone();
    request_slice.insert((dp.method, dp.stmt));

    // ---- forward (response) slice ----
    let mut seeds: Vec<Seed> = Vec::new();
    match dp.spec.response {
        DpResponseLoc::Return => {
            if let Some(Place::Local(resp)) = &dp.response_place {
                // The fact holds after the DP statement: seed at the DP and
                // let the engine's successor propagation carry it; seeding
                // directly at successors keeps the DP out of the kill path.
                let body_len = prog.method(dp.method).body.len();
                if dp.stmt + 1 < body_len {
                    seeds.push(Seed {
                        method: dp.method,
                        stmt: dp.stmt + 1,
                        fact: AccessPath::local(*resp),
                    });
                }
            }
        }
        DpResponseLoc::Callback => {
            // The response arrives as a framework-fed callback parameter:
            // seed every implicit-edge parameter with no app-side source.
            for e in graph.implicit_of((dp.method, dp.stmt)) {
                let target = prog.method(e.target);
                if target.body.is_empty() {
                    continue;
                }
                for (pi, from) in e.param_from.iter().enumerate() {
                    if from.is_some() {
                        continue;
                    }
                    if let Some(l) = param_local(prog, e.target, pi) {
                        seeds.push(Seed { method: e.target, stmt: 0, fact: AccessPath::local(l) });
                    }
                }
            }
        }
        DpResponseLoc::Consumed => {}
    }
    let mut response_report = if seeds.is_empty() {
        TaintReport::default()
    } else {
        engine.run(Direction::Forward, &seeds)
    };

    // ---- object-aware augmentation ----
    if opts.augmentation {
        augment(prog, &request_report, &mut response_report, (dp.method, dp.stmt), pts);
    }
    let mut response_slice = response_report.slice.clone();
    if !seeds.is_empty() {
        response_slice.insert((dp.method, dp.stmt));
    }

    SliceSet { dp: dp.clone(), request_slice, response_slice, request_report, response_report }
}

/// The local bound to parameter `pi` of `mid`.
fn param_local(prog: &ProgramIndex<'_>, mid: MethodId, pi: usize) -> Option<Local> {
    prog.method(mid).body.iter().find_map(|s| match s {
        Stmt::Identity { local, kind: extractocol_ir::IdentityKind::Param(p) }
            if *p as usize == pi =>
        {
            Some(*local)
        }
        _ => None,
    })
}

/// The local defined by a statement, if it assigns a whole local.
fn defined_local(stmt: &Stmt) -> Option<Local> {
    match stmt {
        Stmt::Assign { place: Place::Local(l), .. } => Some(*l),
        _ => None,
    }
}

/// The `<init>` call paired with the allocation at `(mid, alloc_stmt)`:
/// the first `specialinvoke <init>` on the allocated local after the
/// allocation, stopping if the local is reassigned first.
fn constructor_after(prog: &ProgramIndex<'_>, mid: MethodId, alloc_stmt: usize) -> Option<usize> {
    let body = &prog.method(mid).body;
    let obj = defined_local(body.get(alloc_stmt)?)?;
    for (off, stmt) in body[alloc_stmt + 1..].iter().enumerate() {
        let si = alloc_stmt + 1 + off;
        if let Stmt::Invoke(c) = stmt {
            if c.callee.name == "<init>"
                && c.receiver.as_ref().and_then(Value::as_local) == Some(obj)
            {
                return Some(si);
            }
        }
        if defined_local(stmt) == Some(obj) {
            return None;
        }
    }
    None
}

/// All locals read by a statement.
fn used_locals(stmt: &Stmt) -> Vec<Local> {
    fn add_value(out: &mut Vec<Local>, v: &Value) {
        if let Value::Local(l) = v {
            out.push(*l);
        }
    }
    let mut out = Vec::new();
    match stmt {
        Stmt::Assign { place, expr } => {
            match place {
                Place::InstanceField { base, .. } => out.push(*base),
                Place::ArrayElem { base, index } => {
                    out.push(*base);
                    add_value(&mut out, index);
                }
                _ => {}
            }
            match expr {
                Expr::Load(p) => {
                    if let Some(b) = p.base_local() {
                        out.push(b);
                    }
                    if let Place::ArrayElem { index, .. } = p {
                        add_value(&mut out, index);
                    }
                }
                other => {
                    for v in other.operands() {
                        add_value(&mut out, v);
                    }
                }
            }
        }
        Stmt::Invoke(c) => {
            for v in c.operands() {
                add_value(&mut out, v);
            }
        }
        Stmt::If { cond, .. } => {
            add_value(&mut out, &cond.lhs);
            add_value(&mut out, &cond.rhs);
        }
        Stmt::Switch { scrutinee, .. } => add_value(&mut out, scrutinee),
        Stmt::Return(Some(v)) | Stmt::Throw(v) => add_value(&mut out, v),
        _ => {}
    }
    out
}

/// Object-aware augmentation: make forward slices self-contained by
/// pulling in the initialization context of objects they use — both from
/// the request slice sharing the DP and from the surrounding method bodies
/// ("if an object used in a forward slice is initialized before the
/// demarcation point, the slice does not contain the initialization
/// parameters", §3.1) — repeating "until no statements are added".
fn augment(
    prog: &ProgramIndex<'_>,
    request: &TaintReport,
    response: &mut TaintReport,
    dp_site: (MethodId, usize),
    pts: Option<&PointsTo>,
) {
    // Candidate statements: the request slice plus every statement of a
    // method the response slice already touches. The DP statement itself is
    // never a candidate: pulling it in would chain backwards through the
    // request operand and drag the entire request construction into the
    // response slice.
    let mut candidates: Vec<(MethodId, usize)> =
        request.slice.iter().copied().filter(|site| *site != dp_site).collect();
    let mut touched: HashSet<MethodId> = response.slice.iter().map(|(m, _)| *m).collect();

    // With points-to results, initialization contexts come from the
    // objects' actual allocation sites — which may live in a method
    // neither slice has touched (a factory, a shared setup helper) that
    // the declared-type/def-chain candidates above can never reach.
    if let Some(pts) = pts {
        let mut extra: Vec<(MethodId, usize)> = Vec::new();
        for &(m, s) in &response.slice {
            for l in used_locals(&prog.method(m).body[s]) {
                for &a in pts.local_pts(m, l) {
                    let alloc = pts.alloc(a);
                    extra.push((alloc.method, alloc.stmt));
                    // The paired constructor call directly follows the
                    // allocation in three-address form.
                    if let Some(ctor) = constructor_after(prog, alloc.method, alloc.stmt) {
                        extra.push((alloc.method, ctor));
                    }
                }
            }
        }
        extra.sort_unstable();
        extra.dedup();
        for site in extra {
            // Allocations inside the DP's own method are left to the
            // def-chain fixpoint below — importing them wholesale would
            // pull request-side construction into the response slice.
            if site != dp_site && site.0 != dp_site.0 {
                response.slice.insert(site);
                touched.insert(site.0);
            }
        }
    }

    for m in touched {
        for s in 0..prog.method(m).body.len() {
            if (m, s) != dp_site {
                candidates.push((m, s));
            }
        }
    }
    loop {
        let mut added = false;
        // Locals used by the current response slice, per method.
        let mut used: HashSet<(MethodId, Local)> = HashSet::new();
        for &(m, s) in &response.slice {
            for l in used_locals(&prog.method(m).body[s]) {
                used.insert((m, l));
            }
        }
        for &(m, s) in &candidates {
            if response.slice.contains(&(m, s)) {
                continue;
            }
            let stmt = &prog.method(m).body[s];
            // A statement belongs if it defines a local the slice uses, or
            // is the constructor call of such a local.
            let defines_used =
                defined_local(stmt).map(|def| used.contains(&(m, def))).unwrap_or(false);
            let constructs_used = matches!(
                stmt,
                Stmt::Invoke(c) if c.callee.name == "<init>"
                    && c.receiver.as_ref().and_then(Value::as_local)
                        .map(|l| used.contains(&(m, l)))
                        .unwrap_or(false)
            );
            if defines_used || constructs_used {
                response.slice.insert((m, s));
                added = true;
            }
        }
        if !added {
            break;
        }
    }
}

/// §3.4 asynchronous-event heuristic: for each instance-field cell *read*
/// inside the request slice, find stores to the same cell outside the
/// slice and re-run backward propagation from the stored value, merging
/// the result. Each invocation chases one hop; returns whether it grew
/// the slice (callers iterate for the §4 multi-hop extension).
///
/// Cells are `(class, field)` pairs, so without alias information every
/// store to `C.f` bridges to every read of `C.f` — taint bleeds across
/// unrelated heap objects. With points-to results, a store only bridges
/// when its base object may alias some base object the slice reads.
fn async_augment(
    prog: &ProgramIndex<'_>,
    engine: &TaintEngine<'_, '_, '_>,
    report: &mut TaintReport,
    pts: Option<&PointsTo>,
) -> bool {
    // Field cells read by sliced statements, with the base locals reading
    // them (the alias side of the bridge).
    let mut cells: HashSet<(String, String)> = HashSet::new();
    let mut read_bases: Vec<(MethodId, extractocol_ir::Local)> = Vec::new();
    for &(m, s) in &report.slice {
        if let Stmt::Assign { expr: Expr::Load(Place::InstanceField { base, field }), .. } =
            &prog.method(m).body[s]
        {
            cells.insert((field.class.clone(), field.name.clone()));
            read_bases.push((m, *base));
        }
    }
    if cells.is_empty() {
        return false;
    }
    // Out-of-slice stores to those cells (alias-compatible ones only,
    // when points-to results are available).
    let may_bridge = |mid: MethodId, store_base: extractocol_ir::Local| -> bool {
        match pts {
            None => true,
            Some(p) => read_bases.iter().any(|&rb| p.may_alias((mid, store_base), rb)),
        }
    };
    let mut seeds: Vec<Seed> = Vec::new();
    let mut store_sites: Vec<(MethodId, usize)> = Vec::new();
    // Restricted to the engine's scope: in targeted mode a store outside
    // the cone cannot bridge (the cone is closed over field couplings, so
    // any store to a cell the slice reads is already inside it).
    for mid in prog.concrete_methods().filter(|&m| engine.in_scope(m)) {
        for (si, stmt) in prog.method(mid).body.iter().enumerate() {
            if report.slice.contains(&(mid, si)) {
                continue;
            }
            if let Stmt::Assign { place: Place::InstanceField { base, field }, expr } = stmt {
                if cells.contains(&(field.class.clone(), field.name.clone()))
                    && may_bridge(mid, *base)
                {
                    store_sites.push((mid, si));
                    if let Expr::Use(Value::Local(v)) = expr {
                        seeds.push(Seed { method: mid, stmt: si, fact: AccessPath::local(*v) });
                    }
                }
            }
        }
    }
    if store_sites.is_empty() {
        return false;
    }
    let before = report.slice.len();
    let extra = engine.run(Direction::Backward, &seeds);
    report.slice.extend(extra.slice);
    report.slice.extend(store_sites);
    for (k, v) in extra.facts_at {
        report.facts_at.entry(k).or_default().extend(v);
    }
    report.statics.extend(extra.statics);
    report.slice.len() > before
}

/// Computes slice statistics over a set of slices.
pub fn stats(prog: &ProgramIndex<'_>, slices: &[SliceSet]) -> SliceStats {
    let total: usize = prog.concrete_methods().map(|m| prog.method(m).body.len()).sum();
    let mut sliced: HashSet<(MethodId, usize)> = HashSet::new();
    for s in slices {
        sliced.extend(s.all_stmts());
    }
    SliceStats { total_stmts: total, sliced_stmts: sliced.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demarcation;
    use extractocol_analysis::CallbackRegistry;
    use extractocol_ir::{ApkBuilder, Type};

    fn http_stubs(b: &mut ApkBuilder) {
        b.class("org.apache.http.client.HttpClient", |c| {
            c.stub_method(
                "execute",
                vec![Type::obj_root()],
                Type::object("org.apache.http.HttpResponse"),
            );
        });
    }

    fn run(apk: &extractocol_ir::Apk, opts: &SliceOptions) -> Vec<(usize, usize)> {
        let prog = ProgramIndex::new(apk);
        let model = SemanticModel::standard();
        let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
        let sites = demarcation::scan(&prog, &model);
        let slices = slice_all(&prog, &graph, &model, &sites, opts);
        slices.iter().map(|s| (s.request_slice.len(), s.response_slice.len())).collect()
    }

    /// Request + response slices exist for a straightforward transaction.
    #[test]
    fn slices_cover_request_and_response() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.C");
                let sb = m.new_obj("java.lang.StringBuilder", vec![Value::str("http://api/v1/")]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("items")]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let _ = body;
                // unrelated statement, must stay out of both slices
                let dead = m.temp(Type::string());
                m.cstr(dead, "unrelated");
                m.ret_void();
            });
        });
        let apk = b.build();
        let counts = run(&apk, &SliceOptions::default());
        assert_eq!(counts.len(), 1);
        let (req, resp) = counts[0];
        assert!(req >= 5, "request slice too small: {req}");
        assert!(resp >= 2, "response slice too small: {resp}");
        // the unrelated statement is excluded: slice smaller than the body
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
        let sites = demarcation::scan(&prog, &model);
        let slices = slice_all(&prog, &graph, &model, &sites, &SliceOptions::default());
        let st = stats(&prog, &slices);
        assert!(st.sliced_stmts < st.total_stmts);
        assert!(st.fraction() > 0.0 && st.fraction() < 1.0);
    }

    /// The async heuristic pulls in setter code from another event handler
    /// (the weather-app pattern of §3.4).
    #[test]
    fn async_heuristic_bridges_heap_objects() {
        let build = |on: bool| {
            let mut b = ApkBuilder::new("t", "t");
            http_stubs(&mut b);
            b.class("t.C", |c| {
                let city = c.field("mCity", Type::string());
                // Event 1: location callback writes the field.
                c.method("onLocationChanged", vec![Type::string()], Type::Void, |m| {
                    let this = m.recv("t.C");
                    let loc = m.arg(0, "loc");
                    let s = m.temp(Type::string());
                    m.copy(s, loc);
                    m.put_field(this, &city, s);
                    m.ret_void();
                });
                // Event 2: click handler reads it into the URL.
                c.method("onClick", vec![], Type::Void, |m| {
                    let this = m.recv("t.C");
                    let sb =
                        m.new_obj("java.lang.StringBuilder", vec![Value::str("http://w/api?q=")]);
                    let cityv = m.temp(Type::string());
                    m.get_field(cityv, this, &city);
                    m.vcall_void(
                        sb,
                        "java.lang.StringBuilder",
                        "append",
                        vec![Value::Local(cityv)],
                    );
                    let url =
                        m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                    let req = m
                        .new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                    let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                    m.vcall_void(
                        client,
                        "org.apache.http.client.HttpClient",
                        "execute",
                        vec![Value::Local(req)],
                    );
                    m.ret_void();
                });
            });
            let apk = b.build();
            let prog = ProgramIndex::new(&apk);
            let model = SemanticModel::standard();
            let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
            let sites = demarcation::scan(&prog, &model);
            let opts = SliceOptions { async_heuristic: on, ..SliceOptions::default() };
            let slices = slice_all(&prog, &graph, &model, &sites, &opts);
            let setter = prog.resolve_method("t.C", "onLocationChanged", 1).unwrap();
            slices[0].request_slice.iter().any(|(m, _)| *m == setter)
        };
        assert!(!build(false), "without the heuristic the setter is missed");
        assert!(build(true), "with the heuristic the setter is included");
    }

    /// Object-aware augmentation pulls initialization context into the
    /// forward slice.
    #[test]
    fn augmentation_makes_forward_slice_self_contained() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.C");
                // A list initialized BEFORE the DP and used to process the
                // response after it.
                let list = m.new_obj("java.util.ArrayList", vec![]);
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpGet",
                    vec![Value::str("http://x/")],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(resp)]);
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
        let sites = demarcation::scan(&prog, &model);

        let with = slice_all(&prog, &graph, &model, &sites, &SliceOptions::default());
        let without = slice_all(
            &prog,
            &graph,
            &model,
            &sites,
            &SliceOptions { augmentation: false, ..SliceOptions::default() },
        );
        assert!(
            with[0].response_slice.len() > without[0].response_slice.len(),
            "augmentation must add the list initialization: {} vs {}",
            with[0].response_slice.len(),
            without[0].response_slice.len()
        );
    }
}
