//! Differential signature-conformance oracle.
//!
//! Cross-checks a statically extracted [`AnalysisReport`] against a
//! concrete traffic trace (the transactions the dynamic interpreter
//! observed for the same app). The paper validates signatures by replaying
//! reconstructed transactions against real servers (§4, §5.1 "All such
//! signatures generated a valid match with the actual traffic trace");
//! this module is the in-repo analogue and the correctness backstop for
//! the whole signature pipeline.
//!
//! Every check is *differential* where possible: URI and header values are
//! matched both through the compiled regex ([`SigPat::to_regex`] +
//! regexlite) and through direct structural matching on the signature tree
//! ([`SigPat::matches`]), so a bug in the regex compiler or the regex
//! engine shows up as an [`MismatchKind::EngineDisagreement`] instead of
//! silently biasing the verdict. Structured bodies go through
//! [`JsonSig::matches`](crate::siglang::JsonSig::matches) /
//! [`XmlSig::matches`](crate::siglang::XmlSig::matches), and dependency
//! edges are checked against the observed transaction order.
//!
//! All matching is step-budgeted ([`DEFAULT_MATCH_BUDGET`]); running out
//! of budget is a definitive diagnostic, never a silent no-match.

use crate::report::{AnalysisReport, TxnReport};
use crate::sigbuild::{BodySig, ResponseSig};
use crate::siglang::SigPat;
use extractocol_http::regexlite::{BudgetExceeded, DEFAULT_MATCH_BUDGET};
use extractocol_http::{Body, Regex, Transaction};
use std::fmt;

/// Which part of the transaction a diagnostic is about.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConformanceField {
    Method,
    Uri,
    Header(String),
    RequestBody,
    ResponseBody,
    Pairing,
}

impl fmt::Display for ConformanceField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceField::Method => write!(f, "method"),
            ConformanceField::Uri => write!(f, "uri"),
            ConformanceField::Header(h) => write!(f, "header:{h}"),
            ConformanceField::RequestBody => write!(f, "request-body"),
            ConformanceField::ResponseBody => write!(f, "response-body"),
            ConformanceField::Pairing => write!(f, "pairing"),
        }
    }
}

/// How the concrete traffic disagreed with the signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MismatchKind {
    /// The signature matched none of the observed messages.
    Unmatched,
    /// The compiled regex and the structural matcher returned different
    /// verdicts for the same input — a signature-compilation bug.
    EngineDisagreement,
    /// `SigPat::to_regex` produced something regexlite rejects.
    RegexCompile,
    /// The match-step budget ran out before a verdict.
    BudgetExceeded,
    /// A matched message's header value violates the header signature.
    HeaderMismatch,
    /// A matched message's body violates the body signature.
    BodyMismatch,
    /// A dependency edge's producer was first observed only after its
    /// consumer — the observed order cannot realize the data flow.
    PairingViolation,
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MismatchKind::Unmatched => "unmatched",
            MismatchKind::EngineDisagreement => "engine-disagreement",
            MismatchKind::RegexCompile => "regex-compile",
            MismatchKind::BudgetExceeded => "budget-exceeded",
            MismatchKind::HeaderMismatch => "header-mismatch",
            MismatchKind::BodyMismatch => "body-mismatch",
            MismatchKind::PairingViolation => "pairing-violation",
        };
        f.write_str(s)
    }
}

/// One structured mismatch record.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConformanceDiag {
    /// App display name.
    pub app: String,
    /// Static transaction id (`TxnReport::id`), if the diagnostic is
    /// anchored to one.
    pub txn_id: Option<usize>,
    /// Demarcation-point class of that transaction.
    pub dp_class: String,
    /// The field that failed.
    pub field: ConformanceField,
    /// The failure kind.
    pub kind: MismatchKind,
    /// The concrete observed value (truncated for display).
    pub concrete: String,
    /// The signature, rendered in the intermediate language.
    pub signature: String,
    /// The compiled regex the signature rendered to, when relevant.
    pub regex: String,
}

impl ConformanceDiag {
    /// One-line stable rendering (also the dedup key).
    pub fn to_line(&self) -> String {
        let txn = match self.txn_id {
            Some(id) => format!("txn#{id}"),
            None => "txn#-".to_string(),
        };
        format!(
            "[{}] {} dp={} field={} kind={} concrete={:?} sig={:?} regex={:?}",
            self.app,
            txn,
            self.dp_class,
            self.field,
            self.kind,
            self.concrete,
            self.signature,
            self.regex
        )
    }
}

/// Oracle result for one app.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConformanceReport {
    /// App display name.
    pub app: String,
    /// Static transaction signatures checked.
    pub signatures_checked: usize,
    /// Concrete trace messages checked.
    pub messages_checked: usize,
    /// Trace messages no signature matched. These are informational:
    /// raw-socket ad/analytics traffic is statically invisible by design
    /// (the calibrated corpus contains such messages on purpose).
    pub orphan_messages: usize,
    /// Mismatch diagnostics, deduplicated, in deterministic order.
    pub diags: Vec<ConformanceDiag>,
}

impl ConformanceReport {
    /// True when the oracle found no mismatches.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Stable text rendering: a summary line plus one line per diagnostic.
    /// Byte-identical across worker counts for the same inputs.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "conformance app={} signatures={} messages={} orphans={} diags={}\n",
            self.app,
            self.signatures_checked,
            self.messages_checked,
            self.orphan_messages,
            self.diags.len()
        );
        for d in &self.diags {
            out.push_str(&d.to_line());
            out.push('\n');
        }
        out
    }
}

/// Truncation cap for concrete values embedded in diagnostics.
const CONCRETE_CAP: usize = 120;

fn clip(s: &str) -> String {
    if s.len() <= CONCRETE_CAP {
        return s.to_string();
    }
    let mut end = CONCRETE_CAP;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

/// A dual-engine verdict for one signature/input pair.
enum Verdict {
    Match,
    NoMatch,
    /// Engines disagree: (structural, regex) verdicts.
    Disagree(bool, bool),
    Budget,
}

/// Matches `input` against `sig` through both the structural matcher and
/// the pre-compiled regex, comparing verdicts.
fn dual_match(sig: &SigPat, re: &Regex, input: &str) -> Verdict {
    let structural = sig.matches_budgeted(input, DEFAULT_MATCH_BUDGET);
    let compiled = re.is_match_budgeted(input, DEFAULT_MATCH_BUDGET);
    match (structural, compiled) {
        (Ok(a), Ok(b)) if a == b => {
            if a {
                Verdict::Match
            } else {
                Verdict::NoMatch
            }
        }
        (Ok(a), Ok(b)) => Verdict::Disagree(a, b),
        _ => Verdict::Budget,
    }
}

/// Mirrors the trace-level body check (`extractocol-dynamic`'s
/// `body_matches`) for request bodies: constant form keys must be present,
/// JSON/XML bodies must satisfy the tree signature, text signatures accept
/// anything, and mismatched representation kinds fail.
///
/// Public because the signature-serving classifier (`extractocol-serve`)
/// applies the *same* body semantics to surviving candidates — a request
/// must never classify differently under the oracle and under the index.
pub fn request_body_matches(sig: &BodySig, body: &Body) -> bool {
    request_body_matches_budgeted(sig, body, usize::MAX)
        .expect("unbounded budget cannot be exceeded")
}

/// Budgeted variant of [`request_body_matches`]: the same semantics, but
/// every structural/regex comparison runs under a step budget so a
/// pathological body (deeply nested JSON, giant forms, regex-exhaustion
/// text) cannot burn unbounded work. `Err(BudgetExceeded)` is distinct
/// from `Ok(false)`; callers on the serving hot path treat it as a
/// non-match *and* count it, keeping trie and brute-force verdicts
/// identical on adversarial traffic.
pub fn request_body_matches_budgeted(
    sig: &BodySig,
    body: &Body,
    budget: usize,
) -> Result<bool, BudgetExceeded> {
    match (sig, body) {
        (BodySig::Form(pairs), Body::Form(concrete)) => {
            for (k, _) in pairs {
                let mut structural = false;
                for (ck, _) in concrete {
                    if k.matches_budgeted(ck, budget)? {
                        structural = true;
                        break;
                    }
                }
                if !structural {
                    return Ok(false);
                }
                let mut compiled = false;
                if let Ok(re) = Regex::new(&k.to_regex()) {
                    for (ck, _) in concrete {
                        if re.is_match_budgeted(ck, budget)? {
                            compiled = true;
                            break;
                        }
                    }
                }
                if !compiled {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        (BodySig::Json(js), Body::Json(j)) => js.matches_budgeted(j, budget),
        (BodySig::Xml(xs), Body::Xml(x)) => xs.matches_budgeted(x, budget),
        (BodySig::Text(_), _) => Ok(true),
        _ => Ok(false),
    }
}

/// Stable display of a body signature for diagnostics.
fn body_sig_display(sig: &BodySig) -> String {
    match sig {
        BodySig::Form(pairs) => {
            let kv: Vec<String> =
                pairs.iter().map(|(k, v)| format!("{}={}", k.display(), v.display())).collect();
            format!("form({})", kv.join("&"))
        }
        BodySig::Json(j) => j.display(),
        BodySig::Xml(x) => x.to_dtd().replace('\n', " "),
        BodySig::Text(p) => format!("text({})", p.display()),
    }
}

/// Checks one static transaction signature against the whole trace,
/// returning the indices of trace lines it matched.
fn check_txn(
    app: &str,
    txn: &TxnReport,
    trace: &[Transaction],
    diags: &mut Vec<ConformanceDiag>,
) -> Vec<usize> {
    let diag = |field: ConformanceField, kind: MismatchKind, concrete: &str| ConformanceDiag {
        app: app.to_string(),
        txn_id: Some(txn.id),
        dp_class: txn.dp_class.clone(),
        field,
        kind,
        concrete: clip(concrete),
        signature: txn.uri.display(),
        regex: txn.uri_regex.clone(),
    };

    let re = match Regex::new(&txn.uri_regex) {
        Ok(re) => re,
        Err(e) => {
            diags.push(diag(ConformanceField::Uri, MismatchKind::RegexCompile, &e.to_string()));
            return Vec::new();
        }
    };

    let mut hits = Vec::new();
    for (i, t) in trace.iter().enumerate() {
        if t.request.method != txn.method {
            continue;
        }
        let uri = t.request.uri.to_uri_string();
        match dual_match(&txn.uri, &re, &uri) {
            Verdict::Match => hits.push(i),
            Verdict::NoMatch => {}
            Verdict::Disagree(s, r) => diags.push(diag(
                ConformanceField::Uri,
                MismatchKind::EngineDisagreement,
                &format!("{uri} (structural={s} regex={r})"),
            )),
            Verdict::Budget => {
                diags.push(diag(ConformanceField::Uri, MismatchKind::BudgetExceeded, &uri))
            }
        }
    }
    if hits.is_empty() {
        diags.push(diag(
            ConformanceField::Uri,
            MismatchKind::Unmatched,
            &format!("no {} message matched", txn.method),
        ));
        return hits;
    }

    for &i in &hits {
        let t = &trace[i];
        // Headers: every signature-constrained header must be present on
        // the concrete request with a value both engines accept.
        for (name, sig) in &txn.header_sigs {
            let mk = |concrete: &str, kind| ConformanceDiag {
                app: app.to_string(),
                txn_id: Some(txn.id),
                dp_class: txn.dp_class.clone(),
                field: ConformanceField::Header(name.clone()),
                kind,
                concrete: clip(concrete),
                signature: sig.display(),
                regex: sig.to_regex(),
            };
            let Some(value) = t.request.headers.get(name) else {
                diags.push(mk("<absent>", MismatchKind::HeaderMismatch));
                continue;
            };
            let hre = match Regex::new(&sig.to_regex()) {
                Ok(r) => r,
                Err(e) => {
                    diags.push(mk(&e.to_string(), MismatchKind::RegexCompile));
                    continue;
                }
            };
            match dual_match(sig, &hre, value) {
                Verdict::Match => {}
                Verdict::NoMatch => diags.push(mk(value, MismatchKind::HeaderMismatch)),
                Verdict::Disagree(s, r) => diags.push(mk(
                    &format!("{value} (structural={s} regex={r})"),
                    MismatchKind::EngineDisagreement,
                )),
                Verdict::Budget => diags.push(mk(value, MismatchKind::BudgetExceeded)),
            }
        }

        // Request body: checked when the signature constrains one and the
        // concrete message carries one.
        if let Some(bs) = &txn.request_body {
            if !t.request.body.is_empty() && !request_body_matches(bs, &t.request.body) {
                diags.push(ConformanceDiag {
                    app: app.to_string(),
                    txn_id: Some(txn.id),
                    dp_class: txn.dp_class.clone(),
                    field: ConformanceField::RequestBody,
                    kind: MismatchKind::BodyMismatch,
                    concrete: clip(&t.request.body.to_bytes_string()),
                    signature: body_sig_display(bs),
                    regex: String::new(),
                });
            }
        }

        // Response body: the static signature describes only the parts the
        // app *reads*, so it is checked against structurally aligned
        // representations (JSON sig vs JSON body, XML sig vs XML body).
        let resp_ok = match (&txn.response, &t.response.body) {
            (Some(ResponseSig::Json(js)), Body::Json(j)) => js.matches(j),
            (Some(ResponseSig::Xml(xs)), Body::Xml(x)) => xs.matches(x),
            _ => true,
        };
        if !resp_ok {
            let sig_disp = match &txn.response {
                Some(ResponseSig::Json(js)) => js.display(),
                Some(ResponseSig::Xml(xs)) => xs.to_dtd(),
                _ => String::new(),
            };
            diags.push(ConformanceDiag {
                app: app.to_string(),
                txn_id: Some(txn.id),
                dp_class: txn.dp_class.clone(),
                field: ConformanceField::ResponseBody,
                kind: MismatchKind::BodyMismatch,
                concrete: clip(&t.response.body.to_bytes_string()),
                signature: sig_disp,
                regex: String::new(),
            });
        }
    }
    hits
}

/// Runs the full oracle: every static signature against every concrete
/// message, plus dependency-order checks. Deterministic: diagnostics are
/// produced in (transaction id, trace order) and deduplicated.
pub fn check(report: &AnalysisReport, trace: &[Transaction]) -> ConformanceReport {
    let mut diags = Vec::new();
    let mut matched_by_txn: Vec<(usize, Vec<usize>)> = Vec::new();
    for txn in &report.transactions {
        let hits = check_txn(&report.app, txn, trace, &mut diags);
        matched_by_txn.push((txn.id, hits));
    }

    // Request/response pairing vs observed order: a dependency edge
    // `from → to` carries response data of `from` into the request of
    // `to`, so `to`'s request cannot *only* be observed before `from`'s
    // earliest response. (Repeated transactions legitimately interleave,
    // hence min-vs-max, not strict adjacency.)
    for edge in &report.dependencies {
        let hits = |id: usize| {
            matched_by_txn.iter().find(|(t, _)| *t == id).map(|(_, h)| h.as_slice()).unwrap_or(&[])
        };
        let (from, to) = (hits(edge.from), hits(edge.to));
        if from.is_empty() || to.is_empty() {
            continue;
        }
        let first_producer = *from.iter().min().unwrap();
        let last_consumer = *to.iter().max().unwrap();
        if first_producer >= last_consumer {
            let txn = report.transactions.iter().find(|t| t.id == edge.to);
            diags.push(ConformanceDiag {
                app: report.app.clone(),
                txn_id: Some(edge.to),
                dp_class: txn.map(|t| t.dp_class.clone()).unwrap_or_default(),
                field: ConformanceField::Pairing,
                kind: MismatchKind::PairingViolation,
                concrete: format!(
                    "producer txn#{} first at line {}, consumer txn#{} last at line {}",
                    edge.from, first_producer, edge.to, last_consumer
                ),
                signature: format!(
                    "dep {} -> {} via {:?}/{:?}",
                    edge.from, edge.to, edge.resp_field, edge.req_field
                ),
                regex: String::new(),
            });
        }
    }

    let mut seen = std::collections::BTreeSet::new();
    diags.retain(|d| seen.insert(d.to_line()));

    let matched_lines: std::collections::BTreeSet<usize> =
        matched_by_txn.iter().flat_map(|(_, h)| h.iter().copied()).collect();
    ConformanceReport {
        app: report.app.clone(),
        signatures_checked: report.transactions.len(),
        messages_checked: trace.len(),
        orphan_messages: trace.len() - matched_lines.len(),
        diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::pairing::Pairing;
    use crate::report::Stats;
    use extractocol_http::{HttpMethod, Request, Response};

    fn txn(id: usize, uri: SigPat, method: HttpMethod) -> TxnReport {
        TxnReport {
            id,
            dp_class: "org.apache.http.client.HttpClient".into(),
            root: "t.C.go".into(),
            method,
            uri_regex: uri.to_regex(),
            uri,
            headers: Vec::new(),
            header_sigs: Vec::new(),
            request_body: None,
            response: None,
            pairing: Pairing::Unique,
            origins: Vec::new(),
            consumptions: Vec::new(),
        }
    }

    fn report(txns: Vec<TxnReport>) -> AnalysisReport {
        AnalysisReport {
            app: "test-app".into(),
            transactions: txns,
            dependencies: Vec::new(),
            stats: Stats::default(),
            metrics: Metrics::default(),
        }
    }

    fn get(uri: &str) -> Transaction {
        Transaction { request: Request::get(uri), response: Response::ok(Body::Empty) }
    }

    #[test]
    fn clean_trace_produces_no_diags() {
        let uri = SigPat::Concat(vec![SigPat::lit("http://h/api?q="), SigPat::any_str()]);
        let r = report(vec![txn(0, uri, HttpMethod::Get)]);
        let trace = vec![get("http://h/api?q=cats"), get("http://other/untracked")];
        let c = check(&r, &trace);
        assert!(c.is_clean(), "{}", c.to_text());
        assert_eq!(c.signatures_checked, 1);
        assert_eq!(c.messages_checked, 2);
        assert_eq!(c.orphan_messages, 1);
    }

    #[test]
    fn unmatched_signature_is_flagged() {
        let r = report(vec![txn(0, SigPat::lit("http://h/exact"), HttpMethod::Get)]);
        let trace = vec![get("http://h/other")];
        let c = check(&r, &trace);
        assert_eq!(c.diags.len(), 1);
        assert_eq!(c.diags[0].kind, MismatchKind::Unmatched);
        assert_eq!(c.diags[0].field, ConformanceField::Uri);
    }

    #[test]
    fn header_mismatch_is_flagged() {
        let mut t = txn(0, SigPat::lit("http://h/a"), HttpMethod::Get);
        t.header_sigs = vec![("Cookie".into(), SigPat::lit("session=fixed"))];
        t.headers = vec![("Cookie".into(), "session=fixed".into())];
        let r = report(vec![t]);
        let mut msg = get("http://h/a");
        msg.request.headers.add("Cookie", "session=other");
        let c = check(&r, &[msg]);
        assert_eq!(c.diags.len(), 1);
        assert_eq!(c.diags[0].kind, MismatchKind::HeaderMismatch);
        assert_eq!(c.diags[0].field, ConformanceField::Header("Cookie".into()));
        // absent header also flags
        let c2 = check(&r, &[get("http://h/a")]);
        assert_eq!(c2.diags.len(), 1);
        assert_eq!(c2.diags[0].concrete, "<absent>");
    }

    #[test]
    fn pairing_order_violation_is_flagged() {
        let login = txn(0, SigPat::lit("http://h/login"), HttpMethod::Get);
        let feed = txn(1, SigPat::lit("http://h/feed"), HttpMethod::Get);
        let mut r = report(vec![login, feed]);
        r.dependencies.push(crate::interdep::DependencyEdge {
            from: 0,
            to: 1,
            via: crate::interdep::DepVia::Direct,
            resp_field: None,
            req_field: Some("header:Cookie".into()),
        });
        // Correct order: login observed before feed.
        let ok = check(&r, &[get("http://h/login"), get("http://h/feed")]);
        assert!(ok.is_clean(), "{}", ok.to_text());
        // Inverted order: consumer strictly before producer.
        let bad = check(&r, &[get("http://h/feed"), get("http://h/login")]);
        assert_eq!(bad.diags.len(), 1);
        assert_eq!(bad.diags[0].kind, MismatchKind::PairingViolation);
    }

    #[test]
    fn text_output_is_stable_and_dedups() {
        let r = report(vec![txn(3, SigPat::lit("http://h/x"), HttpMethod::Get)]);
        let trace = vec![get("http://h/no")];
        let a = check(&r, &trace);
        let b = check(&r, &trace);
        assert_eq!(a.to_text(), b.to_text());
        assert!(a
            .to_text()
            .starts_with("conformance app=test-app signatures=1 messages=1 orphans=1 diags=1\n"));
        assert!(a.to_text().contains("txn#3"));
    }
}
