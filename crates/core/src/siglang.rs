//! The intermediate signature language (paper Fig. 4).
//!
//! ```text
//! sig_pat    ::= term | concat(term, term) | rep{term} | term ∨ term
//! term       ::= constant | struct_str | unknown
//! struct_str ::= json(obj) | xml(obj)
//! ```
//!
//! Signatures are built by the flow-sensitive interpreter in
//! [`crate::sigbuild`] and finally compiled to regular expressions:
//! "The regex format of a variable object is derived from its type (e.g.,
//! `[0-9]+` for integer variables and `.*` for string variables).
//! Repetitions (`rep`) and disjunctions (`∨`) are respectively converted
//! into the Kleene star and `|`" (§3.2). JSON/XML signatures stay trees
//! ("whose leaves are string literals or numbers") and can additionally be
//! rendered as JSON-Schema or DTD (§1).

use extractocol_http::regexlite::{escape_literal, BudgetExceeded};
use extractocol_http::{JsonValue, XmlElement, XmlNode};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Type-derived wildcard hints for `unknown` terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeHint {
    /// Numeric unknown → `[0-9]+`.
    Num,
    /// Boolean unknown → `(true|false)`.
    Bool,
    /// String/any unknown → `.*`.
    Str,
}

/// A string signature pattern.
///
/// Derives a total order so `Or` disjunctions can be kept canonical
/// (sorted, deduplicated) — semantically equal signatures then render
/// byte-identical regexes regardless of the order confluence arms were
/// merged in.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SigPat {
    /// A string literal known exactly.
    Const(String),
    /// An unknown part with a type-derived wildcard.
    Unknown(TypeHint),
    /// Concatenation of parts.
    Concat(Vec<SigPat>),
    /// A part that may repeat zero or more times (loop-variant content).
    Rep(Box<SigPat>),
    /// Disjunction of alternatives (control-flow confluence).
    Or(Vec<SigPat>),
    /// A structured JSON body embedded in a string position.
    Json(JsonSig),
    /// A structured XML body embedded in a string position.
    Xml(Box<XmlSig>),
}

impl SigPat {
    /// The empty constant.
    pub fn empty() -> SigPat {
        SigPat::Const(String::new())
    }

    /// A constant from a string slice.
    pub fn lit(s: &str) -> SigPat {
        SigPat::Const(s.to_string())
    }

    /// An unknown string part.
    pub fn any_str() -> SigPat {
        SigPat::Unknown(TypeHint::Str)
    }

    /// Concatenates two patterns and normalizes.
    pub fn concat(self, other: SigPat) -> SigPat {
        SigPat::Concat(vec![self, other]).normalize()
    }

    /// Merges with another pattern under disjunction and normalizes.
    pub fn or(self, other: SigPat) -> SigPat {
        SigPat::Or(vec![self, other]).normalize()
    }

    /// Structural normalization: flattens nested concats/ors, merges
    /// adjacent constants, drops empty constants inside concats, and
    /// canonicalizes disjunctions (arms sorted and deduplicated, so `a ∨ a`
    /// collapses and every merge order of the same arm set renders the same
    /// regex). Idempotent (property-tested).
    pub fn normalize(self) -> SigPat {
        match self {
            SigPat::Concat(items) => {
                let mut flat: Vec<SigPat> = Vec::new();
                for it in items {
                    match it.normalize() {
                        SigPat::Concat(sub) => flat.extend(sub),
                        SigPat::Const(s) if s.is_empty() => {}
                        other => flat.push(other),
                    }
                }
                // merge adjacent constants
                let mut merged: Vec<SigPat> = Vec::new();
                for it in flat {
                    match (merged.last_mut(), it) {
                        (Some(SigPat::Const(a)), SigPat::Const(b)) => a.push_str(&b),
                        (_, it) => merged.push(it),
                    }
                }
                match merged.len() {
                    0 => SigPat::empty(),
                    1 => merged.pop().unwrap(),
                    _ => SigPat::Concat(merged),
                }
            }
            SigPat::Or(items) => {
                let mut flat: Vec<SigPat> = Vec::new();
                for it in items {
                    match it.normalize() {
                        SigPat::Or(sub) => flat.extend(sub),
                        other => flat.push(other),
                    }
                }
                // Canonical form: stable (sorted) arm order + dedup. Arm
                // order never carries meaning for a disjunction, and a
                // canonical order makes normalization confluent — merging
                // `a ∨ b` and `b ∨ a` yields one representation.
                flat.sort();
                flat.dedup();
                match flat.len() {
                    0 => SigPat::empty(),
                    1 => flat.pop().unwrap(),
                    _ => SigPat::Or(flat),
                }
            }
            SigPat::Rep(inner) => SigPat::Rep(Box::new(inner.normalize())),
            other => other,
        }
    }

    /// The *mandatory* literal prefix of this pattern: the longest run of
    /// constant bytes every matching string must start with. Matching is
    /// whole-string anchored, so a leading `Const` run is a hard
    /// requirement — the serving index keys its byte-trie on this.
    ///
    /// Extraction stops at the first `Or`, `Rep`, `Unknown`, `Json`, or
    /// `Xml` part (any of them can begin the string with arbitrary bytes —
    /// `Rep` matches zero iterations, `Or` arms diverge), **and** at the
    /// first `%` byte inside a constant: `%`-escaped bytes are kept out of
    /// the trie so percent-encoding-normalizing front ends can never be
    /// pruned against raw signature bytes. Stopping early is always sound —
    /// it only weakens pruning, never drops a match.
    ///
    /// A signature that starts with a variable part (e.g. a dynamically
    /// derived host, `(.*)/path`) yields the empty prefix and lands in the
    /// index's root fallback bucket rather than being dropped.
    pub fn literal_prefix(&self) -> String {
        fn walk(p: &SigPat, out: &mut String) -> bool {
            match p {
                SigPat::Const(s) => match s.find('%') {
                    Some(i) => {
                        out.push_str(&s[..i]);
                        false
                    }
                    None => {
                        out.push_str(s);
                        true
                    }
                },
                SigPat::Concat(items) => items.iter().all(|it| walk(it, out)),
                SigPat::Or(_)
                | SigPat::Rep(_)
                | SigPat::Unknown(_)
                | SigPat::Json(_)
                | SigPat::Xml(_) => false,
            }
        }
        let mut out = String::new();
        walk(&self.clone().normalize(), &mut out);
        out
    }

    /// Top-level disjunction arms (after normalization): the distinct
    /// message patterns a signature covers. Table 1 counts these.
    pub fn disjuncts(&self) -> Vec<SigPat> {
        match self.clone().normalize() {
            SigPat::Or(items) => items,
            other => vec![other],
        }
    }

    /// Detects the loop-variant part between the signature of a value
    /// before a loop iteration and after it: if `after` extends `before`
    /// (structural prefix), the delta becomes `before · rep{delta}`
    /// (§3.2: "identifies the loop variant part of string objects and …
    /// marks the part can be repeated").
    pub fn widen_loop(before: &SigPat, after: &SigPat) -> SigPat {
        let b = before.clone().normalize();
        match SigPat::loop_delta(before, after) {
            Some(delta) if delta.is_epsilon() => b,
            Some(delta) => SigPat::Concat(vec![b, SigPat::Rep(Box::new(delta))]).normalize(),
            // No structural prefix: fall back to disjunction, which stays
            // sound.
            None => b.or(after.clone().normalize()),
        }
    }

    /// The per-iteration suffix of a loop accumulator: when `after` is
    /// `before` followed by extra parts, returns that delta (the empty
    /// pattern when they are equal). `None` means `after` does not
    /// structurally extend `before` — not an accumulator shape.
    pub fn loop_delta(before: &SigPat, after: &SigPat) -> Option<SigPat> {
        let b = before.clone().normalize();
        let a = after.clone().normalize();
        if a == b {
            return Some(SigPat::Const(String::new()));
        }
        let bv = match &b {
            SigPat::Concat(v) => v.clone(),
            other => vec![other.clone()],
        };
        let av = match &a {
            SigPat::Concat(v) => v.clone(),
            other => vec![other.clone()],
        };
        let delta = strip_prefix_parts(&bv, &av)?;
        Some(SigPat::Concat(delta).normalize())
    }

    /// True for the empty pattern (matches only the empty string).
    pub fn is_epsilon(&self) -> bool {
        match self {
            SigPat::Const(s) => s.is_empty(),
            SigPat::Concat(v) => v.iter().all(SigPat::is_epsilon),
            _ => false,
        }
    }

    /// All constant keywords (string literals) appearing in the signature —
    /// the Fig. 7 metric for request bodies/query strings counts keys in
    /// key-value pairs; here we expose every literal and let callers parse
    /// keys out.
    pub fn constants(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SigPat::Const(s) => {
                if !s.is_empty() {
                    out.push(s);
                }
            }
            SigPat::Concat(v) | SigPat::Or(v) => {
                for p in v {
                    p.collect_constants(out);
                }
            }
            SigPat::Rep(p) => p.collect_constants(out),
            SigPat::Json(j) => j.collect_constants(out),
            SigPat::Xml(x) => x.collect_constants(out),
            SigPat::Unknown(_) => {}
        }
    }

    /// Compiles to the regex dialect of `extractocol-http::regexlite`.
    pub fn to_regex(&self) -> String {
        match self {
            SigPat::Const(s) => escape_literal(s),
            SigPat::Unknown(TypeHint::Num) => "[0-9]+".to_string(),
            SigPat::Unknown(TypeHint::Bool) => "(true|false)".to_string(),
            SigPat::Unknown(TypeHint::Str) => ".*".to_string(),
            SigPat::Concat(items) => items.iter().map(SigPat::to_regex).collect(),
            SigPat::Rep(inner) => format!("({})*", inner.to_regex()),
            SigPat::Or(items) => {
                let arms: Vec<String> = items.iter().map(SigPat::to_regex).collect();
                format!("({})", arms.join("|"))
            }
            SigPat::Json(j) => j.to_regex(),
            // XmlSig::to_regex has a top-level `|`; parenthesize so the
            // alternation cannot swallow neighbouring concat parts or a
            // surrounding `*`.
            SigPat::Xml(x) => format!("({})", x.to_regex()),
        }
    }

    /// A human-readable rendering close to the paper's notation, e.g.
    /// `(http://host/)(.*)(&sort=)(.*)`.
    pub fn display(&self) -> String {
        match self {
            SigPat::Const(s) => format!("({s})"),
            SigPat::Unknown(TypeHint::Num) => "([0-9]+)".to_string(),
            SigPat::Unknown(TypeHint::Bool) => "(true|false)".to_string(),
            SigPat::Unknown(TypeHint::Str) => "(.*)".to_string(),
            SigPat::Concat(items) => items.iter().map(SigPat::display).collect(),
            SigPat::Rep(inner) => format!("rep{{{}}}", inner.display()),
            SigPat::Or(items) => {
                let arms: Vec<String> = items.iter().map(SigPat::display).collect();
                arms.join(" | ")
            }
            SigPat::Json(j) => j.display(),
            SigPat::Xml(x) => format!("xml({})", x.to_regex()),
        }
    }

    /// Structural whole-string matching evaluated directly on the signature
    /// tree — fully independent of [`SigPat::to_regex`] and the regexlite
    /// engine, so the conformance oracle can cross-check the regex compiler
    /// instead of trusting it to test itself.
    pub fn matches(&self, s: &str) -> bool {
        self.matches_budgeted(s, usize::MAX).expect("unbounded budget cannot be exceeded")
    }

    /// Budgeted structural matching. `Err(BudgetExceeded)` is distinct from
    /// a non-match, mirroring `Regex::is_match_budgeted` semantics.
    pub fn matches_budgeted(&self, s: &str, budget: usize) -> Result<bool, BudgetExceeded> {
        let mut steps = 0usize;
        let starts: BTreeSet<usize> = std::iter::once(0).collect();
        let ends = self.ends_from(s, &starts, &mut steps, budget)?;
        Ok(ends.contains(&s.len()))
    }

    /// The set of byte positions reachable after matching `self` starting
    /// from any position in `starts`. Positions are always char boundaries.
    fn ends_from(
        &self,
        s: &str,
        starts: &BTreeSet<usize>,
        steps: &mut usize,
        budget: usize,
    ) -> Result<BTreeSet<usize>, BudgetExceeded> {
        *steps = steps.saturating_add(starts.len().max(1));
        if *steps > budget {
            return Err(BudgetExceeded { budget });
        }
        let mut out = BTreeSet::new();
        match self {
            SigPat::Const(c) => {
                for &p in starts {
                    if s[p..].starts_with(c.as_str()) {
                        out.insert(p + c.len());
                    }
                }
            }
            SigPat::Unknown(TypeHint::Str) => {
                // `.*`: from the earliest start, every boundary at or after
                // some start is reachable; starts are sorted, so everything
                // at or after the minimum qualifies.
                if let Some(&lo) = starts.iter().next() {
                    for q in lo..=s.len() {
                        if s.is_char_boundary(q) {
                            out.insert(q);
                        }
                    }
                    *steps = steps.saturating_add(s.len() - lo + 1);
                }
            }
            SigPat::Unknown(TypeHint::Num) => {
                // `[0-9]+`: at least one digit.
                let bytes = s.as_bytes();
                for &p in starts {
                    let mut q = p;
                    while q < s.len() && bytes[q].is_ascii_digit() {
                        q += 1;
                        out.insert(q);
                    }
                }
            }
            SigPat::Unknown(TypeHint::Bool) => {
                for &p in starts {
                    for lit in ["true", "false"] {
                        if s[p..].starts_with(lit) {
                            out.insert(p + lit.len());
                        }
                    }
                }
            }
            SigPat::Concat(items) => {
                let mut cur = starts.clone();
                for it in items {
                    cur = it.ends_from(s, &cur, steps, budget)?;
                    if cur.is_empty() {
                        break;
                    }
                }
                return Ok(cur);
            }
            SigPat::Or(arms) => {
                for a in arms {
                    out.extend(a.ends_from(s, starts, steps, budget)?);
                }
            }
            SigPat::Rep(inner) => {
                // Zero or more repetitions: the transitive closure of the
                // inner pattern's end positions. Terminates because every
                // round only adds new (strictly bounded) positions.
                let mut all = starts.clone();
                let mut frontier = starts.clone();
                while !frontier.is_empty() {
                    let next = inner.ends_from(s, &frontier, steps, budget)?;
                    frontier = next.difference(&all).copied().collect();
                    all.extend(frontier.iter().copied());
                }
                return Ok(all);
            }
            SigPat::Json(j) => {
                // An embedded JSON document: any slice that parses as JSON
                // and satisfies the tree signature.
                for &p in starts {
                    for q in (p + 1)..=s.len() {
                        if !s.is_char_boundary(q) {
                            continue;
                        }
                        *steps = steps.saturating_add(1);
                        if *steps > budget {
                            return Err(BudgetExceeded { budget });
                        }
                        if let Ok(v) = JsonValue::parse(&s[p..q]) {
                            if j.matches_counted(&v, steps, budget)? {
                                out.insert(q);
                            }
                        }
                    }
                }
            }
            SigPat::Xml(x) => {
                for &p in starts {
                    for q in (p + 1)..=s.len() {
                        if !s.is_char_boundary(q) {
                            continue;
                        }
                        *steps = steps.saturating_add(1);
                        if *steps > budget {
                            return Err(BudgetExceeded { budget });
                        }
                        if let Ok(e) = XmlElement::parse(&s[p..q]) {
                            if x.matches_counted(&e, steps, budget)? {
                                out.insert(q);
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for SigPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

/// Removes `prefix` from the front of `full`, returning the remainder —
/// element-wise, with string-prefix splitting when normalization merged a
/// loop's delta into the trailing constant (`"base?"` vs `"base?id=0&"`).
fn strip_prefix_parts(prefix: &[SigPat], full: &[SigPat]) -> Option<Vec<SigPat>> {
    let mut rest = full.to_vec();
    for (i, p) in prefix.iter().enumerate() {
        let head = rest.first().cloned()?;
        if head == *p {
            rest.remove(0);
            continue;
        }
        match (p, &head) {
            (SigPat::Const(pb), SigPat::Const(fa)) if fa.starts_with(pb.as_str()) => {
                // Split the constant: the remainder starts the delta — but
                // only valid when this is the last prefix element.
                if i + 1 != prefix.len() {
                    return None;
                }
                rest[0] = SigPat::Const(fa[pb.len()..].to_string());
                if matches!(&rest[0], SigPat::Const(s) if s.is_empty()) {
                    rest.remove(0);
                }
                return Some(rest);
            }
            _ => return None,
        }
    }
    Some(rest)
}

// ---------------------------------------------------------------------------
// JSON tree signatures
// ---------------------------------------------------------------------------

/// A JSON signature tree: "For JSON and XML objects, Extractocol maintains
/// a tree data structure" (§3.2). Built from `put` operations (requests)
/// or `get` operations (responses — the keys the app actually reads).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum JsonSig {
    /// An object with known keys. Keys absent from the map are
    /// unconstrained (responses routinely carry more keys than an app
    /// reads, §5.1 "some apps do not inspect all keywords").
    Object(BTreeMap<String, JsonSig>),
    /// An array whose elements match the given signature.
    Array(Box<JsonSig>),
    /// A leaf whose string form matches the pattern.
    Value(Box<SigPat>),
    /// Completely unconstrained.
    Unknown,
}

impl JsonSig {
    /// An empty object signature.
    pub fn object() -> JsonSig {
        JsonSig::Object(BTreeMap::new())
    }

    /// Inserts a key (builder style), merging on collision.
    pub fn put(&mut self, key: &str, v: JsonSig) {
        if let JsonSig::Unknown = self {
            *self = JsonSig::object();
        }
        if let JsonSig::Object(m) = self {
            match m.remove(key) {
                Some(old) => {
                    m.insert(key.to_string(), JsonSig::merge(old, v));
                }
                None => {
                    m.insert(key.to_string(), v);
                }
            }
        }
    }

    /// Navigates/creates the child under `key`, for response-reader
    /// refinement.
    pub fn child_mut(&mut self, key: &str) -> &mut JsonSig {
        if !matches!(self, JsonSig::Object(_)) {
            *self = JsonSig::object();
        }
        match self {
            JsonSig::Object(m) => m.entry(key.to_string()).or_insert(JsonSig::Unknown),
            _ => unreachable!(),
        }
    }

    /// Coerces this node to an array and returns the element signature.
    pub fn element_mut(&mut self) -> &mut JsonSig {
        if !matches!(self, JsonSig::Array(_)) {
            *self = JsonSig::Array(Box::new(JsonSig::Unknown));
        }
        match self {
            JsonSig::Array(e) => e,
            _ => unreachable!(),
        }
    }

    /// Merges two signatures (union of constraints at matching positions).
    pub fn merge(a: JsonSig, b: JsonSig) -> JsonSig {
        match (a, b) {
            (JsonSig::Unknown, x) | (x, JsonSig::Unknown) => x,
            (JsonSig::Object(mut ma), JsonSig::Object(mb)) => {
                for (k, v) in mb {
                    match ma.remove(&k) {
                        Some(old) => {
                            ma.insert(k, JsonSig::merge(old, v));
                        }
                        None => {
                            ma.insert(k, v);
                        }
                    }
                }
                JsonSig::Object(ma)
            }
            (JsonSig::Array(ea), JsonSig::Array(eb)) => {
                JsonSig::Array(Box::new(JsonSig::merge(*ea, *eb)))
            }
            (JsonSig::Value(pa), JsonSig::Value(pb)) => {
                if pa == pb {
                    JsonSig::Value(pa)
                } else {
                    JsonSig::Value(Box::new(pa.or(*pb)))
                }
            }
            // Mixed shapes: give up the structure, keep validity.
            (_, _) => JsonSig::Unknown,
        }
    }

    /// Structural match against a concrete JSON value. Extra keys in the
    /// value are allowed; missing constrained keys are not.
    pub fn matches(&self, v: &JsonValue) -> bool {
        self.matches_budgeted(v, usize::MAX).expect("unbounded budget cannot be exceeded")
    }

    /// Budgeted structural match. Every signature/value node visited costs
    /// one step and leaf patterns run under the regex engine's own step
    /// budget, so a giant or deeply nested body cannot burn unbounded work.
    /// `Err(BudgetExceeded)` is distinct from `Ok(false)`, mirroring
    /// [`SigPat::matches_budgeted`].
    pub fn matches_budgeted(&self, v: &JsonValue, budget: usize) -> Result<bool, BudgetExceeded> {
        let mut steps = 0usize;
        self.matches_counted(v, &mut steps, budget)
    }

    fn matches_counted(
        &self,
        v: &JsonValue,
        steps: &mut usize,
        budget: usize,
    ) -> Result<bool, BudgetExceeded> {
        *steps = steps.saturating_add(1);
        if *steps > budget {
            return Err(BudgetExceeded { budget });
        }
        Ok(match (self, v) {
            (JsonSig::Unknown, _) => true,
            (JsonSig::Object(m), JsonValue::Object(vm)) => {
                for (k, s) in m {
                    let hit = match vm.get(k) {
                        Some(vv) => s.matches_counted(vv, steps, budget)?,
                        None => false,
                    };
                    if !hit {
                        return Ok(false);
                    }
                }
                true
            }
            (JsonSig::Array(e), JsonValue::Array(va)) => {
                for vv in va {
                    if !e.matches_counted(vv, steps, budget)? {
                        return Ok(false);
                    }
                }
                true
            }
            // A JSON body whose top level is an array of one station etc.
            (JsonSig::Object(_), JsonValue::Array(va)) => {
                // Tolerate the common wrap-in-array idiom: match any element.
                for vv in va {
                    if self.matches_counted(vv, steps, budget)? {
                        return Ok(true);
                    }
                }
                false
            }
            (JsonSig::Value(p), vv) => {
                let text = match vv {
                    JsonValue::String(s) => s.clone(),
                    other => other.to_json(),
                };
                match extractocol_http::Regex::new(&p.to_regex()) {
                    Ok(r) => r.is_match_budgeted(&text, budget)?,
                    Err(_) => false,
                }
            }
            _ => false,
        })
    }

    /// All constant keys in the tree, recursively (Fig. 7 metric for
    /// JSON bodies).
    pub fn keys(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(s: &'a JsonSig, out: &mut Vec<&'a str>) {
            match s {
                JsonSig::Object(m) => {
                    for (k, v) in m {
                        out.push(k.as_str());
                        walk(v, out);
                    }
                }
                JsonSig::Array(e) => walk(e, out),
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }

    fn collect_constants<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            JsonSig::Object(m) => {
                for (k, v) in m {
                    out.push(k.as_str());
                    v.collect_constants(out);
                }
            }
            JsonSig::Array(e) => e.collect_constants(out),
            JsonSig::Value(p) => p.collect_constants(out),
            JsonSig::Unknown => {}
        }
    }

    /// Regex over the serialized JSON (used when a JSON body is embedded in
    /// a string signature). Key order matches our serializer (sorted).
    pub fn to_regex(&self) -> String {
        match self {
            JsonSig::Unknown => ".*".to_string(),
            JsonSig::Value(p) => p.to_regex(),
            JsonSig::Array(e) => format!("\\[({},?)*\\]", e.to_regex()),
            JsonSig::Object(m) => {
                let mut parts = vec!["\\{.*".to_string()];
                for (k, v) in m {
                    parts.push(format!("\"{}\":.*{}.*", escape_literal(k), inner_regex(v)));
                }
                parts.push("\\}".to_string());
                parts.join("")
            }
        }
    }

    /// Paper-style display: `{ "key": <sig>, … }`.
    pub fn display(&self) -> String {
        match self {
            JsonSig::Unknown => "*".to_string(),
            JsonSig::Value(p) => p.display(),
            JsonSig::Array(e) => format!("[{}]", e.display()),
            JsonSig::Object(m) => {
                let fields: Vec<String> =
                    m.iter().map(|(k, v)| format!("\"{}\": {}", k, v.display())).collect();
                format!("{{ {} }}", fields.join(", "))
            }
        }
    }

    /// JSON-Schema rendering (paper §1: "JSON schema for JSON bodies").
    pub fn to_json_schema(&self) -> JsonValue {
        match self {
            JsonSig::Unknown => {
                let mut o = JsonValue::object();
                o.insert("type", JsonValue::str("any"));
                o
            }
            JsonSig::Value(p) => {
                let mut o = JsonValue::object();
                o.insert("type", JsonValue::str("string"));
                o.insert("pattern", JsonValue::str(&p.to_regex()));
                o
            }
            JsonSig::Array(e) => {
                let mut o = JsonValue::object();
                o.insert("type", JsonValue::str("array"));
                o.insert("items", e.to_json_schema());
                o
            }
            JsonSig::Object(m) => {
                let mut props = JsonValue::object();
                let mut required = Vec::new();
                for (k, v) in m {
                    props.insert(k, v.to_json_schema());
                    required.push(JsonValue::str(k));
                }
                let mut o = JsonValue::object();
                o.insert("type", JsonValue::str("object"));
                o.insert("properties", props);
                o.insert("required", JsonValue::Array(required));
                o
            }
        }
    }
}

fn inner_regex(v: &JsonSig) -> String {
    match v {
        JsonSig::Value(p) => p.to_regex(),
        other => other.to_regex(),
    }
}

// ---------------------------------------------------------------------------
// XML tree signatures
// ---------------------------------------------------------------------------

/// An XML signature tree: tag name, constrained attributes, child element
/// signatures, optional text pattern.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct XmlSig {
    pub name: String,
    pub attrs: Vec<(String, SigPat)>,
    pub children: Vec<XmlSig>,
    pub text: Option<SigPat>,
}

impl XmlSig {
    /// A tag with no constraints.
    pub fn tag(name: &str) -> XmlSig {
        XmlSig { name: name.to_string(), attrs: Vec::new(), children: Vec::new(), text: None }
    }

    /// Adds a child (builder style).
    pub fn child(mut self, c: XmlSig) -> XmlSig {
        self.children.push(c);
        self
    }

    /// Constrains an attribute (builder style).
    pub fn attr(mut self, k: &str, v: SigPat) -> XmlSig {
        self.attrs.push((k.to_string(), v));
        self
    }

    /// Finds or creates the child tag, for response-reader refinement.
    pub fn child_mut(&mut self, name: &str) -> &mut XmlSig {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            &mut self.children[i]
        } else {
            self.children.push(XmlSig::tag(name));
            self.children.last_mut().unwrap()
        }
    }

    /// Structural match against a concrete element: tag equal (an empty
    /// signature name is a wildcard — response readers that jump straight
    /// to `getElementsByTagName` never learn the document root's tag),
    /// every constrained attribute present and matching, every child
    /// signature matched by some descendant element, text pattern (if
    /// any) matching.
    pub fn matches(&self, e: &XmlElement) -> bool {
        self.matches_budgeted(e, usize::MAX).expect("unbounded budget cannot be exceeded")
    }

    /// Budgeted structural match: element visits cost one step each and
    /// attribute/text patterns run under the regex engine's budget, so a
    /// giant or deeply nested document cannot burn unbounded work.
    /// `Err(BudgetExceeded)` is distinct from `Ok(false)`.
    pub fn matches_budgeted(&self, e: &XmlElement, budget: usize) -> Result<bool, BudgetExceeded> {
        let mut steps = 0usize;
        self.matches_counted(e, &mut steps, budget)
    }

    fn matches_counted(
        &self,
        e: &XmlElement,
        steps: &mut usize,
        budget: usize,
    ) -> Result<bool, BudgetExceeded> {
        *steps = steps.saturating_add(1);
        if *steps > budget {
            return Err(BudgetExceeded { budget });
        }
        if !self.name.is_empty() && e.name != self.name {
            return Ok(false);
        }
        for (k, p) in &self.attrs {
            let Some(v) = e.attr_value(k) else { return Ok(false) };
            let Ok(r) = extractocol_http::Regex::new(&p.to_regex()) else { return Ok(false) };
            if !r.is_match_budgeted(v, budget)? {
                return Ok(false);
            }
        }
        for cs in &self.children {
            fn any_descendant(
                e: &XmlElement,
                cs: &XmlSig,
                steps: &mut usize,
                budget: usize,
            ) -> Result<bool, BudgetExceeded> {
                for n in &e.children {
                    if let XmlNode::Element(ce) = n {
                        *steps = steps.saturating_add(1);
                        if *steps > budget {
                            return Err(BudgetExceeded { budget });
                        }
                        if cs.matches_counted(ce, steps, budget)?
                            || any_descendant(ce, cs, steps, budget)?
                        {
                            return Ok(true);
                        }
                    }
                }
                Ok(false)
            }
            if !any_descendant(e, cs, steps, budget)? {
                return Ok(false);
            }
        }
        if let Some(tp) = &self.text {
            let Ok(r) = extractocol_http::Regex::new(&tp.to_regex()) else { return Ok(false) };
            if !r.is_match_budgeted(&e.text_content(), budget)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Tag/attribute names, recursively (Fig. 7 metric for XML bodies).
    pub fn keywords(&self) -> Vec<&str> {
        let mut out = vec![self.name.as_str()];
        for (k, _) in &self.attrs {
            out.push(k.as_str());
        }
        for c in &self.children {
            out.extend(c.keywords());
        }
        out
    }

    fn collect_constants<'a>(&'a self, out: &mut Vec<&'a str>) {
        out.push(self.name.as_str());
        for (k, p) in &self.attrs {
            out.push(k.as_str());
            p.collect_constants(out);
        }
        if let Some(t) = &self.text {
            t.collect_constants(out);
        }
        for c in &self.children {
            c.collect_constants(out);
        }
    }

    /// Loose regex over serialized XML.
    pub fn to_regex(&self) -> String {
        let name = escape_literal(&self.name);
        format!("<{name}.*</{name}>|<{name}[^>]*/>")
    }

    /// DTD rendering (paper §1: "Document Type Definition (DTD) for XML").
    pub fn to_dtd(&self) -> String {
        let mut out = String::new();
        self.dtd_into(&mut out);
        out
    }

    fn dtd_into(&self, out: &mut String) {
        let content = if self.children.is_empty() {
            "(#PCDATA)".to_string()
        } else {
            let names: Vec<&str> = self.children.iter().map(|c| c.name.as_str()).collect();
            format!("({})", names.join(", "))
        };
        out.push_str(&format!("<!ELEMENT {} {}>\n", self.name, content));
        for (k, _) in &self.attrs {
            out.push_str(&format!("<!ATTLIST {} {} CDATA #REQUIRED>\n", self.name, k));
        }
        for c in &self.children {
            c.dtd_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_http::Regex;

    #[test]
    fn normalization_flattens_and_merges() {
        let p = SigPat::Concat(vec![
            SigPat::lit("http://"),
            SigPat::Concat(vec![SigPat::lit("host"), SigPat::lit("/api")]),
            SigPat::empty(),
            SigPat::any_str(),
        ])
        .normalize();
        assert_eq!(p, SigPat::Concat(vec![SigPat::lit("http://host/api"), SigPat::any_str()]));
        // idempotent
        assert_eq!(p.clone().normalize(), p);
    }

    #[test]
    fn or_dedups_and_counts_disjuncts() {
        let p = SigPat::Or(vec![
            SigPat::lit("a"),
            SigPat::Or(vec![SigPat::lit("b"), SigPat::lit("a")]),
        ])
        .normalize();
        assert_eq!(p.disjuncts().len(), 2);
        let single = SigPat::lit("only");
        assert_eq!(single.disjuncts().len(), 1);
    }

    #[test]
    fn regex_compilation_matches_paper_forms() {
        let sig = SigPat::Concat(vec![
            SigPat::lit("http://www.reddit.com/search/.json?q="),
            SigPat::any_str(),
            SigPat::lit("&sort="),
            SigPat::any_str(),
        ]);
        let re = Regex::new(&sig.to_regex()).unwrap();
        assert!(re.is_match("http://www.reddit.com/search/.json?q=cats&sort=top"));
        assert!(!re.is_match("http://www.reddit.com/r/all"));

        let num = SigPat::Concat(vec![
            SigPat::lit("https://h/talks/"),
            SigPat::Unknown(TypeHint::Num),
            SigPat::lit("/ad.json"),
        ]);
        let re = Regex::new(&num.to_regex()).unwrap();
        assert!(re.is_match("https://h/talks/2406/ad.json"));
        assert!(!re.is_match("https://h/talks/late/ad.json"));
    }

    #[test]
    fn widen_loop_introduces_rep() {
        // before: "base?", after: "base?" + "count=" + .* + "&"
        let before = SigPat::lit("base?");
        let after = SigPat::Concat(vec![
            SigPat::lit("base?"),
            SigPat::lit("count="),
            SigPat::any_str(),
            SigPat::lit("&"),
        ]);
        let w = SigPat::widen_loop(&before, &after);
        let re = Regex::new(&w.to_regex()).unwrap();
        assert!(re.is_match("base?"));
        assert!(re.is_match("base?count=1&"));
        assert!(re.is_match("base?count=1&count=2&"));
        assert!(!re.is_match("base?count=1"));
        // unchanged signature stays put
        assert_eq!(SigPat::widen_loop(&before, &before), before);
    }

    #[test]
    fn json_sig_builds_merges_and_matches() {
        let mut sig = JsonSig::object();
        sig.put("relay", JsonSig::Value(Box::new(SigPat::any_str())));
        sig.put("listeners", JsonSig::Value(Box::new(SigPat::any_str())));
        let v =
            JsonValue::parse(r#"{"relay":"http://cdn/x","listeners":"13586","extra":"ignored"}"#)
                .unwrap();
        assert!(sig.matches(&v));
        let missing = JsonValue::parse(r#"{"listeners":"1"}"#).unwrap();
        assert!(!sig.matches(&missing));
        // wrapped-in-array tolerance (radio reddit status.json shape)
        let arr = JsonValue::parse(r#"[{"relay":"r","listeners":"2"}]"#).unwrap();
        assert!(sig.matches(&arr));
        // keys metric
        let mut keys = sig.keys();
        keys.sort();
        assert_eq!(keys, vec!["listeners", "relay"]);
    }

    #[test]
    fn json_sig_merge_unions_keys() {
        let mut a = JsonSig::object();
        a.put("x", JsonSig::Value(Box::new(SigPat::lit("1"))));
        let mut b = JsonSig::object();
        b.put("y", JsonSig::Unknown);
        let m = JsonSig::merge(a, b);
        let mut keys = m.keys();
        keys.sort();
        assert_eq!(keys, vec!["x", "y"]);
    }

    #[test]
    fn json_schema_rendering() {
        let mut sig = JsonSig::object();
        sig.put("id", JsonSig::Value(Box::new(SigPat::Unknown(TypeHint::Num))));
        let schema = sig.to_json_schema();
        assert_eq!(schema.get("type").unwrap().as_str(), Some("object"));
        let props = schema.get("properties").unwrap();
        assert!(props.get("id").is_some());
    }

    #[test]
    fn xml_sig_matches_and_dtd() {
        let sig = XmlSig::tag("vast")
            .attr("version", SigPat::any_str())
            .child(XmlSig::tag("Ad").child(XmlSig::tag("MediaFile")));
        let e = XmlElement::parse(
            "<vast version=\"2.0\"><Ad id=\"1\"><MediaFile>url</MediaFile></Ad></vast>",
        )
        .unwrap();
        assert!(sig.matches(&e));
        let wrong = XmlElement::parse("<vast version=\"2.0\"><NoAd/></vast>").unwrap();
        assert!(!sig.matches(&wrong));
        let dtd = sig.to_dtd();
        assert!(dtd.contains("<!ELEMENT vast (Ad)>"));
        assert!(dtd.contains("<!ATTLIST vast version CDATA #REQUIRED>"));
        assert_eq!(sig.keywords(), vec!["vast", "version", "Ad", "MediaFile"]);
    }

    #[test]
    fn literal_prefix_stops_at_variable_parts() {
        // Plain constant head: the whole leading run is the prefix.
        let sig = SigPat::Concat(vec![
            SigPat::lit("https://h/talks/"),
            SigPat::Unknown(TypeHint::Num),
            SigPat::lit("/ad.json"),
        ]);
        assert_eq!(sig.literal_prefix(), "https://h/talks/");

        // Normalization merges adjacent constants before extraction.
        let merged = SigPat::Concat(vec![SigPat::lit("http://"), SigPat::lit("host/api?q=")]);
        assert_eq!(merged.literal_prefix(), "http://host/api?q=");

        // Or: arms diverge, so extraction stops at the disjunction even
        // when every arm shares a head byte.
        let or = SigPat::Concat(vec![
            SigPat::lit("http://h/"),
            SigPat::Or(vec![SigPat::lit("cats"), SigPat::lit("dogs")]).normalize(),
        ]);
        assert_eq!(or.literal_prefix(), "http://h/");
        // A top-level Or has no mandatory head at all.
        let top = SigPat::Or(vec![SigPat::lit("http://a"), SigPat::lit("http://b")]).normalize();
        assert_eq!(top.literal_prefix(), "");

        // Rep matches zero iterations: nothing after it is mandatory.
        let rep = SigPat::Concat(vec![
            SigPat::lit("base?"),
            SigPat::Rep(Box::new(SigPat::lit("id=1&"))),
            SigPat::lit("end"),
        ]);
        assert_eq!(rep.literal_prefix(), "base?");
    }

    #[test]
    fn literal_prefix_stops_at_percent_escapes() {
        let sig = SigPat::Concat(vec![
            SigPat::lit("https://h/search?q=a%20b&page="),
            SigPat::Unknown(TypeHint::Num),
        ]);
        // Everything before the first `%` byte, nothing after.
        assert_eq!(sig.literal_prefix(), "https://h/search?q=a");
        // A constant *starting* with an escape contributes nothing.
        assert_eq!(SigPat::lit("%7Bx%7D").literal_prefix(), "");
    }

    #[test]
    fn literal_prefix_of_variable_host_is_empty() {
        // Dynamically derived URI: `(.*)` — the Tables 3–4 `GET (.*)` rows.
        assert_eq!(SigPat::any_str().literal_prefix(), "");
        // Variable host with a constant path: still no mandatory head,
        // so the serving index must file it under the root fallback
        // bucket, not drop it.
        let sig = SigPat::Concat(vec![SigPat::any_str(), SigPat::lit("/status.json")]);
        assert_eq!(sig.literal_prefix(), "");
        // Structured heads are variable too.
        let mut o = JsonSig::object();
        o.put("k", JsonSig::Unknown);
        assert_eq!(SigPat::Json(o).literal_prefix(), "");
    }

    #[test]
    fn constants_extraction() {
        let sig =
            SigPat::Concat(vec![SigPat::lit("user="), SigPat::any_str(), SigPat::lit("&passwd=")]);
        assert_eq!(sig.constants(), vec!["user=", "&passwd="]);
    }

    #[test]
    fn or_is_canonical_across_merge_orders() {
        // a ∨ (b ∨ c) and (c ∨ a) ∨ b must normalize to the same tree and
        // hence render byte-identical regexes (confluence-order invariance).
        let a = || SigPat::lit("alpha");
        let b = || SigPat::lit("beta");
        let c = || SigPat::Concat(vec![SigPat::lit("q="), SigPat::any_str()]);
        let left = a().or(b().or(c()));
        let right = c().or(a()).or(b());
        assert_eq!(left, right);
        assert_eq!(left.to_regex(), right.to_regex());
        // duplicates collapse
        let dup = a().or(b()).or(a()).or(b());
        assert_eq!(dup.disjuncts().len(), 2);
        assert_eq!(dup, a().or(b()));
    }

    #[test]
    fn rep_precedence_compiles_and_matches() {
        // rep{} of a multi-part inner pattern must bind the whole inner
        // pattern under `*`, not just its last atom.
        let rep = SigPat::Concat(vec![
            SigPat::lit("base?"),
            SigPat::Rep(Box::new(SigPat::Concat(vec![
                SigPat::lit("id="),
                SigPat::Unknown(TypeHint::Num),
                SigPat::lit("&"),
            ]))),
            SigPat::lit("end"),
        ]);
        let re = Regex::new(&rep.to_regex()).unwrap();
        assert!(re.is_match("base?end"));
        assert!(re.is_match("base?id=1&end"));
        assert!(re.is_match("base?id=1&id=22&end"));
        assert!(!re.is_match("base?id=&end"));
        // the star must not leak onto the neighbouring literal
        assert!(!re.is_match("base?id=1&endend"));
    }

    #[test]
    fn or_precedence_in_concat_compiles_and_matches() {
        // An Or embedded in a Concat must be parenthesized — otherwise
        // `a(x|y)b` would degrade into `ax|yb`.
        let sig = SigPat::Concat(vec![
            SigPat::lit("pre/"),
            SigPat::Or(vec![SigPat::lit("cats"), SigPat::lit("dogs")]).normalize(),
            SigPat::lit("/post"),
        ]);
        let re = Regex::new(&sig.to_regex()).unwrap();
        assert!(re.is_match("pre/cats/post"));
        assert!(re.is_match("pre/dogs/post"));
        assert!(!re.is_match("pre/cats"));
        assert!(!re.is_match("dogs/post"));
    }

    #[test]
    fn xml_in_concat_and_rep_is_parenthesized() {
        // XmlSig::to_regex has a top-level `|` (open/self-closing forms);
        // embedding it in a Concat or under Rep must not let that
        // alternation swallow the neighbouring parts.
        let x = XmlSig::tag("item");
        let sig = SigPat::Concat(vec![
            SigPat::lit("payload="),
            SigPat::Xml(Box::new(x.clone())),
            SigPat::lit(";done"),
        ]);
        let re = Regex::new(&sig.to_regex()).unwrap();
        assert!(re.is_match("payload=<item>v</item>;done"));
        assert!(re.is_match("payload=<item/>;done"));
        // without the parens this would match: `payload=<item.*</item>`
        // alone (alternation absorbing the prefix/suffix).
        assert!(!re.is_match("payload=<item>v</item>"));
        assert!(!re.is_match("<item/>;done"));

        let rep =
            SigPat::Concat(vec![SigPat::Rep(Box::new(SigPat::Xml(Box::new(x)))), SigPat::lit("!")]);
        let re = Regex::new(&rep.to_regex()).unwrap();
        assert!(re.is_match("!"));
        assert!(re.is_match("<item/><item>a</item>!"));
        assert!(!re.is_match("<item/>"));
    }

    #[test]
    fn structural_matches_basics() {
        let sig = SigPat::Concat(vec![
            SigPat::lit("http://h/talks/"),
            SigPat::Unknown(TypeHint::Num),
            SigPat::lit("/ad.json?b="),
            SigPat::Unknown(TypeHint::Bool),
        ]);
        assert!(sig.matches("http://h/talks/2406/ad.json?b=true"));
        assert!(sig.matches("http://h/talks/7/ad.json?b=false"));
        assert!(!sig.matches("http://h/talks//ad.json?b=true"));
        assert!(!sig.matches("http://h/talks/x/ad.json?b=true"));
        assert!(!sig.matches("http://h/talks/2406/ad.json?b=maybe"));

        let rep = SigPat::Concat(vec![
            SigPat::lit("base?"),
            SigPat::Rep(Box::new(SigPat::Concat(vec![
                SigPat::lit("c="),
                SigPat::Unknown(TypeHint::Num),
                SigPat::lit("&"),
            ]))),
        ]);
        assert!(rep.matches("base?"));
        assert!(rep.matches("base?c=1&c=2&c=33&"));
        assert!(!rep.matches("base?c=1"));

        let json = SigPat::Concat(vec![SigPat::lit("data="), {
            let mut o = JsonSig::object();
            o.put("id", JsonSig::Value(Box::new(SigPat::Unknown(TypeHint::Num))));
            SigPat::Json(o)
        }]);
        assert!(json.matches(r#"data={"id":"42"}"#));
        assert!(!json.matches(r#"data={"other":"42"}"#));
        assert!(!json.matches("data=notjson"));
    }

    #[test]
    fn structural_match_agrees_with_compiled_regex() {
        // Differential check on paper-shaped signatures: the structural
        // matcher and the regexlite compilation must agree verdict-for-
        // verdict, so the conformance oracle can use both engines.
        let sigs = vec![
            SigPat::Concat(vec![
                SigPat::lit("http://www.reddit.com/search/.json?q="),
                SigPat::any_str(),
                SigPat::lit("&sort="),
                SigPat::any_str(),
            ]),
            SigPat::Concat(vec![
                SigPat::lit("https://h/talks/"),
                SigPat::Unknown(TypeHint::Num),
                SigPat::lit("/ad.json"),
            ]),
            SigPat::Or(vec![
                SigPat::lit("GET /a"),
                SigPat::Concat(vec![SigPat::lit("GET /b/"), SigPat::Unknown(TypeHint::Num)]),
            ])
            .normalize(),
            SigPat::Concat(vec![
                SigPat::lit("base?"),
                SigPat::Rep(Box::new(SigPat::Concat(vec![
                    SigPat::lit("count="),
                    SigPat::any_str(),
                    SigPat::lit("&"),
                ]))),
            ]),
        ];
        let inputs = [
            "http://www.reddit.com/search/.json?q=cats&sort=top",
            "http://www.reddit.com/r/all",
            "https://h/talks/2406/ad.json",
            "https://h/talks/late/ad.json",
            "GET /a",
            "GET /b/77",
            "GET /b/x",
            "base?",
            "base?count=1&",
            "base?count=1&count=2&",
            "base?count=1",
            "",
        ];
        for sig in &sigs {
            let re = Regex::new(&sig.to_regex()).unwrap();
            for input in inputs {
                assert_eq!(
                    sig.matches(input),
                    re.is_match(input),
                    "engines disagree on sig {:?} input {:?}",
                    sig.display(),
                    input
                );
            }
        }
    }

    #[test]
    fn structural_match_budget_is_distinct_from_no_match() {
        let sig = SigPat::Concat(vec![
            SigPat::Rep(Box::new(SigPat::Or(vec![
                SigPat::Unknown(TypeHint::Num),
                SigPat::Concat(vec![SigPat::lit("q="), SigPat::any_str(), SigPat::lit("&")]),
            ]))),
            SigPat::lit("tail"),
        ]);
        let body = "q=cats&q=0&".repeat(200);
        assert_eq!(sig.matches_budgeted(&body, 10), Err(BudgetExceeded { budget: 10 }));
        assert_eq!(sig.matches_budgeted(&body, usize::MAX), Ok(false));
        let ok = format!("{body}tail");
        assert_eq!(sig.matches_budgeted(&ok, usize::MAX), Ok(true));
    }
}
