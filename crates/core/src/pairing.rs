//! Request–response pairing via disjoint sub-slices (paper §3.3, Fig. 5).
//!
//! Pairing a request with its response is trivial when a demarcation point
//! serves a single transaction. Code reuse breaks this: "When multiple
//! requests and responses share a common demarcation point, standard
//! information flow analysis … identifies multiple responses for a single
//! request URI." The paper's remedy: "If all request/response slices are
//! disjoint, one-to-one relationship would hold between them" — so the
//! slices are preprocessed into *disjoint sub-slices* (the parts unique to
//! one call chain), and information flow is traced between those.
//!
//! Here each *transaction candidate* is anchored at a **root**: a method
//! of the DP's slices that no other slice method calls (requestA(),
//! requestB() in Fig. 5, or the single enclosing method in the common
//! case). The statements reachable from exactly one root form its disjoint
//! segments; a candidate pairs with the response statements its root
//! (and only its root) reaches. Responses reachable from several roots are
//! a *common response handler* — "pairing may not always be one-to-one".

use crate::slicing::SliceSet;
use extractocol_analysis::CallGraph;
use extractocol_ir::{MethodId, ProgramIndex};
use std::collections::{HashMap, HashSet};

/// How a candidate's response side was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pairing {
    /// Exactly this candidate's disjoint segments process the response.
    Unique,
    /// The response is processed by code shared with other candidates
    /// (common response handler).
    SharedHandler,
    /// No response body is processed by the app.
    Unpaired,
}

/// One reconstructed transaction candidate.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// Global transaction id (assigned by the pipeline).
    pub id: usize,
    /// Index of the DP slice set this came from.
    pub dp_index: usize,
    /// Root method anchoring the candidate.
    pub root: MethodId,
    /// Disjoint request statements (plus shared ones when unambiguous).
    pub request_stmts: HashSet<(MethodId, usize)>,
    /// Response statements attributed to this candidate.
    pub response_stmts: HashSet<(MethodId, usize)>,
    /// Pairing resolution.
    pub pairing: Pairing,
}

/// Splits each DP's slices into per-root transaction candidates.
pub fn pair(prog: &ProgramIndex<'_>, graph: &CallGraph, slices: &[SliceSet]) -> Vec<Transaction> {
    let mut out = Vec::new();
    for (dp_index, s) in slices.iter().enumerate() {
        let mut methods: HashSet<MethodId> = s.all_stmts().into_iter().map(|(m, _)| m).collect();
        methods.insert(s.dp.method);

        // Roots: slice methods not called from other slice methods, that
        // actually reach the DP's method through in-slice calls. (Methods
        // pulled in by the asynchronous-event heuristic — setters in other
        // event handlers — are slice members but not transaction anchors.)
        let mut roots: Vec<MethodId> = methods
            .iter()
            .copied()
            .filter(|m| {
                !graph
                    .callers
                    .get(m)
                    .map(|cs| cs.iter().any(|(cm, _)| methods.contains(cm)))
                    .unwrap_or(false)
            })
            .filter(|&m| {
                m == s.dp.method
                    || reachable_within(prog, graph, m, &methods).contains(&s.dp.method)
            })
            .collect();
        roots.sort();
        if roots.is_empty() {
            roots.push(s.dp.method); // recursive slice: fall back
        }

        // Reachability from each root within the slice subgraph.
        let reach: HashMap<MethodId, HashSet<MethodId>> =
            roots.iter().map(|&r| (r, reachable_within(prog, graph, r, &methods))).collect();
        // How many roots reach each method.
        let mut reach_count: HashMap<MethodId, usize> = HashMap::new();
        for set in reach.values() {
            for &m in set {
                *reach_count.entry(m).or_insert(0) += 1;
            }
        }

        for &root in &roots {
            let mine = &reach[&root];
            let disjoint =
                |m: &MethodId| mine.contains(m) && reach_count.get(m).copied().unwrap_or(0) == 1;
            // Request statements: in disjoint methods, plus shared ones when
            // this DP has a single root (no ambiguity to resolve).
            let request_stmts: HashSet<(MethodId, usize)> = s
                .request_slice
                .iter()
                .filter(|(m, _)| {
                    if roots.len() == 1 {
                        mine.contains(m) || !reach_count.contains_key(m)
                    } else {
                        disjoint(m)
                    }
                })
                .copied()
                .collect();
            let response_disjoint: HashSet<(MethodId, usize)> =
                s.response_slice.iter().filter(|(m, _)| disjoint(m)).copied().collect();
            let response_shared: HashSet<(MethodId, usize)> = s
                .response_slice
                .iter()
                .filter(|(m, _)| mine.contains(m) && !disjoint(m))
                .copied()
                .collect();

            let (response_stmts, pairing) = if roots.len() == 1 {
                // Include response work outside this root's cone too (e.g.
                // async callback targets seeded directly).
                let all: HashSet<(MethodId, usize)> = s.response_slice.clone();
                if all.is_empty() {
                    (all, Pairing::Unpaired)
                } else {
                    (all, Pairing::Unique)
                }
            } else if !response_disjoint.is_empty() {
                // Fig. 5: a disjoint path exists from this root's request
                // segment to this root's response segment.
                let mut all = response_disjoint;
                all.extend(response_shared);
                (all, Pairing::Unique)
            } else if !response_shared.is_empty() {
                (response_shared, Pairing::SharedHandler)
            } else {
                (HashSet::new(), Pairing::Unpaired)
            };

            out.push(Transaction {
                id: 0, // assigned by the pipeline
                dp_index,
                root,
                request_stmts,
                response_stmts,
                pairing,
            });
        }
    }
    for (i, t) in out.iter_mut().enumerate() {
        t.id = i;
    }
    out
}

/// Methods reachable from `root` through call-graph edges staying inside
/// `within`.
fn reachable_within(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    root: MethodId,
    within: &HashSet<MethodId>,
) -> HashSet<MethodId> {
    let mut seen = HashSet::new();
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        if !seen.insert(m) {
            continue;
        }
        let body_len = prog.method(m).body.len();
        for si in 0..body_len {
            for &t in graph.targets_of((m, si)) {
                if within.contains(&t) {
                    stack.push(t);
                }
            }
            for e in graph.implicit_of((m, si)) {
                if within.contains(&e.target) {
                    stack.push(e.target);
                }
                if let Some((c, _)) = e.chains_to {
                    if within.contains(&c) {
                        stack.push(c);
                    }
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demarcation;
    use crate::semantics::SemanticModel;
    use crate::slicing::{slice_all, SliceOptions};
    use extractocol_analysis::CallbackRegistry;
    use extractocol_ir::{ApkBuilder, Type, Value};

    /// The Fig. 5 fixture: requestA/requestB share common2() (which holds
    /// the DP); responseA/responseB are disjoint handlers invoked by the
    /// respective transaction methods.
    fn fig5_apk() -> extractocol_ir::Apk {
        let mut b = ApkBuilder::new("fig5", "t");
        b.class("org.apache.http.client.HttpClient", |c| {
            c.stub_method(
                "execute",
                vec![Type::obj_root()],
                Type::object("org.apache.http.HttpResponse"),
            );
        });
        b.class("t.Net", |c| {
            // common2: the shared demarcation point.
            c.static_method("common2", vec![Type::string()], Type::string(), |m| {
                let url = m.arg(0, "url");
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                m.ret(body);
            });
            // Transaction A.
            c.static_method("requestA", vec![], Type::Void, |m| {
                let url = m.temp(Type::string());
                m.cstr(url, "http://svc/a.json");
                let body = m.scall("t.Net", "common2", vec![Value::Local(url)], Type::string());
                m.scall_void("t.Net", "responseA", vec![Value::Local(body)]);
                m.ret_void();
            });
            c.static_method("responseA", vec![Type::string()], Type::Void, |m| {
                let body = m.arg(0, "body");
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let v = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("alpha")],
                    Type::string(),
                );
                let _ = v;
                m.ret_void();
            });
            // Transaction B.
            c.static_method("requestB", vec![], Type::Void, |m| {
                let url = m.temp(Type::string());
                m.cstr(url, "http://svc/b.json");
                let body = m.scall("t.Net", "common2", vec![Value::Local(url)], Type::string());
                m.scall_void("t.Net", "responseB", vec![Value::Local(body)]);
                m.ret_void();
            });
            c.static_method("responseB", vec![Type::string()], Type::Void, |m| {
                let body = m.arg(0, "body");
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let v = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("beta")],
                    Type::string(),
                );
                let _ = v;
                m.ret_void();
            });
        });
        b.build()
    }

    #[test]
    fn fig5_shared_dp_pairs_one_to_one() {
        let apk = fig5_apk();
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
        let sites = demarcation::scan(&prog, &model);
        assert_eq!(sites.len(), 1, "one shared DP");
        let slices = slice_all(&prog, &graph, &model, &sites, &SliceOptions::default());
        let txns = pair(&prog, &graph, &slices);
        assert_eq!(txns.len(), 2, "two transaction candidates from one DP");

        let name = |m: MethodId| prog.method(m).name.clone();
        for t in &txns {
            assert_eq!(t.pairing, Pairing::Unique, "root {}", name(t.root));
            let resp_methods: HashSet<String> =
                t.response_stmts.iter().map(|(m, _)| name(*m)).collect();
            match name(t.root).as_str() {
                "requestA" => {
                    assert!(resp_methods.contains("responseA"), "{resp_methods:?}");
                    assert!(!resp_methods.contains("responseB"), "{resp_methods:?}");
                }
                "requestB" => {
                    assert!(resp_methods.contains("responseB"), "{resp_methods:?}");
                    assert!(!resp_methods.contains("responseA"), "{resp_methods:?}");
                }
                other => panic!("unexpected root {other}"),
            }
        }
    }

    #[test]
    fn single_root_keeps_whole_slices() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("org.apache.http.client.HttpClient", |c| {
            c.stub_method(
                "execute",
                vec![Type::obj_root()],
                Type::object("org.apache.http.HttpResponse"),
            );
        });
        b.class("t.C", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.C");
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpGet",
                    vec![Value::str("http://x/")],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let _ = ent;
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
        let sites = demarcation::scan(&prog, &model);
        let slices = slice_all(&prog, &graph, &model, &sites, &SliceOptions::default());
        let txns = pair(&prog, &graph, &slices);
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].pairing, Pairing::Unique);
        assert!(!txns[0].request_stmts.is_empty());
        assert!(!txns[0].response_stmts.is_empty());
    }
}
