//! Flow-sensitive signature building (paper §3.2).
//!
//! Given the request/response slices of one demarcation point, this module
//! abstract-interprets the sliced code over the API semantic model and
//! maintains, for every variable, a signature in the intermediate language
//! of [`crate::siglang`]:
//!
//! * statements are processed "in basic blocks in topological order of the
//!   intra-procedural control flow graph";
//! * at confluence points signatures merge with logical disjunction (`∨`);
//! * at loop headers/latches the loop-variant part is widened into
//!   `rep{..}`;
//! * string objects track literals and written objects with offsets
//!   (modelled here as `Concat` chains); JSON/XML objects are trees;
//! * the *request* side yields the URI, method, headers, and body
//!   signatures; the *response* side yields the tree of keys the app
//!   actually parses (so unread server keys are absent, exactly as §5.1
//!   observes).
//!
//! Interprocedural evaluation inlines concrete callees (depth-limited) and
//! models instance/static fields as global cells stabilized over two
//! rounds — sufficient for the event-handler-to-heap-object flows the
//! asynchronous-event heuristic introduces.

use crate::demarcation::DpSite;
use crate::semantics::{ApiOp, DpRequestLoc, DpResponseLoc, JsonAccess, SemanticModel};
use crate::siglang::{JsonSig, SigPat, TypeHint, XmlSig};
use crate::slicing::SliceSet;
use extractocol_analysis::{CallGraph, Cfg};
use extractocol_http::uri::url_encode;
use extractocol_http::HttpMethod;
use extractocol_ir::{
    Call, Const, Expr, IdentityKind, Local, MethodId, Place, ProgramIndex, Stmt, Type, Value,
};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A request signature: the paper's per-transaction output (URI, query
/// string, request method, headers, body).
#[derive(Clone, Debug, PartialEq)]
pub struct RequestSignature {
    pub method: Option<HttpMethod>,
    pub uri: SigPat,
    pub headers: Vec<(String, SigPat)>,
    pub body: Option<BodySig>,
}

impl RequestSignature {
    /// The effective method: explicit, DP-implied, or GET by default (the
    /// Java URL-connection default).
    pub fn effective_method(&self, dp_implied: Option<HttpMethod>) -> HttpMethod {
        self.method.or(dp_implied).unwrap_or(HttpMethod::Get)
    }
}

/// A body signature, by representation.
#[derive(Clone, Debug, PartialEq)]
pub enum BodySig {
    /// URL-encoded form: ordered key/value signature pairs.
    Form(Vec<(SigPat, SigPat)>),
    /// JSON tree signature.
    Json(JsonSig),
    /// XML tree signature.
    Xml(XmlSig),
    /// Unstructured text.
    Text(SigPat),
}

impl BodySig {
    /// Constant keywords for the Fig. 7 metric: form keys, JSON keys, XML
    /// tags and attributes.
    pub fn keywords(&self) -> Vec<String> {
        match self {
            BodySig::Form(pairs) => pairs
                .iter()
                .filter_map(|(k, _)| match k {
                    SigPat::Const(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            BodySig::Json(j) => j.keys().into_iter().map(str::to_string).collect(),
            BodySig::Xml(x) => x.keywords().into_iter().map(str::to_string).collect(),
            BodySig::Text(_) => Vec::new(),
        }
    }
}

/// The response-side signature.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseSig {
    /// The JSON keys/shape the app reads.
    Json(JsonSig),
    /// The XML tags/attributes the app reads.
    Xml(XmlSig),
    /// The app consumes the body without structured parsing.
    Raw,
}

/// Signatures extracted for one demarcation point.
#[derive(Clone, Debug)]
pub struct DpSignatures {
    pub request: RequestSignature,
    /// `None` when no response body is processed by the app (paper Table 1
    /// counts only responses "with bodies processed by the apps").
    pub response: Option<ResponseSig>,
    /// Device/user data origins feeding the request (§2: microphone,
    /// camera, GPS, user input).
    pub origins: Vec<String>,
    /// Where the response data is consumed (§2: media player, file, …).
    pub consumptions: Vec<String>,
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// Abstract value of a variable during signature interpretation.
#[derive(Clone, Debug, PartialEq)]
enum AbsVal {
    /// A string/number with a signature pattern.
    Str(SigPat),
    /// A JSON document under construction (request side).
    Json(JsonSig),
    /// A name/value pair (`BasicNameValuePair`).
    Pair(SigPat, SigPat),
    /// A list of abstract values (form-entity input, JSON arrays).
    List(Vec<AbsVal>),
    /// A map of key signature → value (`HashMap`, `ContentValues`).
    Map(Vec<(SigPat, AbsVal)>),
    /// An HTTP request object under construction.
    Request(Box<RequestAbs>),
    /// A value derived from the response, carrying the access path from
    /// the response root (JSON keys / XML tags; `[]` = array element).
    Response(Vec<String>),
    /// Nothing known.
    Unknown,
}

/// An HTTP request object being assembled.
#[derive(Clone, Debug, PartialEq, Default)]
struct RequestAbs {
    method: Option<HttpMethod>,
    uri: Option<SigPat>,
    headers: Vec<(String, SigPat)>,
    body: Option<BodySig>,
}

impl AbsVal {
    /// The string signature of this value when written into a string
    /// context; `ty` supplies the wildcard hint for unknowns.
    fn to_sig(&self, ty: Option<&Type>) -> SigPat {
        match self {
            AbsVal::Str(p) => p.clone(),
            AbsVal::Json(j) => SigPat::Json(j.clone()),
            AbsVal::Response(_)
            | AbsVal::Unknown
            | AbsVal::List(_)
            | AbsVal::Map(_)
            | AbsVal::Pair(_, _)
            | AbsVal::Request(_) => match ty {
                Some(t) if t.is_numeric() => SigPat::Unknown(TypeHint::Num),
                Some(Type::Bool) => SigPat::Unknown(TypeHint::Bool),
                _ => SigPat::Unknown(TypeHint::Str),
            },
        }
    }

    /// Confluence merge (the `∨` of the signature language, lifted to all
    /// abstract shapes).
    fn merge(a: AbsVal, b: AbsVal) -> AbsVal {
        if a == b {
            return a;
        }
        match (a, b) {
            (AbsVal::Unknown, x) | (x, AbsVal::Unknown) => {
                // An unknown on one path poisons strings (paper: merge with
                // ∨ only when "all the instances of a variable are
                // well-defined"); structured values keep their structure.
                match x {
                    AbsVal::Str(_) => AbsVal::Str(SigPat::Unknown(TypeHint::Str)),
                    other => other,
                }
            }
            (AbsVal::Str(x), AbsVal::Str(y)) => AbsVal::Str(x.or(y)),
            (AbsVal::Json(x), AbsVal::Json(y)) => AbsVal::Json(JsonSig::merge(x, y)),
            (AbsVal::List(mut x), AbsVal::List(y)) => {
                for (i, v) in y.into_iter().enumerate() {
                    if i < x.len() {
                        let old = x[i].clone();
                        x[i] = AbsVal::merge(old, v);
                    } else {
                        x.push(v);
                    }
                }
                AbsVal::List(x)
            }
            (AbsVal::Map(mut x), AbsVal::Map(y)) => {
                for (k, v) in y {
                    if let Some((_, old)) = x.iter_mut().find(|(kk, _)| *kk == k) {
                        let prev = old.clone();
                        *old = AbsVal::merge(prev, v);
                    } else {
                        x.push((k, v));
                    }
                }
                AbsVal::Map(x)
            }
            (AbsVal::Request(x), AbsVal::Request(y)) => {
                let (mut x, y) = (*x, *y);
                x.method = match (x.method, y.method) {
                    (Some(a), Some(b)) if a == b => Some(a),
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    _ => None,
                };
                x.uri = match (x.uri, y.uri) {
                    (Some(a), Some(b)) => Some(a.or(b)),
                    (a, None) | (None, a) => a,
                };
                for (k, v) in y.headers {
                    if !x.headers.iter().any(|(kk, _)| *kk == k) {
                        x.headers.push((k, v));
                    }
                }
                x.body = match (x.body, y.body) {
                    (Some(BodySig::Json(a)), Some(BodySig::Json(b))) => {
                        Some(BodySig::Json(JsonSig::merge(a, b)))
                    }
                    (a, None) | (None, a) => a,
                    (Some(a), Some(_)) => Some(a),
                };
                AbsVal::Request(Box::new(x))
            }
            (AbsVal::Response(x), AbsVal::Response(y)) => {
                if x == y {
                    AbsVal::Response(x)
                } else {
                    AbsVal::Unknown
                }
            }
            _ => AbsVal::Unknown,
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Per-DP signature extraction.
pub struct SignatureBuilder<'a> {
    prog: &'a ProgramIndex<'a>,
    model: &'a SemanticModel,
    graph: &'a CallGraph,
    /// Global heap cells: `class#field` → value (two-round stabilized).
    heap: RefCell<HashMap<String, AbsVal>>,
    /// Response reader tree (JSON mode).
    resp_json: RefCell<JsonSig>,
    /// Response reader tree (XML mode); root name empty = unconstrained.
    resp_xml: RefCell<Option<XmlSig>>,
    /// Did the response slice parse anything structured?
    resp_touched: RefCell<bool>,
    /// Origin/consumption notes.
    origins: RefCell<BTreeSet<String>>,
    consumptions: RefCell<BTreeSet<String>>,
    /// Captured request operand values at the DP.
    captured_request: RefCell<Option<AbsVal>>,
    /// Evaluation budget to bound inlining.
    budget: RefCell<usize>,
    /// Methods currently on the inline stack (recursion guard).
    in_progress: RefCell<HashSet<MethodId>>,
    dp: &'a DpSite,
    slice_methods: HashSet<MethodId>,
    /// Entry methods to exclude (other transaction roots of a shared DP).
    excluded_entries: Vec<MethodId>,
    /// Whether this transaction has response statements at all.
    has_response: bool,
}

impl<'a> SignatureBuilder<'a> {
    /// Extracts the signatures for one DP's slices (all roots merged).
    pub fn extract(
        prog: &'a ProgramIndex<'a>,
        model: &'a SemanticModel,
        graph: &'a CallGraph,
        slice: &'a SliceSet,
    ) -> DpSignatures {
        Self::extract_scoped(prog, model, graph, slice, &[], !slice.response_slice.is_empty())
    }

    /// Extracts signatures for one transaction candidate of a shared DP:
    /// the other candidates' root methods are excluded from evaluation, so
    /// the captured request reflects only this candidate's paths (the
    /// per-transaction split behind Fig. 5).
    pub fn extract_scoped(
        prog: &'a ProgramIndex<'a>,
        model: &'a SemanticModel,
        graph: &'a CallGraph,
        slice: &'a SliceSet,
        excluded_entries: &[MethodId],
        has_response: bool,
    ) -> DpSignatures {
        let mut slice_methods: HashSet<MethodId> =
            slice.all_stmts().into_iter().map(|(m, _)| m).collect();
        slice_methods.insert(slice.dp.method);
        let b = SignatureBuilder {
            prog,
            model,
            graph,
            heap: RefCell::new(HashMap::new()),
            resp_json: RefCell::new(JsonSig::Unknown),
            resp_xml: RefCell::new(None),
            resp_touched: RefCell::new(false),
            origins: RefCell::new(BTreeSet::new()),
            consumptions: RefCell::new(BTreeSet::new()),
            captured_request: RefCell::new(None),
            budget: RefCell::new(20_000),
            in_progress: RefCell::new(HashSet::new()),
            dp: &slice.dp,
            slice_methods,
            excluded_entries: excluded_entries.to_vec(),
            has_response,
        };
        b.run()
    }

    fn run(&self) -> DpSignatures {
        // Entry methods of the slice: no in-slice callers, minus the other
        // candidates' roots when scoped to one transaction.
        let mut entries: Vec<MethodId> = Vec::new();
        for &m in &self.slice_methods {
            if self.excluded_entries.contains(&m) {
                continue;
            }
            let called_from_slice = self
                .graph
                .callers
                .get(&m)
                .map(|cs| cs.iter().any(|(cm, _)| self.slice_methods.contains(cm)))
                .unwrap_or(false);
            if !called_from_slice {
                entries.push(m);
            }
        }
        entries.sort();
        // Two heap-stabilization rounds, then a final capture round.
        for _ in 0..2 {
            for &e in &entries {
                self.eval_entry(e);
            }
        }
        for &e in &entries {
            self.eval_entry(e);
        }
        // Make sure the DP's own method ran (it is always in the slice set,
        // but may be callee of an entry — evaluation then captured it).
        if self.captured_request.borrow().is_none() {
            self.eval_entry(self.dp.method);
        }
        // Callback-style DPs deliver the response through implicit edges;
        // the callback methods have in-slice callers (the DP's method) and
        // so are not entries — evaluate them explicitly with the response
        // root seeded on their framework-fed parameters.
        if self.dp.spec.response == DpResponseLoc::Callback {
            for e in self.graph.implicit_of((self.dp.method, self.dp.stmt)).to_vec() {
                self.eval_entry(e.target);
            }
        }

        // ---- assemble the request signature ----
        let captured = self.captured_request.borrow().clone().unwrap_or(AbsVal::Unknown);
        let request = match captured {
            AbsVal::Request(r) => RequestSignature {
                method: r.method,
                uri: r.uri.unwrap_or(SigPat::Unknown(TypeHint::Str)).normalize(),
                headers: r.headers,
                body: r.body,
            },
            AbsVal::Str(p) => RequestSignature {
                method: None,
                uri: p.normalize(),
                headers: Vec::new(),
                body: None,
            },
            _ => RequestSignature {
                method: None,
                uri: SigPat::Unknown(TypeHint::Str),
                headers: Vec::new(),
                body: None,
            },
        };

        // ---- assemble the response signature ----
        let response = if !self.has_response {
            None
        } else if *self.resp_touched.borrow() {
            if let Some(x) = self.resp_xml.borrow().clone() {
                Some(ResponseSig::Xml(x))
            } else {
                let j = self.resp_json.borrow().clone();
                match j {
                    JsonSig::Unknown => Some(ResponseSig::Raw),
                    tree => Some(ResponseSig::Json(tree)),
                }
            }
        } else {
            // No body-consuming operation observed: the DP fired but the
            // app never read the payload (fire-and-forget).
            None
        };

        DpSignatures {
            request,
            response,
            origins: self.origins.borrow().iter().cloned().collect(),
            consumptions: self.consumptions.borrow().iter().cloned().collect(),
        }
    }

    fn eval_entry(&self, mid: MethodId) {
        let method = self.prog.method(mid);
        let this = AbsVal::Unknown;
        let args: Vec<AbsVal> = method.params.iter().map(|_| AbsVal::Unknown).collect();
        // Response callbacks get the Response root seeded on the
        // framework-fed parameter.
        let args = self.seed_callback_args(mid, args);
        self.eval_method(mid, this, args);
    }

    /// Seeds `Response([])` on callback parameters fed by the framework at
    /// this DP (Volley's `parseNetworkResponse`, retrofit's `onResponse`…).
    fn seed_callback_args(&self, mid: MethodId, mut args: Vec<AbsVal>) -> Vec<AbsVal> {
        if self.dp.spec.response != DpResponseLoc::Callback {
            return args;
        }
        for e in self.graph.implicit_of((self.dp.method, self.dp.stmt)) {
            if e.target != mid {
                continue;
            }
            for (pi, from) in e.param_from.iter().enumerate() {
                if from.is_none() && pi < args.len() {
                    args[pi] = AbsVal::Response(Vec::new());
                    *self.resp_touched.borrow_mut() = true;
                }
            }
        }
        args
    }

    /// Evaluates a method body; returns `(return value, this after exit)`.
    fn eval_method(&self, mid: MethodId, this: AbsVal, args: Vec<AbsVal>) -> (AbsVal, AbsVal) {
        let method = self.prog.method(mid);
        if !method.has_body || method.body.is_empty() {
            return (AbsVal::Unknown, this);
        }
        {
            let mut budget = self.budget.borrow_mut();
            if *budget == 0 {
                return (AbsVal::Unknown, this);
            }
            *budget -= 1;
        }
        if !self.in_progress.borrow_mut().insert(mid) {
            return (AbsVal::Unknown, this); // recursion
        }
        let result = self.eval_body(mid, this, args);
        self.in_progress.borrow_mut().remove(&mid);
        result
    }

    fn eval_body(&self, mid: MethodId, this: AbsVal, args: Vec<AbsVal>) -> (AbsVal, AbsVal) {
        let method = self.prog.method(mid);
        let cfg = Cfg::build(method);
        type Env = HashMap<Local, AbsVal>;
        let mut env_out: Vec<Option<Env>> = vec![None; cfg.blocks.len()];
        let mut this_local: Option<Local> = None;
        let mut ret_val: Option<AbsVal> = None;
        let mut this_out: Option<AbsVal> = None;

        // Widening over loops (§3.2's loop-header/latch handling),
        // innermost loops first so an inner `rep{..}` is part of the
        // enclosing loop's delta:
        //   pass 0 — ignore back edges (loop bodies see pre-loop values);
        //   pass p (1..=depth) — headers of loops at nesting depth
        //            ≥ depth+1-p widen accumulators (latch value
        //            structurally extends the header value) to
        //            `base · rep{delta}`; the delta is *pinned* on first
        //            widening, so outer prefixes may change on later
        //            passes without re-deriving it. Headers not yet
        //            scheduled keep accumulators at their base so their
        //            delta can stabilize. Loop-carried *scalars* merge
        //            with the latch value (e.g. a counter becomes
        //            0 ∨ unknown-number) on every pass;
        //   final pass — every header applies its pinned delta;
        //            captures/returns are taken from this pass only.
        let mut loop_members: Vec<(usize, std::collections::BTreeSet<usize>)> = Vec::new();
        for &(latch, header) in &cfg.back_edges {
            let body = cfg.natural_loop(latch, header);
            if let Some(entry) = loop_members.iter_mut().find(|(h, _)| *h == header) {
                entry.1.extend(body);
            } else {
                loop_members.push((header, body));
            }
        }
        let depth_of =
            |h: usize| loop_members.iter().filter(|(_, blocks)| blocks.contains(&h)).count();
        let max_depth = loop_members.iter().map(|(h, _)| depth_of(*h)).max().unwrap_or(0);
        // First pass on which each header widens (deeper loops earlier,
        // and never before pass 2 so loop-carried scalars get one merge
        // pass to stabilize first).
        let widen_from: HashMap<usize, usize> =
            loop_members.iter().map(|(h, _)| (*h, max_depth + 2 - depth_of(*h))).collect();
        let mut deltas: HashMap<(usize, Local), SigPat> = HashMap::new();
        let passes = if cfg.back_edges.is_empty() { 1 } else { 2 + max_depth };
        for pass in 0..passes {
            let last = pass + 1 == passes;
            for &bi in &cfg.rpo {
                let block = &cfg.blocks[bi];
                // Confluence: merge forward-edge predecessor environments.
                let mut env: Env = if bi == cfg.rpo[0] {
                    Env::new()
                } else {
                    let mut merged: Option<Env> = None;
                    for &p in &block.preds {
                        if cfg.back_edges.contains(&(p, bi)) {
                            continue;
                        }
                        let Some(pe) = env_out[p].clone() else { continue };
                        merged = Some(match merged {
                            None => pe,
                            Some(acc) => merge_env(acc, pe, false),
                        });
                    }
                    merged.unwrap_or_default()
                };
                if pass > 0 {
                    let latch_envs: Vec<Env> = cfg
                        .back_edges
                        .iter()
                        .filter(|&&(_, h)| h == bi)
                        .filter_map(|&(l, _)| env_out[l].clone())
                        .collect();
                    if !latch_envs.is_empty() {
                        let widen_now = widen_from.get(&bi).is_some_and(|&w| pass >= w);
                        env = widen_env(&env, &latch_envs, widen_now, bi, &mut deltas);
                    }
                }
                for si in block.stmts() {
                    self.eval_stmt(
                        mid,
                        si,
                        &method.body[si],
                        &mut env,
                        &this,
                        &args,
                        &mut this_local,
                        &mut ret_val,
                        &mut this_out,
                        last,
                    );
                }
                env_out[bi] = Some(env);
            }
        }
        (ret_val.unwrap_or(AbsVal::Unknown), this_out.unwrap_or(this))
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_stmt(
        &self,
        mid: MethodId,
        si: usize,
        stmt: &Stmt,
        env: &mut HashMap<Local, AbsVal>,
        this: &AbsVal,
        args: &[AbsVal],
        this_local: &mut Option<Local>,
        ret_val: &mut Option<AbsVal>,
        this_out: &mut Option<AbsVal>,
        final_pass: bool,
    ) {
        let is_dp_stmt = mid == self.dp.method && si == self.dp.stmt;
        match stmt {
            Stmt::Identity { local, kind } => match kind {
                IdentityKind::This => {
                    *this_local = Some(*local);
                    env.insert(*local, this.clone());
                }
                IdentityKind::Param(p) => {
                    let v = args.get(*p as usize).cloned().unwrap_or(AbsVal::Unknown);
                    env.insert(*local, v);
                }
                IdentityKind::CaughtException => {
                    env.insert(*local, AbsVal::Unknown);
                }
            },
            Stmt::Assign { place, expr } => {
                let v = self.eval_expr(mid, si, expr, env, is_dp_stmt);
                let v = if is_dp_stmt && self.dp.spec.response == DpResponseLoc::Return {
                    // The DP's result is the response root. (Consumption is
                    // only recorded when the body is actually read.)
                    AbsVal::Response(Vec::new())
                } else {
                    v
                };
                self.write_place(place, v, env);
            }
            Stmt::Invoke(call) => {
                let _ = self.eval_call(mid, si, call, env, is_dp_stmt);
            }
            Stmt::Return(v) if final_pass => {
                let rv = match v {
                    Some(val) => self.eval_value(val, env),
                    None => AbsVal::Unknown,
                };
                *ret_val = Some(match ret_val.take() {
                    None => rv,
                    Some(old) => AbsVal::merge(old, rv),
                });
                if let Some(tl) = this_local {
                    let tv = env.get(tl).cloned().unwrap_or(AbsVal::Unknown);
                    *this_out = Some(match this_out.take() {
                        None => tv,
                        Some(old) => AbsVal::merge(old, tv),
                    });
                }
            }
            _ => {}
        }
        // Capture the request operand at the DP (merged across paths of
        // the final pass).
        if is_dp_stmt && final_pass {
            if let Some(Value::Local(req)) = &self.dp.request_value {
                let v = env.get(req).cloned().unwrap_or(AbsVal::Unknown);
                let mut cap = self.captured_request.borrow_mut();
                *cap = Some(match cap.take() {
                    None => v,
                    Some(old) => AbsVal::merge(old, v),
                });
            } else if let Some(Value::Const(Const::Str(s))) = &self.dp.request_value {
                let mut cap = self.captured_request.borrow_mut();
                *cap = Some(AbsVal::Str(SigPat::lit(s)));
            }
        }
    }

    fn write_place(&self, place: &Place, v: AbsVal, env: &mut HashMap<Local, AbsVal>) {
        match place {
            Place::Local(l) => {
                env.insert(*l, v);
            }
            Place::InstanceField { field, .. } => {
                let key = format!("{}#{}", field.class, field.name);
                let mut heap = self.heap.borrow_mut();
                let merged = match heap.remove(&key) {
                    Some(old) => AbsVal::merge(old, v),
                    None => v,
                };
                heap.insert(key, merged);
            }
            Place::StaticField(field) => {
                let key = format!("{}#{}", field.class, field.name);
                let mut heap = self.heap.borrow_mut();
                let merged = match heap.remove(&key) {
                    Some(old) => AbsVal::merge(old, v),
                    None => v,
                };
                heap.insert(key, merged);
            }
            Place::ArrayElem { .. } => {}
        }
    }

    fn eval_value(&self, v: &Value, env: &HashMap<Local, AbsVal>) -> AbsVal {
        match v {
            Value::Local(l) => env.get(l).cloned().unwrap_or(AbsVal::Unknown),
            Value::Const(c) => match c {
                Const::Str(s) => AbsVal::Str(SigPat::lit(s)),
                Const::Int(i) => AbsVal::Str(SigPat::lit(&i.to_string())),
                Const::Float(f) => AbsVal::Str(SigPat::lit(&f.to_string())),
                Const::Bool(b) => AbsVal::Str(SigPat::lit(if *b { "true" } else { "false" })),
                Const::Null => AbsVal::Unknown,
                Const::Class(c) => AbsVal::Str(SigPat::lit(c)),
            },
            Value::Resource(key) => match self.prog.apk().resources.string(key) {
                Some(s) => AbsVal::Str(SigPat::lit(s)),
                None => AbsVal::Str(SigPat::Unknown(TypeHint::Str)),
            },
        }
    }

    fn eval_expr(
        &self,
        mid: MethodId,
        si: usize,
        expr: &Expr,
        env: &mut HashMap<Local, AbsVal>,
        is_dp_stmt: bool,
    ) -> AbsVal {
        match expr {
            Expr::Use(v) => self.eval_value(v, env),
            Expr::Load(place) => match place {
                Place::InstanceField { field, .. } | Place::StaticField(field) => {
                    // Resources stored via the Resources class are resolved
                    // by cell; unknown cells stay unknown.
                    let key = format!("{}#{}", field.class, field.name);
                    self.heap.borrow().get(&key).cloned().unwrap_or(AbsVal::Unknown)
                }
                Place::ArrayElem { .. } | Place::Local(_) => AbsVal::Unknown,
            },
            Expr::New(class) => self.new_object(class),
            Expr::NewArray(_, _) => AbsVal::List(Vec::new()),
            Expr::Cast(_, v) | Expr::Un(_, v) => self.eval_value(v, env),
            Expr::InstanceOf(_, _) => AbsVal::Str(SigPat::Unknown(TypeHint::Bool)),
            Expr::Bin(_, a, b) => {
                // Numeric arithmetic on abstract strings: unknown number
                // unless both constants (kept symbolic — arithmetic results
                // are dynamic in signatures).
                let _ = (a, b);
                AbsVal::Str(SigPat::Unknown(TypeHint::Num))
            }
            Expr::Invoke(call) => self.eval_call(mid, si, call, env, is_dp_stmt),
        }
    }

    fn new_object(&self, class: &str) -> AbsVal {
        match class {
            "java.lang.StringBuilder" => AbsVal::Str(SigPat::empty()),
            "org.json.JSONObject"
            | "com.google.gson.JsonObject"
            | "com.alibaba.fastjson.JSONObject" => AbsVal::Json(JsonSig::object()),
            "org.json.JSONArray" => AbsVal::List(Vec::new()),
            c if c.ends_with("ArrayList") || c.ends_with("LinkedList") => AbsVal::List(Vec::new()),
            c if c.ends_with("HashMap") || c.ends_with("ContentValues") => AbsVal::Map(Vec::new()),
            _ => AbsVal::Unknown,
        }
    }

    /// Type hint of a value for wildcard derivation.
    fn value_type(&self, mid: MethodId, v: &Value) -> Option<Type> {
        match v {
            Value::Local(l) => self.prog.method(mid).locals.get(l.index()).map(|d| d.ty.clone()),
            Value::Const(c) => Some(c.ty()),
            Value::Resource(_) => Some(Type::string()),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval_call(
        &self,
        mid: MethodId,
        _si: usize,
        call: &Call,
        env: &mut HashMap<Local, AbsVal>,
        is_dp_stmt: bool,
    ) -> AbsVal {
        let recv_val =
            call.receiver.as_ref().map(|v| self.eval_value(v, env)).unwrap_or(AbsVal::Unknown);
        let arg_vals: Vec<AbsVal> = call.args.iter().map(|v| self.eval_value(v, env)).collect();
        let arg_sig = |i: usize| -> SigPat {
            arg_vals
                .get(i)
                .map(|v| v.to_sig(call.args.get(i).and_then(|a| self.value_type(mid, a)).as_ref()))
                .unwrap_or(SigPat::Unknown(TypeHint::Str))
        };
        let set_recv = |env: &mut HashMap<Local, AbsVal>, v: AbsVal| {
            if let Some(Value::Local(l)) = &call.receiver {
                env.insert(*l, v);
            }
        };

        let op = self.model.op_for(self.prog, &call.callee);
        match op {
            // ---- strings ----
            ApiOp::SbNew => {
                let init = arg_vals
                    .first()
                    .map(|v| {
                        v.to_sig(call.args.first().and_then(|a| self.value_type(mid, a)).as_ref())
                    })
                    .unwrap_or(SigPat::empty());
                set_recv(env, AbsVal::Str(init));
                AbsVal::Unknown
            }
            ApiOp::SbAppend => {
                let cur = match &recv_val {
                    AbsVal::Str(p) => p.clone(),
                    _ => SigPat::empty(),
                };
                let appended = cur.concat(arg_sig(0));
                let out = AbsVal::Str(appended);
                set_recv(env, out.clone());
                out
            }
            ApiOp::SbToString | ApiOp::StrIdentity => recv_val,
            ApiOp::StrConcat => {
                let base = recv_val.to_sig(None);
                AbsVal::Str(base.concat(arg_sig(0)))
            }
            ApiOp::Stringify => {
                let hint = call.args.first().and_then(|a| self.value_type(mid, a));
                AbsVal::Str(
                    arg_vals
                        .first()
                        .map(|v| v.to_sig(hint.as_ref()))
                        .unwrap_or(SigPat::Unknown(TypeHint::Str)),
                )
            }
            ApiOp::StrFormat => {
                // Expand %s/%d in a constant format string.
                match arg_vals.first() {
                    Some(AbsVal::Str(SigPat::Const(fmt))) => {
                        let mut parts: Vec<SigPat> = Vec::new();
                        let mut rest = fmt.as_str();
                        let mut argi = 1;
                        while let Some(pos) = rest.find('%') {
                            parts.push(SigPat::lit(&rest[..pos]));
                            let spec = rest.as_bytes().get(pos + 1).copied();
                            match spec {
                                Some(b'd') => parts.push(
                                    arg_vals
                                        .get(argi)
                                        .map(|v| v.to_sig(Some(&Type::Int)))
                                        .unwrap_or(SigPat::Unknown(TypeHint::Num)),
                                ),
                                Some(b's') => parts.push(
                                    arg_vals
                                        .get(argi)
                                        .map(|v| v.to_sig(None))
                                        .unwrap_or(SigPat::any_str()),
                                ),
                                _ => parts.push(SigPat::lit("%")),
                            }
                            argi += 1;
                            rest = &rest[(pos + 2).min(rest.len())..];
                        }
                        parts.push(SigPat::lit(rest));
                        AbsVal::Str(SigPat::Concat(parts).normalize())
                    }
                    _ => AbsVal::Str(SigPat::Unknown(TypeHint::Str)),
                }
            }
            ApiOp::UrlEncode => match arg_vals.first() {
                Some(AbsVal::Str(SigPat::Const(s))) => AbsVal::Str(SigPat::lit(&url_encode(s))),
                _ => AbsVal::Str(SigPat::Unknown(TypeHint::Str)),
            },

            // ---- request objects ----
            ApiOp::ApacheRequestNew(m) => {
                let r =
                    RequestAbs { method: Some(m), uri: Some(arg_sig(0)), ..RequestAbs::default() };
                set_recv(env, AbsVal::Request(Box::new(r)));
                AbsVal::Unknown
            }
            ApiOp::UrlNew => {
                let r = RequestAbs { uri: Some(arg_sig(0)), ..RequestAbs::default() };
                set_recv(env, AbsVal::Request(Box::new(r)));
                AbsVal::Unknown
            }
            ApiOp::SetRequestMethod => {
                if let AbsVal::Request(mut r) = recv_val {
                    if let Some(AbsVal::Str(SigPat::Const(m))) = arg_vals.first() {
                        r.method = HttpMethod::parse(m);
                    }
                    set_recv(env, AbsVal::Request(r));
                }
                AbsVal::Unknown
            }
            ApiOp::SetHeader => {
                if let AbsVal::Request(mut r) = recv_val {
                    let name = match arg_vals.first() {
                        Some(AbsVal::Str(SigPat::Const(k))) => k.clone(),
                        _ => "*".to_string(),
                    };
                    r.headers.push((name, arg_sig(1)));
                    set_recv(env, AbsVal::Request(r));
                }
                AbsVal::Unknown
            }
            ApiOp::SetBody => {
                if let AbsVal::Request(mut r) = recv_val {
                    r.body = Some(body_from(arg_vals.first().cloned().unwrap_or(AbsVal::Unknown)));
                    set_recv(env, AbsVal::Request(r));
                }
                AbsVal::Unknown
            }
            ApiOp::FormEntityNew => {
                let v = arg_vals.first().cloned().unwrap_or(AbsVal::Unknown);
                set_recv(env, v);
                AbsVal::Unknown
            }
            ApiOp::NameValuePairNew => {
                set_recv(env, AbsVal::Pair(arg_sig(0), arg_sig(1)));
                AbsVal::Unknown
            }
            ApiOp::StringEntityNew => {
                let v = arg_vals.first().cloned().unwrap_or(AbsVal::Unknown);
                set_recv(env, v);
                AbsVal::Unknown
            }
            ApiOp::OkBuilderNew => {
                set_recv(env, AbsVal::Request(Box::default()));
                AbsVal::Unknown
            }
            ApiOp::OkUrl => {
                let out = if let AbsVal::Request(mut r) = recv_val {
                    r.uri = Some(arg_sig(0));
                    AbsVal::Request(r)
                } else {
                    recv_val
                };
                set_recv(env, out.clone());
                out
            }
            ApiOp::OkGet => {
                let out = if let AbsVal::Request(mut r) = recv_val {
                    r.method = Some(HttpMethod::Get);
                    AbsVal::Request(r)
                } else {
                    recv_val
                };
                set_recv(env, out.clone());
                out
            }
            ApiOp::OkMethodBody(m) => {
                let out = if let AbsVal::Request(mut r) = recv_val {
                    r.method = Some(m);
                    if let Some(b) = arg_vals.first() {
                        r.body = Some(body_from(b.clone()));
                    }
                    AbsVal::Request(r)
                } else {
                    recv_val
                };
                set_recv(env, out.clone());
                out
            }
            ApiOp::OkHeader => {
                let out = if let AbsVal::Request(mut r) = recv_val {
                    let name = match arg_vals.first() {
                        Some(AbsVal::Str(SigPat::Const(k))) => k.clone(),
                        _ => "*".to_string(),
                    };
                    r.headers.push((name, arg_sig(1)));
                    AbsVal::Request(r)
                } else {
                    recv_val
                };
                set_recv(env, out.clone());
                out
            }
            ApiOp::OkBuild | ApiOp::OkNewCall => {
                if matches!(op_kind(&call.callee.name), "newCall") {
                    arg_vals.first().cloned().unwrap_or(AbsVal::Unknown)
                } else {
                    recv_val
                }
            }
            ApiOp::OkBodyCreate => {
                // create(mediaType, content) or create(content, mediaType)
                arg_vals
                    .iter()
                    .find(|v| matches!(v, AbsVal::Json(_) | AbsVal::Str(_)))
                    .cloned()
                    .unwrap_or(AbsVal::Unknown)
            }
            ApiOp::VolleyRequestNew => {
                let method = match arg_vals.first() {
                    Some(AbsVal::Str(SigPat::Const(code))) => match code.as_str() {
                        "0" => Some(HttpMethod::Get),
                        "1" => Some(HttpMethod::Post),
                        "2" => Some(HttpMethod::Put),
                        "3" => Some(HttpMethod::Delete),
                        other => HttpMethod::parse(other),
                    },
                    _ => None,
                };
                let body = arg_vals.get(2).and_then(|v| match v {
                    AbsVal::Json(j) => Some(BodySig::Json(j.clone())),
                    _ => None,
                });
                let r = RequestAbs { method, uri: Some(arg_sig(1)), headers: Vec::new(), body };
                set_recv(env, AbsVal::Request(Box::new(r)));
                AbsVal::Unknown
            }
            ApiOp::RetrofitCreate => {
                let method = match arg_vals.first() {
                    Some(AbsVal::Str(SigPat::Const(m))) => HttpMethod::parse(m),
                    _ => None,
                };
                let body = arg_vals.get(2).map(|v| body_from(v.clone()));
                AbsVal::Request(Box::new(RequestAbs {
                    method,
                    uri: Some(arg_sig(1)),
                    headers: Vec::new(),
                    body: body.filter(|b| !matches!(b, BodySig::Text(SigPat::Unknown(_)))),
                }))
            }
            ApiOp::GoogleUrlNew => {
                set_recv(
                    env,
                    AbsVal::Request(Box::new(RequestAbs {
                        uri: Some(arg_sig(0)),
                        ..RequestAbs::default()
                    })),
                );
                AbsVal::Unknown
            }
            ApiOp::GoogleBuildRequest(m) => {
                let mut r = match arg_vals.first() {
                    Some(AbsVal::Request(r)) => (**r).clone(),
                    Some(AbsVal::Str(p)) => {
                        RequestAbs { uri: Some(p.clone()), ..RequestAbs::default() }
                    }
                    _ => RequestAbs::default(),
                };
                r.method = Some(m);
                if let Some(b) = arg_vals.get(1) {
                    r.body = Some(body_from(b.clone()));
                }
                AbsVal::Request(Box::new(r))
            }

            // ---- response reading ----
            ApiOp::RespEntity | ApiOp::RespToString => {
                // The response may be the receiver (resp.getEntity()) or an
                // argument (static EntityUtils.toString(entity)).
                let src = std::iter::once(recv_val.clone())
                    .chain(arg_vals.iter().cloned())
                    .find(|v| matches!(v, AbsVal::Response(_)));
                match src {
                    Some(AbsVal::Response(p)) => {
                        *self.resp_touched.borrow_mut() = true;
                        AbsVal::Response(p)
                    }
                    _ => recv_val,
                }
            }
            ApiOp::RespStatus | ApiOp::JsonArrayLen => AbsVal::Str(SigPat::Unknown(TypeHint::Num)),

            // ---- JSON ----
            ApiOp::JsonNewObj => {
                set_recv(env, AbsVal::Json(JsonSig::object()));
                AbsVal::Unknown
            }
            ApiOp::JsonNewArr => {
                set_recv(env, AbsVal::List(Vec::new()));
                AbsVal::Unknown
            }
            ApiOp::JsonParse => {
                let src = arg_vals.first().cloned().unwrap_or(recv_val.clone());
                let out = match src {
                    AbsVal::Response(p) => {
                        *self.resp_touched.borrow_mut() = true;
                        self.ensure_resp_json();
                        AbsVal::Response(p)
                    }
                    AbsVal::Str(SigPat::Json(j)) => AbsVal::Json(j),
                    AbsVal::Json(j) => AbsVal::Json(j),
                    _ => AbsVal::Unknown,
                };
                // `new JSONObject(text)` binds the receiver.
                if call.callee.name == "<init>" {
                    set_recv(env, out.clone());
                    AbsVal::Unknown
                } else {
                    out
                }
            }
            ApiOp::JsonPut => {
                if let AbsVal::Json(mut j) = recv_val {
                    if let Some(AbsVal::Str(SigPat::Const(k))) = arg_vals.first() {
                        let child = match arg_vals.get(1) {
                            Some(AbsVal::Json(cj)) => cj.clone(),
                            Some(v) => JsonSig::Value(Box::new(v.to_sig(
                                call.args.get(1).and_then(|a| self.value_type(mid, a)).as_ref(),
                            ))),
                            None => JsonSig::Unknown,
                        };
                        j.put(k, child);
                    }
                    set_recv(env, AbsVal::Json(j));
                }
                AbsVal::Unknown
            }
            ApiOp::JsonGet(access) => {
                match recv_val {
                    AbsVal::Response(mut path) => {
                        if let Some(AbsVal::Str(SigPat::Const(k))) = arg_vals.first() {
                            path.push(k.clone());
                            self.record_json_read(&path, access);
                            AbsVal::Response(path)
                        } else {
                            AbsVal::Unknown
                        }
                    }
                    AbsVal::Json(j) => {
                        // Reading back a request-side JSON object.
                        if let Some(AbsVal::Str(SigPat::Const(k))) = arg_vals.first() {
                            if let JsonSig::Object(m) = &j {
                                if let Some(child) = m.get(k) {
                                    return match child {
                                        JsonSig::Value(p) => AbsVal::Str((**p).clone()),
                                        other => AbsVal::Json(other.clone()),
                                    };
                                }
                            }
                        }
                        AbsVal::Unknown
                    }
                    _ => AbsVal::Unknown,
                }
            }
            ApiOp::JsonArrayGet => match recv_val {
                AbsVal::Response(mut path) => {
                    path.push("[]".to_string());
                    self.record_json_read(&path, JsonAccess::Object);
                    AbsVal::Response(path)
                }
                AbsVal::List(items) => {
                    items.into_iter().reduce(AbsVal::merge).unwrap_or(AbsVal::Unknown)
                }
                _ => AbsVal::Unknown,
            },
            ApiOp::JsonArrayPut | ApiOp::ListAdd => {
                if let AbsVal::List(mut items) = recv_val {
                    items.push(arg_vals.first().cloned().unwrap_or(AbsVal::Unknown));
                    set_recv(env, AbsVal::List(items));
                }
                AbsVal::Unknown
            }
            ApiOp::JsonToString => match recv_val {
                AbsVal::Json(j) => AbsVal::Str(SigPat::Json(j)),
                AbsVal::Response(p) => AbsVal::Response(p),
                AbsVal::List(items) => {
                    // A JSONArray body serializes as [elem,…].
                    let elem = items
                        .into_iter()
                        .map(|v| match v {
                            AbsVal::Json(j) => j,
                            other => JsonSig::Value(Box::new(other.to_sig(None))),
                        })
                        .reduce(JsonSig::merge)
                        .unwrap_or(JsonSig::Unknown);
                    AbsVal::Str(SigPat::Json(JsonSig::Array(Box::new(elem))))
                }
                _ => AbsVal::Str(SigPat::Unknown(TypeHint::Str)),
            },
            ApiOp::ReflectToJson => {
                // Gson.toJson(obj): signature from the argument's class.
                let cls = call
                    .args
                    .first()
                    .and_then(|a| self.value_type(mid, a))
                    .and_then(|t| t.class_name().map(str::to_string));
                match cls {
                    Some(c) => AbsVal::Str(SigPat::Json(self.class_json_sig(&c, 3))),
                    None => AbsVal::Str(SigPat::Unknown(TypeHint::Str)),
                }
            }
            ApiOp::ReflectFromJson => {
                // fromJson(text, C.class): the response shape is C's fields.
                if let Some(AbsVal::Response(path)) = arg_vals.first() {
                    *self.resp_touched.borrow_mut() = true;
                    if let Some(AbsVal::Str(SigPat::Const(cls))) = arg_vals.get(1) {
                        let shape = self.class_json_sig(cls, 3);
                        self.merge_resp_json_at(path, shape);
                    }
                    AbsVal::Response(arg_vals[0].clone().into_path())
                } else {
                    AbsVal::Unknown
                }
            }

            // ---- XML ----
            ApiOp::XmlParse => {
                let src = arg_vals.first().cloned().unwrap_or(recv_val);
                match src {
                    AbsVal::Response(p) => {
                        *self.resp_touched.borrow_mut() = true;
                        self.ensure_resp_xml();
                        AbsVal::Response(p)
                    }
                    _ => AbsVal::Unknown,
                }
            }
            ApiOp::XmlGetElements => match recv_val {
                AbsVal::Response(mut path) => {
                    if let Some(AbsVal::Str(SigPat::Const(tag))) = arg_vals.first() {
                        path.push(tag.clone());
                        self.record_xml_tag(&path);
                        AbsVal::Response(path)
                    } else {
                        AbsVal::Unknown
                    }
                }
                _ => AbsVal::Unknown,
            },
            ApiOp::XmlGetAttr => match recv_val {
                AbsVal::Response(path) => {
                    if let Some(AbsVal::Str(SigPat::Const(k))) = arg_vals.first() {
                        self.record_xml_attr(&path, k);
                    }
                    AbsVal::Response(path)
                }
                _ => AbsVal::Unknown,
            },
            ApiOp::XmlGetText => match recv_val {
                AbsVal::Response(path) => AbsVal::Response(path),
                _ => AbsVal::Unknown,
            },

            // ---- containers ----
            ApiOp::ListNew => {
                set_recv(env, AbsVal::List(Vec::new()));
                AbsVal::Unknown
            }
            ApiOp::ListGet => match recv_val {
                AbsVal::List(items) => {
                    items.into_iter().reduce(AbsVal::merge).unwrap_or(AbsVal::Unknown)
                }
                _ => AbsVal::Unknown,
            },
            ApiOp::MapNew | ApiOp::ContentValuesNew => {
                set_recv(env, AbsVal::Map(Vec::new()));
                AbsVal::Unknown
            }
            ApiOp::MapPut | ApiOp::ContentValuesPut => {
                if let AbsVal::Map(mut m) = recv_val {
                    m.push((arg_sig(0), arg_vals.get(1).cloned().unwrap_or(AbsVal::Unknown)));
                    set_recv(env, AbsVal::Map(m));
                }
                AbsVal::Unknown
            }
            ApiOp::MapGet => match (&recv_val, arg_vals.first()) {
                (AbsVal::Map(m), Some(AbsVal::Str(k))) => m
                    .iter()
                    .find(|(kk, _)| kk == k)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(AbsVal::Unknown),
                _ => AbsVal::Unknown,
            },

            // ---- Android state ----
            ApiOp::ResGetString => arg_vals.first().cloned().unwrap_or(AbsVal::Unknown),
            ApiOp::CellGet(_) | ApiOp::DbQuery | ApiOp::CursorGet => {
                AbsVal::Str(SigPat::Unknown(TypeHint::Str))
            }
            ApiOp::CellPut(_) => AbsVal::Unknown,

            // ---- origins and sinks ----
            ApiOp::Origin(kind) => {
                self.origins.borrow_mut().insert(kind.to_string());
                AbsVal::Str(SigPat::Unknown(TypeHint::Str))
            }
            ApiOp::Sink(kind) => {
                let consumes_response = std::iter::once(&recv_val)
                    .chain(arg_vals.iter())
                    .any(|v| matches!(v, AbsVal::Response(_)));
                if consumes_response || self.dp.spec.response == DpResponseLoc::Consumed {
                    self.consumptions.borrow_mut().insert(kind.to_string());
                }
                AbsVal::Unknown
            }

            // ---- inner demarcation (chained okhttp execute etc.) ----
            ApiOp::Demarcation(spec) => {
                if is_dp_stmt {
                    // handled by the caller (response root assignment)
                    AbsVal::Unknown
                } else if spec.request == DpRequestLoc::Receiver {
                    // e.g. call.execute(): response flows from the call obj
                    match recv_val {
                        AbsVal::Response(p) => {
                            // Stream reads on the connection object mean the
                            // app actually consumes the body (vs. connect()).
                            if matches!(
                                call.callee.name.as_str(),
                                "getInputStream" | "openStream" | "getContent"
                            ) {
                                *self.resp_touched.borrow_mut() = true;
                            }
                            AbsVal::Response(p)
                        }
                        _ => AbsVal::Unknown,
                    }
                } else {
                    AbsVal::Unknown
                }
            }

            ApiOp::Unknown => self.eval_unknown_call(call, recv_val, arg_vals, env),
        }
    }

    /// Inlines app-level callees; passes receiver mutations back.
    fn eval_unknown_call(
        &self,
        call: &Call,
        recv_val: AbsVal,
        arg_vals: Vec<AbsVal>,
        env: &mut HashMap<Local, AbsVal>,
    ) -> AbsVal {
        // Resolve a single concrete target through the hierarchy.
        let target = self.prog.resolve_method(
            &call.callee.class,
            &call.callee.name,
            call.callee.params.len(),
        );
        let Some(t) = target else { return AbsVal::Unknown };
        if !self.prog.method(t).has_body {
            return AbsVal::Unknown;
        }
        let (ret, this_out) = self.eval_method(t, recv_val, arg_vals);
        if let Some(Value::Local(l)) = &call.receiver {
            env.insert(*l, this_out);
        }
        ret
    }

    /// Builds a JSON signature from a class's fields (reflection-based
    /// serialization, §3.2).
    fn class_json_sig(&self, class: &str, depth: usize) -> JsonSig {
        if depth == 0 {
            return JsonSig::Unknown;
        }
        let Some(cid) = self.prog.class_id(class) else { return JsonSig::Unknown };
        let mut sig = JsonSig::object();
        for f in &self.prog.class(cid).fields {
            let child = match &f.ty {
                t if t.is_numeric() => JsonSig::Value(Box::new(SigPat::Unknown(TypeHint::Num))),
                Type::Bool => JsonSig::Value(Box::new(SigPat::Unknown(TypeHint::Bool))),
                Type::Object(c) if c == "java.lang.String" => {
                    JsonSig::Value(Box::new(SigPat::any_str()))
                }
                Type::Object(c) if c.starts_with("java.util.") => {
                    JsonSig::Array(Box::new(JsonSig::Unknown))
                }
                Type::Object(c) => self.class_json_sig(c, depth - 1),
                Type::Array(_) => JsonSig::Array(Box::new(JsonSig::Unknown)),
                _ => JsonSig::Unknown,
            };
            sig.put(&f.name, child);
        }
        sig
    }

    fn ensure_resp_json(&self) {
        let mut j = self.resp_json.borrow_mut();
        if matches!(*j, JsonSig::Unknown) {
            *j = JsonSig::object();
        }
    }

    fn ensure_resp_xml(&self) {
        let mut x = self.resp_xml.borrow_mut();
        if x.is_none() {
            *x = Some(XmlSig::tag(""));
        }
    }

    /// Records a JSON read at `path` in the response tree.
    fn record_json_read(&self, path: &[String], access: JsonAccess) {
        self.ensure_resp_json();
        let mut tree = self.resp_json.borrow_mut();
        let mut node: &mut JsonSig = &mut tree;
        for (i, key) in path.iter().enumerate() {
            let last = i + 1 == path.len();
            if key == "[]" {
                node = node.element_mut();
                continue;
            }
            node = node.child_mut(key);
            if last {
                match access {
                    JsonAccess::Leaf => {
                        if matches!(node, JsonSig::Unknown) {
                            *node = JsonSig::Value(Box::new(SigPat::any_str()));
                        }
                    }
                    JsonAccess::Array => {
                        let _ = node.element_mut();
                    }
                    JsonAccess::Object => {}
                }
            }
        }
    }

    /// Merges a class-shaped signature at a path (reflection parse).
    fn merge_resp_json_at(&self, path: &[String], shape: JsonSig) {
        self.ensure_resp_json();
        let mut tree = self.resp_json.borrow_mut();
        if path.is_empty() {
            let old = tree.clone();
            *tree = JsonSig::merge(old, shape);
            return;
        }
        let mut node: &mut JsonSig = &mut tree;
        for key in path {
            if key == "[]" {
                node = node.element_mut();
            } else {
                node = node.child_mut(key);
            }
        }
        let old = node.clone();
        *node = JsonSig::merge(old, shape);
    }

    /// Records an XML tag read at a tag path.
    fn record_xml_tag(&self, path: &[String]) {
        self.ensure_resp_xml();
        let mut guard = self.resp_xml.borrow_mut();
        let root = guard.as_mut().expect("xml root ensured");
        let mut node = root;
        for tag in path.iter().filter(|t| *t != "[]") {
            node = node.child_mut(tag);
        }
    }

    /// Records an attribute read on the element at a tag path.
    fn record_xml_attr(&self, path: &[String], attr: &str) {
        self.ensure_resp_xml();
        let mut guard = self.resp_xml.borrow_mut();
        let root = guard.as_mut().expect("xml root ensured");
        let mut node = root;
        for tag in path.iter().filter(|t| *t != "[]") {
            node = node.child_mut(tag);
        }
        if !node.attrs.iter().any(|(k, _)| k == attr) {
            node.attrs.push((attr.to_string(), SigPat::any_str()));
        }
    }
}

impl AbsVal {
    fn into_path(self) -> Vec<String> {
        match self {
            AbsVal::Response(p) => p,
            _ => Vec::new(),
        }
    }
}

fn op_kind(name: &str) -> &str {
    name
}

/// Converts an abstract value into a body signature.
fn body_from(v: AbsVal) -> BodySig {
    match v {
        AbsVal::Json(j) => BodySig::Json(j),
        AbsVal::Str(SigPat::Json(j)) => BodySig::Json(j),
        AbsVal::Str(p) => BodySig::Text(p),
        AbsVal::List(items) => {
            let pairs: Vec<(SigPat, SigPat)> = items
                .into_iter()
                .filter_map(|it| match it {
                    AbsVal::Pair(k, v) => Some((k, v)),
                    _ => None,
                })
                .collect();
            BodySig::Form(pairs)
        }
        AbsVal::Map(m) => BodySig::Form(m.into_iter().map(|(k, v)| (k, v.to_sig(None))).collect()),
        _ => BodySig::Text(SigPat::Unknown(TypeHint::Str)),
    }
}

/// Merges two environments at a confluence point.
fn merge_env(
    mut a: HashMap<Local, AbsVal>,
    b: HashMap<Local, AbsVal>,
    _at_loop: bool,
) -> HashMap<Local, AbsVal> {
    for (k, v) in b {
        match a.remove(&k) {
            Some(old) => {
                a.insert(k, AbsVal::merge(old, v));
            }
            None => {
                a.insert(k, v);
            }
        }
    }
    a
}

/// Widens a loop header environment against a latch environment.
///
/// A variable is an *accumulator* when its latch value structurally
/// extends its header value (a `StringBuilder` appended to in the loop).
/// On intermediate passes accumulators stay at their base value so the
/// loop delta can stabilize; on the final pass they widen to
/// `base · rep{delta}`. All other loop-carried variables merge with `∨`.
fn widen_env(
    before: &HashMap<Local, AbsVal>,
    latches: &[HashMap<Local, AbsVal>],
    widen_accumulators: bool,
    header: usize,
    deltas: &mut HashMap<(usize, Local), SigPat>,
) -> HashMap<Local, AbsVal> {
    let mut out = HashMap::new();
    for (k, b) in before {
        let afters: Vec<&AbsVal> =
            latches.iter().filter_map(|e| e.get(k)).filter(|a| *a != b).collect();
        if afters.is_empty() {
            out.insert(*k, b.clone());
            continue;
        }
        if let AbsVal::Str(pb) = b {
            // Accumulator: every latch value structurally extends the
            // header value (or a delta was already pinned for this cell).
            let mut ds: Vec<SigPat> = Vec::new();
            let all_extend = afters.iter().all(|a| match a {
                AbsVal::Str(pa) => match SigPat::loop_delta(pb, pa) {
                    Some(d) => {
                        if !d.is_epsilon() {
                            ds.push(d);
                        }
                        true
                    }
                    None => false,
                },
                _ => false,
            });
            let pinned = deltas.contains_key(&(header, *k));
            if all_extend || pinned {
                let mut val = b.clone();
                if widen_accumulators {
                    let delta = match deltas.get(&(header, *k)) {
                        Some(d) => Some(d.clone()),
                        None if ds.is_empty() => None,
                        None => {
                            let mut it = ds.into_iter();
                            let first = it.next().expect("non-empty deltas");
                            let merged = it.fold(first, |acc, d| acc.or(d));
                            deltas.insert((header, *k), merged.clone());
                            Some(merged)
                        }
                    };
                    if let Some(d) = delta {
                        val = AbsVal::Str(
                            SigPat::Concat(vec![pb.clone(), SigPat::Rep(Box::new(d))]).normalize(),
                        );
                    }
                }
                out.insert(*k, val);
                continue;
            }
        }
        // Scalar / non-accumulator: ∨-merge with every latch value.
        let mut val = b.clone();
        for a in afters {
            val = AbsVal::merge(val, a.clone());
        }
        out.insert(*k, val);
    }
    // Locals first defined inside the loop body.
    for latch in latches {
        for (k, a) in latch {
            out.entry(*k).or_insert_with(|| a.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demarcation;
    use crate::slicing::{slice_all, SliceOptions};
    use extractocol_analysis::CallbackRegistry;
    use extractocol_http::Regex;
    use extractocol_ir::{Apk, ApkBuilder, CondOp};

    fn http_stubs(b: &mut ApkBuilder) {
        b.class("org.apache.http.client.HttpClient", |c| {
            c.stub_method(
                "execute",
                vec![Type::obj_root()],
                Type::object("org.apache.http.HttpResponse"),
            );
        });
    }

    fn extract_all(apk: &Apk) -> Vec<DpSignatures> {
        let prog = ProgramIndex::new(apk);
        let model = SemanticModel::standard();
        let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
        let sites = demarcation::scan(&prog, &model);
        let slices = slice_all(&prog, &graph, &model, &sites, &SliceOptions::default());
        slices.iter().map(|s| SignatureBuilder::extract(&prog, &model, &graph, s)).collect()
    }

    /// URI built by StringBuilder with branches: the diode-like shape.
    #[test]
    fn branchy_uri_produces_disjunction() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![Type::Int, Type::string()], Type::Void, |m| {
                m.recv("t.C");
                let mode = m.arg(0, "mode");
                let q = m.arg(1, "q");
                let sb = m.temp(Type::object("java.lang.StringBuilder"));
                m.iff(CondOp::Eq, mode, Value::int(0), "search");
                m.new_obj_into(sb, "java.lang.StringBuilder", vec![Value::str("http://r.com/r/")]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(q)]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("/.json")]);
                m.goto("send");
                m.label("search");
                m.new_obj_into(
                    sb,
                    "java.lang.StringBuilder",
                    vec![Value::str("http://r.com/search/.json?q=")],
                );
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(q)]);
                m.label("send");
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });
        });
        let apk = b.build();
        let sigs = extract_all(&apk);
        assert_eq!(sigs.len(), 1);
        let req = &sigs[0].request;
        assert_eq!(req.method, Some(HttpMethod::Get));
        let arms = req.uri.disjuncts();
        assert_eq!(arms.len(), 2, "uri: {}", req.uri.display());
        let re = Regex::new(&req.uri.to_regex()).unwrap();
        assert!(re.is_match("http://r.com/r/pics/.json"));
        assert!(re.is_match("http://r.com/search/.json?q=cats"));
        assert!(!re.is_match("http://other.com/"));
    }

    /// Swapping which branch is the fallthrough (and therefore which arm
    /// reaches the confluence merge first) must not change the extracted
    /// signature: canonical `Or` makes confluence order-invariant.
    #[test]
    fn confluence_merge_order_is_invariant() {
        let build = |swap: bool| {
            let mut b = ApkBuilder::new("t", "t");
            http_stubs(&mut b);
            b.class("t.C", |c| {
                c.method("go", vec![Type::Int, Type::string()], Type::Void, |m| {
                    m.recv("t.C");
                    let mode = m.arg(0, "mode");
                    let q = m.arg(1, "q");
                    let sb = m.temp(Type::object("java.lang.StringBuilder"));
                    m.iff(CondOp::Eq, mode, Value::int(0), "other");
                    let (first, second) = if swap {
                        ("http://r.com/search/.json?q=", "http://r.com/r/")
                    } else {
                        ("http://r.com/r/", "http://r.com/search/.json?q=")
                    };
                    m.new_obj_into(sb, "java.lang.StringBuilder", vec![Value::str(first)]);
                    m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(q)]);
                    m.goto("send");
                    m.label("other");
                    m.new_obj_into(sb, "java.lang.StringBuilder", vec![Value::str(second)]);
                    m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(q)]);
                    m.label("send");
                    let url =
                        m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                    let req = m
                        .new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                    let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                    m.vcall_void(
                        client,
                        "org.apache.http.client.HttpClient",
                        "execute",
                        vec![Value::Local(req)],
                    );
                    m.ret_void();
                });
            });
            b.build()
        };
        let a = extract_all(&build(false));
        let b = extract_all(&build(true));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].request.uri, b[0].request.uri, "confluence order leaked into the sig");
        assert_eq!(a[0].request.uri.to_regex(), b[0].request.uri.to_regex());
        assert_eq!(a[0].request.uri.disjuncts().len(), 2);
    }

    /// Loops produce rep{..} (Kleene star in the regex).
    #[test]
    fn loop_variant_query_becomes_rep() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![Type::Int], Type::Void, |m| {
                m.recv("t.C");
                let n = m.arg(0, "n");
                let i = m.local("i", Type::Int);
                let sb = m.new_obj("java.lang.StringBuilder", vec![Value::str("http://x/?")]);
                m.cint(i, 0);
                m.label("head");
                m.iff(CondOp::Ge, i, n, "done");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("id=")]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(i)]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&")]);
                m.assign(i, Expr::Bin(extractocol_ir::BinOp::Add, Value::Local(i), Value::int(1)));
                m.goto("head");
                m.label("done");
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });
        });
        let apk = b.build();
        let sigs = extract_all(&apk);
        let uri = &sigs[0].request.uri;
        let re = Regex::new(&uri.to_regex()).unwrap();
        assert!(re.is_match("http://x/?"), "{}", uri.to_regex());
        assert!(re.is_match("http://x/?id=1&"), "{}", uri.to_regex());
        assert!(re.is_match("http://x/?id=1&id=2&id=3&"), "{}", uri.to_regex());
        assert!(!re.is_match("http://y/?id=1&"));
    }

    /// Diamond CFG: one StringBuilder, two arms appending different
    /// constants, a join, then a common suffix. The confluence ∨-merge
    /// (Fig. 4's join rule) must keep both arm values while sharing the
    /// prefix and suffix — not drop an arm, not cross-combine.
    #[test]
    fn diamond_confluence_keeps_both_arms_and_common_suffix() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![Type::Int], Type::Void, |m| {
                m.recv("t.C");
                let mode = m.arg(0, "mode");
                let sb =
                    m.new_obj("java.lang.StringBuilder", vec![Value::str("http://d.com/api/")]);
                m.iff(CondOp::Eq, mode, Value::int(0), "right");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("hot")]);
                m.goto("join");
                m.label("right");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("new")]);
                m.label("join");
                m.vcall_void(
                    sb,
                    "java.lang.StringBuilder",
                    "append",
                    vec![Value::str("/page.json")],
                );
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });
        });
        let apk = b.build();
        let sigs = extract_all(&apk);
        assert_eq!(sigs.len(), 1);
        let uri = &sigs[0].request.uri;
        let re = Regex::new(&uri.to_regex()).unwrap();
        assert!(re.is_match("http://d.com/api/hot/page.json"), "{}", uri.display());
        assert!(re.is_match("http://d.com/api/new/page.json"), "{}", uri.display());
        // Neither arm may be dropped at the join, and the suffix applies
        // to both arms (no arm escapes the merge without it).
        assert!(!re.is_match("http://d.com/api/hot"), "{}", uri.display());
        assert!(!re.is_match("http://d.com/api//page.json"), "{}", uri.display());
        assert!(!re.is_match("http://d.com/api/hotnew/page.json"), "{}", uri.display());
    }

    /// Nested loops: the inner loop's rep must live *inside* the outer
    /// loop's rep — `(g=(i&)*;)*` — so any number of outer iterations,
    /// each with any number of inner iterations, matches.
    #[test]
    fn nested_loops_produce_nested_rep() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![Type::Int, Type::Int], Type::Void, |m| {
                m.recv("t.C");
                let n = m.arg(0, "n");
                let k = m.arg(1, "k");
                let i = m.local("i", Type::Int);
                let j = m.local("j", Type::Int);
                let sb = m.new_obj("java.lang.StringBuilder", vec![Value::str("http://x/?")]);
                m.cint(i, 0);
                m.label("outer");
                m.iff(CondOp::Ge, i, n, "done_outer");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("g=")]);
                m.cint(j, 0);
                m.label("inner");
                m.iff(CondOp::Ge, j, k, "done_inner");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("i&")]);
                m.assign(j, Expr::Bin(extractocol_ir::BinOp::Add, Value::Local(j), Value::int(1)));
                m.goto("inner");
                m.label("done_inner");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str(";")]);
                m.assign(i, Expr::Bin(extractocol_ir::BinOp::Add, Value::Local(i), Value::int(1)));
                m.goto("outer");
                m.label("done_outer");
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });
        });
        let apk = b.build();
        let sigs = extract_all(&apk);
        assert_eq!(sigs.len(), 1);
        let uri = &sigs[0].request.uri;
        let re = Regex::new(&uri.to_regex()).unwrap();
        // zero outer iterations
        assert!(re.is_match("http://x/?"), "{}", uri.display());
        // one outer, zero inner
        assert!(re.is_match("http://x/?g=;"), "{}", uri.display());
        // one outer, several inner
        assert!(re.is_match("http://x/?g=i&i&i&;"), "{}", uri.display());
        // several outer with differing inner counts — only possible when
        // the inner rep is nested inside the outer rep
        assert!(re.is_match("http://x/?g=i&;g=;g=i&i&;"), "{}", uri.display());
        // inner content cannot appear outside an outer iteration
        assert!(!re.is_match("http://x/?i&"), "{}", uri.display());
        assert!(!re.is_match("http://y/?g=;"));
    }

    /// JSON request bodies and response reader trees.
    #[test]
    fn json_body_and_response_tree() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.class("t.C", |c| {
            c.method("login", vec![Type::string(), Type::string()], Type::Void, |m| {
                m.recv("t.C");
                let user = m.arg(0, "user");
                let pw = m.arg(1, "pw");
                // body: {"user": <u>, "passwd": <p>}
                let json = m.new_obj("org.json.JSONObject", vec![]);
                m.vcall_void(
                    json,
                    "org.json.JSONObject",
                    "put",
                    vec![Value::str("user"), Value::Local(user)],
                );
                m.vcall_void(
                    json,
                    "org.json.JSONObject",
                    "put",
                    vec![Value::str("passwd"), Value::Local(pw)],
                );
                let text = m.vcall(json, "org.json.JSONObject", "toString", vec![], Type::string());
                let ent =
                    m.new_obj("org.apache.http.entity.StringEntity", vec![Value::Local(text)]);
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpPost",
                    vec![Value::str("https://s.com/api/login")],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setEntity",
                    vec![Value::Local(ent)],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                // parse response: {"json": {"data": {"modhash": .., "cookie": ..}}}
                let ent2 = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent2)],
                    Type::string(),
                );
                let root = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let data = m.vcall(
                    root,
                    "org.json.JSONObject",
                    "getJSONObject",
                    vec![Value::str("json")],
                    Type::object("org.json.JSONObject"),
                );
                let modhash = m.vcall(
                    data,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("modhash")],
                    Type::string(),
                );
                let cookie = m.vcall(
                    data,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("cookie")],
                    Type::string(),
                );
                let _ = (modhash, cookie);
                m.ret_void();
            });
        });
        let apk = b.build();
        let sigs = extract_all(&apk);
        assert_eq!(sigs.len(), 1);
        let s = &sigs[0];
        assert_eq!(s.request.method, Some(HttpMethod::Post));
        match &s.request.body {
            Some(BodySig::Json(j)) => {
                let mut keys = j.keys();
                keys.sort();
                assert_eq!(keys, vec!["passwd", "user"]);
            }
            other => panic!("expected json body, got {other:?}"),
        }
        match &s.response {
            Some(ResponseSig::Json(tree)) => {
                let mut keys = tree.keys();
                keys.sort();
                assert_eq!(keys, vec!["cookie", "json", "modhash"]);
            }
            other => panic!("expected json response, got {other:?}"),
        }
    }

    /// Resource references resolve to their strings.xml values (§3.1) and
    /// form bodies carry pair keys.
    #[test]
    fn resources_and_form_bodies() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.resource("base_url", "https://api.svc.com/v2/");
        b.class("t.C", |c| {
            c.method("post", vec![Type::string()], Type::Void, |m| {
                m.recv("t.C");
                let tok = m.arg(0, "tok");
                let base = m.temp(Type::string());
                m.cres(base, "base_url");
                let sb = m.new_obj("java.lang.StringBuilder", vec![Value::Local(base)]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("vote")]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let list = m.new_obj("java.util.ArrayList", vec![]);
                let p1 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("id"), Value::Local(tok)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p1)]);
                let p2 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("dir"), Value::str("1")],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p2)]);
                let ent = m.new_obj(
                    "org.apache.http.client.entity.UrlEncodedFormEntity",
                    vec![Value::Local(list)],
                );
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpPost", vec![Value::Local(url)]);
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setEntity",
                    vec![Value::Local(ent)],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setHeader",
                    vec![Value::str("Cookie"), Value::Local(tok)],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });
        });
        let apk = b.build();
        let sigs = extract_all(&apk);
        let s = &sigs[0];
        let re = Regex::new(&s.request.uri.to_regex()).unwrap();
        assert!(re.is_match("https://api.svc.com/v2/vote"), "{}", s.request.uri.to_regex());
        match &s.request.body {
            Some(BodySig::Form(pairs)) => {
                let keys: Vec<String> = pairs.iter().map(|(k, _)| k.to_regex()).collect();
                assert_eq!(keys, vec!["id", "dir"]);
            }
            other => panic!("expected form body, got {other:?}"),
        }
        assert_eq!(s.request.headers.len(), 1);
        assert_eq!(s.request.headers[0].0, "Cookie");
    }

    /// Reflection-based serialization derives the JSON shape from class
    /// fields (gson; §3.2).
    #[test]
    fn gson_reflection_body() {
        let mut b = ApkBuilder::new("t", "t");
        http_stubs(&mut b);
        b.class("t.LoginReq", |c| {
            c.field("username", Type::string());
            c.field("password", Type::string());
            c.field("remember", Type::Bool);
        });
        b.class("t.C", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.C");
                let obj = m.temp(Type::object("t.LoginReq"));
                m.assign(obj, Expr::New("t.LoginReq".into()));
                let gson = m.new_obj("com.google.gson.Gson", vec![]);
                let text = m.vcall(
                    gson,
                    "com.google.gson.Gson",
                    "toJson",
                    vec![Value::Local(obj)],
                    Type::string(),
                );
                let ent =
                    m.new_obj("org.apache.http.entity.StringEntity", vec![Value::Local(text)]);
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpPost",
                    vec![Value::str("https://x/login")],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setEntity",
                    vec![Value::Local(ent)],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });
        });
        let apk = b.build();
        let sigs = extract_all(&apk);
        match &sigs[0].request.body {
            Some(BodySig::Json(j)) => {
                let mut keys = j.keys();
                keys.sort();
                assert_eq!(keys, vec!["password", "remember", "username"]);
            }
            other => panic!("expected reflective json body, got {other:?}"),
        }
    }
}
