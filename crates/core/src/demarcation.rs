//! Demarcation-point discovery.
//!
//! "Our main idea is to start from network access methods and taint network
//! buffers. … We refer to such HTTP access functions as demarcation points
//! (DPs) because they separate the forward and backward program slices"
//! (§3.1). This module scans every concrete method for calls matching the
//! semantic model's DP specs and records, per site, where the request
//! object and the response surface.

use crate::semantics::{DpRequestLoc, DpResponseLoc, DpSpec, SemanticModel};
use extractocol_http::HttpMethod;
use extractocol_ir::{MethodId, Place, ProgramIndex, Stmt, Value};

/// One demarcation-point occurrence in app code.
#[derive(Clone, Debug)]
pub struct DpSite {
    /// Unique id (index into the scan result).
    pub id: usize,
    /// Containing method and statement index.
    pub method: MethodId,
    pub stmt: usize,
    /// The matched spec.
    pub spec: DpSpec,
    /// The request operand at this site (receiver or argument).
    pub request_value: Option<Value>,
    /// Where the response lands, for Return-style DPs with a used result.
    pub response_place: Option<Place>,
}

impl DpSite {
    /// The request method implied by the DP itself, if any.
    pub fn implied_method(&self) -> Option<HttpMethod> {
        self.spec.implied_method
    }
}

/// Scans the program for demarcation points.
///
/// Chained DPs are deduplicated: when a site's request operand is itself
/// the result of another DP at the outer boundary (okhttp's
/// `client.newCall(req)` followed by `call.execute()`), the *outer* site —
/// the one whose request operand carries the protocol content — is kept
/// and the inner one dropped, so one network interaction yields one
/// transaction.
pub fn scan(prog: &ProgramIndex<'_>, model: &SemanticModel) -> Vec<DpSite> {
    let mut sites = Vec::new();
    for mid in prog.concrete_methods() {
        let body = &prog.method(mid).body;
        for (si, stmt) in body.iter().enumerate() {
            let Some(call) = stmt.call() else { continue };
            let Some(spec) = model.demarcation(prog, &call.callee) else { continue };
            let request_value = match spec.request {
                DpRequestLoc::Receiver => call.receiver.clone(),
                DpRequestLoc::Arg(i) => call.args.get(i).cloned(),
            };
            let response_place = match (spec.response, stmt) {
                (DpResponseLoc::Return, Stmt::Assign { place, .. }) => Some(place.clone()),
                _ => None,
            };
            sites.push(DpSite {
                id: 0, // assigned after dedup
                method: mid,
                stmt: si,
                spec,
                request_value,
                response_place,
            });
        }
    }
    // Dedup chained DPs: drop a site whose request operand is defined (in
    // the same method, by simple local def) by another DP site's result.
    let dp_result_locals: Vec<(MethodId, extractocol_ir::Local)> = sites
        .iter()
        .filter_map(|s| match &s.response_place {
            Some(Place::Local(l)) => Some((s.method, *l)),
            _ => None,
        })
        .collect();
    let mut kept: Vec<DpSite> = sites
        .into_iter()
        .filter(|s| {
            let Some(Value::Local(req)) = &s.request_value else { return true };
            // If the request operand is another DP's response local in the
            // same method, this is the chained inner site — drop it.
            !dp_result_locals.iter().any(|(m, l)| *m == s.method && l == req)
        })
        .collect();
    for (i, s) in kept.iter_mut().enumerate() {
        s.id = i;
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::{ApkBuilder, Type};

    fn stubs(b: &mut ApkBuilder) {
        b.class("org.apache.http.client.HttpClient", |c| {
            c.stub_method(
                "execute",
                vec![Type::obj_root()],
                Type::object("org.apache.http.HttpResponse"),
            );
        });
        b.class("okhttp3.OkHttpClient", |c| {
            c.stub_method("newCall", vec![Type::obj_root()], Type::object("okhttp3.Call"));
        });
        b.class("okhttp3.Call", |c| {
            c.stub_method("execute", vec![], Type::object("okhttp3.Response"));
        });
    }

    #[test]
    fn finds_apache_execute_site() {
        let mut b = ApkBuilder::new("t", "t");
        stubs(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.C");
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpGet",
                    vec![Value::str("http://x/")],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let _ = resp;
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let sites = scan(&prog, &model);
        assert_eq!(sites.len(), 1);
        let s = &sites[0];
        assert!(s.request_value.is_some());
        assert!(matches!(s.response_place, Some(Place::Local(_))));
    }

    #[test]
    fn chained_okhttp_dps_deduplicate_to_newcall() {
        let mut b = ApkBuilder::new("t", "t");
        stubs(&mut b);
        b.class("t.C", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.C");
                let req = m.temp(Type::object("okhttp3.Request"));
                m.assign(req, extractocol_ir::Expr::New("okhttp3.Request".into()));
                let client = m.new_obj("okhttp3.OkHttpClient", vec![]);
                let call = m.vcall(
                    client,
                    "okhttp3.OkHttpClient",
                    "newCall",
                    vec![Value::Local(req)],
                    Type::object("okhttp3.Call"),
                );
                let resp = m.vcall(
                    call,
                    "okhttp3.Call",
                    "execute",
                    vec![],
                    Type::object("okhttp3.Response"),
                );
                let _ = resp;
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let model = SemanticModel::standard();
        let sites = scan(&prog, &model);
        assert_eq!(sites.len(), 1, "chained DP must deduplicate");
        assert_eq!(sites[0].spec.class, "okhttp3.OkHttpClient");
    }
}
