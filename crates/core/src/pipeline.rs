//! The end-to-end Extractocol pipeline (paper Fig. 2): demarcation-point
//! identification → bidirectional slicing (with augmentation and the
//! async heuristic) → signature building → HTTP-transaction
//! reconstruction → inter-transaction dependency analysis.

use crate::demarcation;
use crate::deobf;
use crate::flowmodel::SemanticFlowModel;
use crate::interdep;
use crate::metrics::{DpSliceMetrics, Metrics, PhaseTimings};
use crate::pairing::{self, Pairing};
use crate::par;
use crate::report::{AnalysisReport, Stats, TxnReport};
use crate::semantics::ApiOp;
use crate::semantics::SemanticModel;
use crate::sigbuild::SignatureBuilder;
use crate::slicing::{self, SliceOptions};
use crate::stubs;
use extractocol_analysis::{
    diagnostics, CallGraph, CallbackRegistry, PointsTo, TaintEngine, TaintOptions,
};
use extractocol_incr::{Epoch, IncrStats, TargetedStats};
use extractocol_ir::{Apk, MethodId, ProgramIndex};
use extractocol_obs::{EventLog, TraceCollector};
use std::collections::HashSet;
use std::time::Instant;

/// Analysis configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Slicing options (async heuristic / augmentation / field depth).
    pub slice: SliceOptions,
    /// Attempt §3.4 library de-obfuscation before analysis.
    pub deobfuscate_libraries: bool,
    /// Restrict demarcation points to classes with this prefix — the
    /// "we only scope the analysis to com.kayak classes" mode of §5.3.
    pub scope_prefix: Option<String>,
    /// Worker threads for the per-DP fan-out (slicing and signature
    /// extraction). `0` means one per available core; `1` runs strictly
    /// sequentially. Every setting yields a byte-identical report — the
    /// fan-out reassembles results in DP order.
    pub jobs: usize,
    /// Solve Andersen points-to before building the call graph (the
    /// SPARK layer): virtual sites devirtualize through receiver
    /// points-to sets (falling back to the CHA cone where empty), the
    /// taint engine narrows call targets by receiver aliasing, and
    /// augmentation seeds from actual allocation sites. Turning this off
    /// reverts to pure CHA — the `cha_vs_pta` ablation's baseline.
    pub pointsto: bool,
    /// Demand-driven targeted mode: compute the reachability cone of the
    /// demarcation points first, then run points-to, taint, and slicing
    /// only over the cone. Classes outside every cone are never visited
    /// (counted in `Metrics::targeted`); the report stays byte-identical
    /// to the whole-program run.
    pub targeted: bool,
    /// Use the persistent summary cache at [`Options::summary_cache_path`]
    /// (no effect when the path is unset). Off is the ablation baseline:
    /// the path is neither read nor written.
    pub incremental: bool,
    /// Location of the `.exsm` persistent summary-cache archive. When set
    /// (and `incremental` is on), still-valid summaries from a previous
    /// run are preloaded before slicing and the final summary set is
    /// written back afterwards.
    pub summary_cache_path: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            slice: SliceOptions::default(),
            deobfuscate_libraries: true,
            scope_prefix: None,
            jobs: 0,
            pointsto: true,
            targeted: false,
            incremental: true,
            summary_cache_path: None,
        }
    }
}

/// The analyzer. Holds the semantic model (extensible via
/// [`Extractocol::model_mut`] — the paper's plugin hook) and options.
pub struct Extractocol {
    model: SemanticModel,
    registry: CallbackRegistry,
    options: Options,
    events: EventLog,
}

impl Default for Extractocol {
    fn default() -> Self {
        Extractocol::new()
    }
}

impl Extractocol {
    /// An analyzer with the standard model and default options.
    pub fn new() -> Extractocol {
        Extractocol::with_options(Options::default())
    }

    /// An analyzer with custom options.
    pub fn with_options(options: Options) -> Extractocol {
        Extractocol {
            model: SemanticModel::standard(),
            registry: CallbackRegistry::android_defaults(),
            options,
            events: EventLog::disabled(),
        }
    }

    /// Attaches a structured event log; the pipeline emits a run-start
    /// record, one per-phase timing record, and a run-finished record
    /// into it (see `extractocol --log-out`). The default is a disabled
    /// log, which makes every emission a no-op.
    pub fn set_event_log(&mut self, events: EventLog) {
        self.events = events;
    }

    /// Mutable access to the semantic model for API plugins.
    pub fn model_mut(&mut self) -> &mut SemanticModel {
        &mut self.model
    }

    /// Mutable access to the callback registry.
    pub fn registry_mut(&mut self) -> &mut CallbackRegistry {
        &mut self.registry
    }

    /// The current options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Analyzes one APK and reconstructs its protocol behavior.
    ///
    /// Per-DP slicing and per-transaction signature extraction fan out
    /// across [`Options::jobs`] worker threads; the report is identical
    /// for every `jobs` setting (results are merged in DP order and the
    /// shared method-summary cache only memoizes order-independent
    /// closures).
    pub fn analyze(&self, apk: &Apk) -> AnalysisReport {
        self.analyze_traced(apk, &TraceCollector::disabled())
    }

    /// [`Extractocol::analyze`] with span-tree tracing: each pipeline
    /// phase becomes a `phase` span, each demarcation point a nested `dp`
    /// span, and each transaction a `txn` span, recorded into `trace`
    /// (see `extractocol --trace-out`). With a disabled collector this is
    /// exactly `analyze` — the guards compile to a branch.
    pub fn analyze_traced(&self, apk: &Apk, trace: &TraceCollector) -> AnalysisReport {
        let started = Instant::now();
        let mut phases = PhaseTimings::default();
        let jobs = par::resolve_jobs(self.options.jobs);
        let mut run_span = trace.span_in("run", format!("analyze:{}", apk.name));
        run_span.attr("app", apk.name.as_str()).attr("jobs", jobs);
        self.events
            .info("pipeline", "analysis started")
            .field("app", apk.name.as_str())
            .field("jobs", jobs)
            .emit();

        // §3.4: map obfuscated bundled libraries back to canonical names.
        let t = Instant::now();
        let (apk, deobfuscated_classes) = {
            let mut span = trace.span_in("phase", "deobfuscation");
            let out = if self.options.deobfuscate_libraries {
                let map = deobf::infer_library_map(apk, &stubs::library_reference());
                let n = map.classes.len();
                (deobf::deobfuscate(apk, &map), n)
            } else {
                (apk.clone(), 0)
            };
            span.attr("deobfuscated_classes", out.1);
            out
        };
        phases.deobfuscation = t.elapsed();

        let t = Instant::now();
        let mut span = trace.span_in("phase", "indexing");
        let prog = ProgramIndex::new(&apk);
        // Targeted mode defers points-to until the cone is known; the
        // whole-program solve only runs here in untargeted mode.
        let mut pts = (self.options.pointsto && !self.options.targeted).then(|| {
            let _s = trace.span_in("step", "pointsto_solve");
            PointsTo::solve(&prog)
        });
        let mut graph = {
            let _s = trace.span_in("step", "callgraph_build");
            match &pts {
                Some(p) => CallGraph::build_with_pointsto(&prog, &self.registry, p),
                None => CallGraph::build(&prog, &self.registry),
            }
        };
        if let Some(p) = &pts {
            let s = p.stats();
            span.attr("allocation_sites", s.allocs).attr("pts_propagations", s.propagations);
        }
        drop(span);
        phases.indexing = t.elapsed();

        // Phase 1: demarcation points.
        let t = Instant::now();
        let mut span = trace.span_in("phase", "demarcation");
        let mut sites = demarcation::scan(&prog, &self.model);
        if let Some(prefix) = &self.options.scope_prefix {
            sites.retain(|s| prog.class(s.method.class).name.starts_with(prefix.as_str()));
            for (i, s) in sites.iter_mut().enumerate() {
                s.id = i;
            }
        }
        span.attr("dp_sites", sites.len());
        drop(span);
        phases.demarcation = t.elapsed();

        // Targeted mode: close the DP-site methods under every coupling
        // the downstream analyses traverse, then re-solve points-to and
        // devirtualize over the cone alone. Code outside the cone is never
        // visited by points-to, taint, or slicing from here on.
        let mut cone: Option<HashSet<MethodId>> = None;
        let mut targeted_stats: Option<TargetedStats> = None;
        if self.options.targeted {
            let t = Instant::now();
            let mut span = trace.span_in("phase", "targeted");
            let mut seen = HashSet::new();
            let roots: Vec<MethodId> =
                sites.iter().map(|s| s.method).filter(|m| seen.insert(*m)).collect();
            let c = extractocol_incr::cone::compute(&prog, &graph, &roots);
            if self.options.pointsto {
                let _s = trace.span_in("step", "pointsto_solve_scoped");
                let p = PointsTo::solve_scoped(&prog, &c);
                graph = CallGraph::build_with_pointsto(&prog, &self.registry, &p);
                pts = Some(p);
            }
            let stats = extractocol_incr::cone::stats(&prog, &c);
            span.attr("cone_methods", stats.cone_methods)
                .attr("skipped_classes", stats.skipped_classes);
            targeted_stats = Some(stats);
            cone = Some(c);
            phases.targeted = t.elapsed();
        }

        // Precision diagnostics (surfaced via `extractocol --lints`),
        // restricted to the cone in targeted mode.
        let lints = {
            let _s = trace.span_in("step", "lint");
            diagnostics::lint_scoped(
                &prog,
                &graph,
                pts.as_ref(),
                &|callee| !matches!(self.model.op_for(&prog, callee), ApiOp::Unknown),
                cone.as_ref(),
            )
        };

        // The taint engine is pipeline-owned so the persistent summary
        // cache can preload into it before slicing and export afterwards.
        let flow_model = SemanticFlowModel::new(&self.model, &prog);
        let engine = TaintEngine::with_scope(
            &prog,
            &graph,
            &flow_model,
            TaintOptions {
                max_field_depth: self.options.slice.max_field_depth,
                ..TaintOptions::default()
            },
            pts.as_ref(),
            cone.as_ref(),
        );

        let epoch = Epoch {
            app: apk.name.clone(),
            max_field_depth: self.options.slice.max_field_depth as u32,
            pointsto: self.options.pointsto,
            targeted: self.options.targeted,
        };
        let cache_path =
            self.options.incremental.then(|| self.options.summary_cache_path.clone()).flatten();
        let mut incr_stats: Option<IncrStats> = None;
        let mut preloaded_keys = HashSet::new();
        let mut fingerprints = None;
        if let Some(path) = &cache_path {
            let t = Instant::now();
            let mut span = trace.span_in("phase", "incremental");
            let fp =
                extractocol_incr::validity::fingerprints(&prog, &graph, &engine, cone.as_ref());
            let outcome = extractocol_incr::load_into_engine(path, &epoch, &prog, &fp, &engine);
            span.attr("preloaded", outcome.stats.preloaded).attr("valid", outcome.stats.valid);
            incr_stats = Some(outcome.stats);
            preloaded_keys = outcome.preloaded_keys;
            fingerprints = Some(fp);
            phases.incremental = t.elapsed();
        }

        let t = Instant::now();
        let mut span = trace.span_in("phase", "slicing");
        let slices = slicing::slice_all_on(
            &engine,
            &prog,
            &graph,
            &sites,
            &self.options.slice,
            self.options.jobs,
            pts.as_ref(),
            trace,
        );
        let cache = engine.cache_stats();
        span.attr("cache_hits", cache.hits).attr("cache_misses", cache.misses);
        drop(span);
        phases.slicing = t.elapsed();

        // Write the final summary set back (also on cold runs and after a
        // refused load — the next run warms up either way).
        if let (Some(path), Some(stats), Some(fp)) =
            (&cache_path, incr_stats.as_mut(), fingerprints.as_ref())
        {
            let t = Instant::now();
            let _s = trace.span_in("step", "incremental_save");
            let exports = engine.export_summaries();
            let total = cone.as_ref().map_or_else(|| prog.concrete_methods().count(), HashSet::len);
            extractocol_incr::finish_stats(stats, &exports, &preloaded_keys, total);
            let arch = extractocol_incr::build_archive(&epoch, fp, &exports);
            stats.saved = arch.summaries.len();
            if let Err(e) = extractocol_incr::archive::write_file(path, &arch) {
                stats.saved = 0;
                stats.save_error = Some(e.to_string());
            }
            phases.incremental += t.elapsed();
        }

        // Phase 3a: request/response pairing via disjoint sub-slices.
        let t = Instant::now();
        let mut span = trace.span_in("phase", "pairing");
        let txns = pairing::pair(&prog, &graph, &slices);
        span.attr("transactions", txns.len());
        drop(span);
        phases.pairing = t.elapsed();

        // Phase 2: per-transaction signature extraction. Each transaction
        // is independent (the builder is constructed per call), so the
        // same fan-out applies; input order is preserved.
        let t = Instant::now();
        let sig_span = trace.span_in("phase", "signatures");
        let reports: Vec<TxnReport> = par::parallel_map(&txns, self.options.jobs, |_, t| {
            let mut span = trace.span_in("txn", format!("txn:{}", t.id));
            if span.is_recording() {
                span.attr("txn_id", t.id).attr("dp_index", t.dp_index).attr(
                    "root",
                    format!("{}.{}", prog.class(t.root.class).name, prog.method(t.root).name),
                );
            }
            let siblings: Vec<MethodId> = txns
                .iter()
                .filter(|o| o.dp_index == t.dp_index && o.id != t.id)
                .map(|o| o.root)
                .collect();
            let slice = &slices[t.dp_index];
            let sigs = SignatureBuilder::extract_scoped(
                &prog,
                &self.model,
                &graph,
                slice,
                &siblings,
                !t.response_stmts.is_empty(),
            );
            let method = sigs.request.effective_method(slice.dp.implied_method());
            let response = if t.pairing == Pairing::Unpaired {
                None
            } else {
                match sigs.response {
                    // A body that only streams into a device sink (media
                    // player, image view) is consumed, not processed — the
                    // paper's pair count covers only "responses that have
                    // bodies processed by the apps" (§5.1).
                    Some(crate::sigbuild::ResponseSig::Raw) if !sigs.consumptions.is_empty() => {
                        None
                    }
                    r => r,
                }
            };
            TxnReport {
                id: t.id,
                dp_class: slice.dp.spec.class.clone(),
                root: format!("{}.{}", prog.class(t.root.class).name, prog.method(t.root).name),
                method,
                uri_regex: sigs.request.uri.to_regex(),
                uri: sigs.request.uri.clone(),
                headers: sigs
                    .request
                    .headers
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_regex()))
                    .collect(),
                header_sigs: sigs.request.headers.clone(),
                request_body: sigs.request.body.clone(),
                response,
                pairing: t.pairing,
                origins: sigs.origins.clone(),
                consumptions: sigs.consumptions.clone(),
            }
        });
        drop(sig_span);
        phases.signatures = t.elapsed();

        // Phase 3b: inter-transaction dependencies.
        let t = Instant::now();
        let mut span = trace.span_in("phase", "dependencies");
        let dependencies = interdep::dependencies(&prog, &self.model, &slices, &txns);
        span.attr("edges", dependencies.len());
        drop(span);
        phases.dependencies = t.elapsed();

        let per_dp: Vec<DpSliceMetrics> = slices
            .iter()
            .map(|s| DpSliceMetrics {
                dp_id: s.dp.id,
                request_stmts: s.request_slice.len(),
                response_stmts: s.response_slice.len(),
            })
            .collect();

        let slice_stats = slicing::stats(&prog, &slices);
        for (name, dur) in phases.slots() {
            if !dur.is_zero() {
                self.events
                    .debug("pipeline", "phase finished")
                    .field("phase", name)
                    .field("phase_us", dur.as_micros() as u64)
                    .emit();
            }
        }
        self.events
            .info("pipeline", "analysis finished")
            .field("app", apk.name.as_str())
            .field("dp_sites", sites.len() as u64)
            .field("transactions", reports.len() as u64)
            .field("duration_us", started.elapsed().as_micros() as u64)
            .emit();
        AnalysisReport {
            app: apk.name.clone(),
            transactions: reports,
            dependencies,
            stats: Stats {
                total_stmts: slice_stats.total_stmts,
                sliced_stmts: slice_stats.sliced_stmts,
                dp_sites: sites.len(),
                deobfuscated_classes,
                duration: started.elapsed(),
            },
            metrics: Metrics {
                jobs,
                phases,
                cache,
                per_dp,
                lints,
                pts: pts.as_ref().map(PointsTo::stats),
                conformance: None,
                incr: incr_stats,
                targeted: targeted_stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigbuild::BodySig;
    use extractocol_http::HttpMethod;
    use extractocol_ir::{ApkBuilder, Type, Value};

    /// End-to-end: a two-transaction app with a token dependency.
    fn sample_app() -> Apk {
        let mut b = ApkBuilder::new("sample", "com.sample");
        stubs::install(&mut b);
        b.activity("com.sample.Main");
        b.class("com.sample.Main", |c| {
            c.extends("android.app.Activity");
            let token = c.field("mToken", Type::string());
            c.method("login", vec![Type::string()], Type::Void, |m| {
                let this = m.recv("com.sample.Main");
                let user = m.arg(0, "user");
                let sb = m.new_obj(
                    "java.lang.StringBuilder",
                    vec![Value::str("https://api.sample.com/login?u=")],
                );
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(user)]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpPost", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let tok = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("token")],
                    Type::string(),
                );
                m.put_field(this, &token, tok);
                m.ret_void();
            });
            c.method("fetch", vec![], Type::Void, |m| {
                let this = m.recv("com.sample.Main");
                let tok = m.temp(Type::string());
                m.get_field(tok, this, &token);
                let sb = m.new_obj(
                    "java.lang.StringBuilder",
                    vec![Value::str("https://api.sample.com/items?auth=")],
                );
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(tok)]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let items = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getJSONArray",
                    vec![Value::str("items")],
                    Type::object("org.json.JSONArray"),
                );
                let _ = items;
                m.ret_void();
            });
        });
        b.build()
    }

    #[test]
    fn analyzes_end_to_end() {
        let apk = sample_app();
        let report = Extractocol::new().analyze(&apk);
        assert_eq!(report.transactions.len(), 2);
        assert_eq!(report.method_count(HttpMethod::Post), 1);
        assert_eq!(report.method_count(HttpMethod::Get), 1);
        assert_eq!(report.pair_count(), 2);
        // Dependency login → fetch through mToken.
        assert!(
            !report.dependencies.is_empty(),
            "token dependency expected: {}",
            report.to_table()
        );
        let d = &report.dependencies[0];
        assert_eq!(d.resp_field.as_deref(), Some("token"));
        // Stats populated.
        assert!(report.stats.slice_fraction() > 0.0);
        assert!(report.stats.dp_sites == 2);
        // No request body on the GET.
        let get = report.by_method(HttpMethod::Get).next().unwrap();
        assert!(matches!(get.request_body, None | Some(BodySig::Text(_))));
        assert!(get.has_query_string());
    }

    #[test]
    fn scope_prefix_filters_dps() {
        let apk = sample_app();
        let opts = Options { scope_prefix: Some("com.other".into()), ..Options::default() };
        let report = Extractocol::with_options(opts).analyze(&apk);
        assert!(report.transactions.is_empty());
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;

    /// Degenerate inputs must not panic: empty APKs, apps with no network
    /// code, and apps whose only method is bodyless.
    #[test]
    fn degenerate_apps_analyze_cleanly() {
        let analyzer = Extractocol::new();

        let empty = extractocol_ir::ApkBuilder::new("empty", "e").build();
        let r = analyzer.analyze(&empty);
        assert!(r.transactions.is_empty());
        assert_eq!(r.stats.dp_sites, 0);

        let mut b = extractocol_ir::ApkBuilder::new("nonet", "n");
        b.class("n.C", |c| {
            c.method("pure", vec![extractocol_ir::Type::Int], extractocol_ir::Type::Int, |m| {
                let p = m.arg(0, "p");
                m.ret(p);
            });
            c.stub_method("abstract_m", vec![], extractocol_ir::Type::Void);
        });
        let r = analyzer.analyze(&b.build());
        assert!(r.transactions.is_empty());
        assert!(r.dependencies.is_empty());
    }
}
