//! Analysis instrumentation: per-phase wall time, per-DP slice sizes, and
//! method-summary-cache counters. Everything here is *observational* —
//! excluded from the canonical report serialization (`to_table` /
//! `to_json`), because timings and cache counters vary run-to-run and
//! across worker counts while the analysis result itself must not.

pub use extractocol_analysis::CacheStats;
pub use extractocol_analysis::{LintReport, PtsStats};
use extractocol_obs::{Registry, Volatility};
use std::time::Duration;

/// Wall-clock time of each pipeline phase (Fig. 2's boxes, plus the
/// validation and serving phases bolted on since). `total()` always sums
/// *every* slot, so an end-to-end run that exercises conformance or the
/// serving side is no longer under-reported.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// §3.4 library de-obfuscation.
    pub deobfuscation: Duration,
    /// Program indexing + call-graph construction.
    pub indexing: Duration,
    /// Demarcation-point scan.
    pub demarcation: Duration,
    /// Targeted-mode cone construction + scoped points-to re-solve (zero
    /// outside `--targeted`).
    pub targeted: Duration,
    /// Persistent summary-cache fingerprinting, load, and save (zero when
    /// no `--summary-cache-path` is set).
    pub incremental: Duration,
    /// Bidirectional slicing across all DPs (wall time, not CPU time —
    /// under `jobs > 1` many DPs overlap inside this window).
    pub slicing: Duration,
    /// Request/response pairing via disjoint sub-slices.
    pub pairing: Duration,
    /// Per-transaction signature extraction.
    pub signatures: Duration,
    /// Inter-transaction dependency analysis.
    pub dependencies: Duration,
    /// Differential conformance check against a dynamic trace (zero when
    /// no oracle ran).
    pub conformance: Duration,
    /// Serving-side signature-index compilation (zero outside
    /// `extractocol-serve`).
    pub serve_compile: Duration,
    /// Serving-side traffic classification (zero outside
    /// `extractocol-serve`).
    pub serve_classify: Duration,
}

impl PhaseTimings {
    /// Every `(phase name, duration)` pair, in pipeline order. The single
    /// source of truth for `total()`, the registry export, and the CLI
    /// timing tables — a new slot only has to be added here.
    pub fn slots(&self) -> [(&'static str, Duration); 12] {
        [
            ("deobfuscation", self.deobfuscation),
            ("indexing", self.indexing),
            ("demarcation", self.demarcation),
            ("targeted", self.targeted),
            ("incremental", self.incremental),
            ("slicing", self.slicing),
            ("pairing", self.pairing),
            ("signatures", self.signatures),
            ("dependencies", self.dependencies),
            ("conformance", self.conformance),
            ("serve_compile", self.serve_compile),
            ("serve_classify", self.serve_classify),
        ]
    }

    /// Sum of all phase times (every slot, including conformance and the
    /// serving phases).
    pub fn total(&self) -> Duration {
        self.slots().iter().map(|(_, d)| *d).sum()
    }

    /// A per-phase breakdown table (skips zero slots), ending with the
    /// total row.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, d) in self.slots() {
            if !d.is_zero() {
                let _ = writeln!(out, "  {name:<14} {:>10.3}ms", d.as_secs_f64() * 1e3);
            }
        }
        let _ = writeln!(out, "  {:<14} {:>10.3}ms", "total", self.total().as_secs_f64() * 1e3);
        out
    }
}

/// Slice sizes of one demarcation point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DpSliceMetrics {
    /// The DP site id.
    pub dp_id: usize,
    /// Statements in the backward (request) slice.
    pub request_stmts: usize,
    /// Statements in the forward (response) slice.
    pub response_stmts: usize,
}

impl DpSliceMetrics {
    /// Total statements across both slices (with overlap counted twice —
    /// a per-DP effort proxy, not a coverage figure).
    pub fn total_stmts(&self) -> usize {
        self.request_stmts + self.response_stmts
    }
}

/// All instrumentation of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Worker threads the run actually used (after resolving `jobs = 0`).
    pub jobs: usize,
    /// Per-phase wall times.
    pub phases: PhaseTimings,
    /// Method-summary cache counters from the slicing phase.
    pub cache: CacheStats,
    /// Per-DP slice sizes, ordered by DP id.
    pub per_dp: Vec<DpSliceMetrics>,
    /// Precision lints from the diagnostics pass (stable order; rendered
    /// by `extractocol --lints`). Unlike timings, these ARE deterministic
    /// across worker counts — they just aren't part of the protocol
    /// signature, so they live here rather than in the canonical report.
    pub lints: LintReport,
    /// Points-to solver statistics, when `Options::pointsto` ran.
    pub pts: Option<PtsStats>,
    /// Conformance-oracle result, when a driver (e.g. `extractocol-eval
    /// --conformance`) cross-checked this report against a dynamic trace.
    /// Deterministic given the same trace, but observational: it describes
    /// a validation run, not the protocol signature itself.
    pub conformance: Option<crate::conformance::ConformanceReport>,
    /// Persistent summary-cache counters, when `Options::summary_cache_path`
    /// was set. Deterministic: acceptance is a pure function of archive +
    /// program, and reuse counts are derived from the sorted final export.
    pub incr: Option<extractocol_incr::IncrStats>,
    /// Cone sizes and skip counts, when `Options::targeted` ran.
    pub targeted: Option<extractocol_incr::TargetedStats>,
}

impl Metrics {
    /// Exports this run's instrumentation into a fresh [`Registry`] for
    /// exposition-format rendering. The existing public fields stay the
    /// plain-struct views; the registry is the rendering/aggregation
    /// layer on top.
    ///
    /// Volatility split: per-DP slice sizes, points-to statistics, lint
    /// counts, and conformance diagnostic counts are
    /// [`Volatility::Deterministic`] (byte-identical across `--jobs`
    /// counts — pinned by the jobs-invariance tests). Phase timings, the
    /// worker count, and the summary-cache counters are
    /// [`Volatility::PerRun`]: cache hit/miss totals depend on which
    /// worker reaches a method first, so they are honest counters but not
    /// reproducible ones.
    pub fn export_registry(&self) -> Registry {
        let reg = Registry::new();
        reg.gauge("pipeline_jobs", &[], Volatility::PerRun, "resolved worker count")
            .set(self.jobs as f64);
        for (name, d) in self.phases.slots() {
            reg.gauge(
                "pipeline_phase_seconds",
                &[("phase", name)],
                Volatility::PerRun,
                "wall-clock time per pipeline phase",
            )
            .set(d.as_secs_f64());
        }
        reg.counter(
            "summary_cache_lookups_total",
            &[("outcome", "hit")],
            Volatility::PerRun,
            "method-summary cache lookups",
        )
        .add(self.cache.hits);
        reg.counter(
            "summary_cache_lookups_total",
            &[("outcome", "miss")],
            Volatility::PerRun,
            "method-summary cache lookups",
        )
        .add(self.cache.misses);

        reg.counter(
            "pipeline_dp_sites_total",
            &[],
            Volatility::Deterministic,
            "demarcation points analyzed",
        )
        .add(self.per_dp.len() as u64);
        let dp_hist = reg.histogram(
            "pipeline_dp_slice_stmts",
            &[],
            Volatility::Deterministic,
            "statements per DP slice (request + response)",
            extractocol_obs::metrics::COUNT_BUCKETS,
        );
        let (mut req_total, mut resp_total) = (0u64, 0u64);
        for dp in &self.per_dp {
            dp_hist.observe(dp.total_stmts() as f64);
            req_total += dp.request_stmts as u64;
            resp_total += dp.response_stmts as u64;
        }
        reg.counter(
            "pipeline_slice_stmts_total",
            &[("direction", "request")],
            Volatility::Deterministic,
            "sliced statements by direction",
        )
        .add(req_total);
        reg.counter(
            "pipeline_slice_stmts_total",
            &[("direction", "response")],
            Volatility::Deterministic,
            "sliced statements by direction",
        )
        .add(resp_total);

        reg.counter(
            "analysis_lints_total",
            &[],
            Volatility::Deterministic,
            "precision lints from the diagnostics pass",
        )
        .add(self.lints.lints.len() as u64);
        if let Some(pts) = &self.pts {
            reg.counter(
                "pointsto_allocation_sites_total",
                &[],
                Volatility::Deterministic,
                "allocation sites discovered by the points-to solver",
            )
            .add(pts.allocs as u64);
            reg.counter(
                "pointsto_nonempty_locals_total",
                &[],
                Volatility::Deterministic,
                "locals with a non-empty points-to set",
            )
            .add(pts.nonempty_locals as u64);
            reg.counter(
                "pointsto_field_cells_total",
                &[],
                Volatility::Deterministic,
                "field cells with a non-empty points-to set",
            )
            .add(pts.field_cells as u64);
            reg.counter(
                "pointsto_propagations_total",
                &[],
                Volatility::Deterministic,
                "worklist items the solver processed to fixpoint",
            )
            .add(pts.propagations as u64);
        }
        if let Some(conf) = &self.conformance {
            reg.counter(
                "conformance_diags_total",
                &[],
                Volatility::Deterministic,
                "conformance-oracle diagnostics",
            )
            .add(conf.diags.len() as u64);
        }
        if let Some(incr) = &self.incr {
            let events: [(&str, u64); 6] = [
                ("preloaded", incr.preloaded as u64),
                ("valid", incr.valid as u64),
                ("invalidated", incr.invalidated as u64),
                ("reused", incr.reused_summaries as u64),
                ("recomputed", incr.recomputed_summaries as u64),
                ("saved", incr.saved as u64),
            ];
            for (event, n) in events {
                reg.counter(
                    "incr_summaries_total",
                    &[("event", event)],
                    Volatility::Deterministic,
                    "persistent summary-cache events",
                )
                .add(n);
            }
            reg.gauge(
                "incr_persistent_hit_rate",
                &[],
                Volatility::Deterministic,
                "fraction of this run's summaries answered by the persistent cache",
            )
            .set(incr.hit_rate());
            reg.counter(
                "incr_recomputed_methods_total",
                &[],
                Volatility::Deterministic,
                "distinct root methods whose summaries were recomputed",
            )
            .add(incr.recomputed_methods as u64);
        }
        if let Some(tg) = &self.targeted {
            reg.counter(
                "incr_targeted_cone_methods_total",
                &[],
                Volatility::Deterministic,
                "methods inside the union of all DP cones",
            )
            .add(tg.cone_methods as u64);
            reg.counter(
                "incr_targeted_skipped_classes_total",
                &[],
                Volatility::Deterministic,
                "classes never visited by taint, points-to, or slicing",
            )
            .add(tg.skipped_classes as u64);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_total_sums_components() {
        let t = PhaseTimings {
            slicing: Duration::from_millis(30),
            signatures: Duration::from_millis(12),
            ..PhaseTimings::default()
        };
        assert_eq!(t.total(), Duration::from_millis(42));
    }

    /// `total()` must cover *every* slot — the conformance and serving
    /// phases used to be missing, under-reporting end-to-end runs.
    #[test]
    fn phase_total_includes_conformance_and_serve_slots() {
        let t = PhaseTimings {
            slicing: Duration::from_millis(10),
            conformance: Duration::from_millis(7),
            serve_compile: Duration::from_millis(5),
            serve_classify: Duration::from_millis(3),
            ..PhaseTimings::default()
        };
        assert_eq!(t.total(), Duration::from_millis(25));
        // And `slots()` is exhaustive: summing it agrees with total() on
        // a fully populated struct.
        let full = PhaseTimings {
            deobfuscation: Duration::from_millis(1),
            indexing: Duration::from_millis(2),
            demarcation: Duration::from_millis(3),
            targeted: Duration::from_millis(4),
            incremental: Duration::from_millis(5),
            slicing: Duration::from_millis(6),
            pairing: Duration::from_millis(7),
            signatures: Duration::from_millis(8),
            dependencies: Duration::from_millis(9),
            conformance: Duration::from_millis(10),
            serve_compile: Duration::from_millis(11),
            serve_classify: Duration::from_millis(12),
        };
        assert_eq!(full.total(), Duration::from_millis(78));
        assert_eq!(full.slots().len(), 12);
        let text = full.to_text();
        assert!(text.contains("conformance"), "{text}");
        assert!(text.contains("targeted"), "{text}");
        assert!(text.contains("incremental"), "{text}");
        assert!(text.contains("total"), "{text}");
    }

    #[test]
    fn registry_export_splits_deterministic_from_per_run() {
        let m = Metrics {
            jobs: 4,
            phases: PhaseTimings { slicing: Duration::from_millis(12), ..PhaseTimings::default() },
            cache: CacheStats { hits: 10, misses: 3 },
            per_dp: vec![
                DpSliceMetrics { dp_id: 0, request_stmts: 8, response_stmts: 4 },
                DpSliceMetrics { dp_id: 1, request_stmts: 2, response_stmts: 0 },
            ],
            incr: Some(extractocol_incr::IncrStats {
                preloaded: 9,
                valid: 8,
                invalidated: 1,
                reused_summaries: 8,
                recomputed_summaries: 2,
                recomputed_methods: 1,
                total_methods: 20,
                saved: 10,
                ..extractocol_incr::IncrStats::default()
            }),
            targeted: Some(extractocol_incr::TargetedStats {
                cone_methods: 5,
                total_methods: 20,
                skipped_classes: 3,
                total_classes: 6,
            }),
            ..Metrics::default()
        };
        let reg = m.export_registry();
        let full = reg.render();
        assert!(full.contains("pipeline_phase_seconds{phase=\"slicing\"}"), "{full}");
        assert!(full.contains("summary_cache_lookups_total{outcome=\"hit\"} 10"), "{full}");
        assert!(full.contains("pipeline_dp_sites_total 2"), "{full}");
        assert!(full.contains("pipeline_slice_stmts_total{direction=\"request\"} 10"), "{full}");
        let det = reg.render_deterministic();
        assert!(det.contains("pipeline_dp_sites_total 2"), "{det}");
        assert!(det.contains("pipeline_dp_slice_stmts_bucket"), "{det}");
        assert!(!det.contains("pipeline_phase_seconds"), "timings are per-run: {det}");
        assert!(!det.contains("summary_cache"), "cache counters race across workers: {det}");
        // The persistent-cache and targeted counters are deterministic by
        // construction, so they must survive the deterministic render.
        assert!(det.contains("incr_summaries_total{event=\"reused\"} 8"), "{det}");
        assert!(det.contains("incr_summaries_total{event=\"recomputed\"} 2"), "{det}");
        assert!(det.contains("incr_persistent_hit_rate 0.8"), "{det}");
        assert!(det.contains("incr_targeted_skipped_classes_total 3"), "{det}");
        assert!(det.contains("incr_targeted_cone_methods_total 5"), "{det}");
    }

    #[test]
    fn dp_totals() {
        let d = DpSliceMetrics { dp_id: 0, request_stmts: 10, response_stmts: 5 };
        assert_eq!(d.total_stmts(), 15);
    }
}
