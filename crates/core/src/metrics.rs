//! Analysis instrumentation: per-phase wall time, per-DP slice sizes, and
//! method-summary-cache counters. Everything here is *observational* —
//! excluded from the canonical report serialization (`to_table` /
//! `to_json`), because timings and cache counters vary run-to-run and
//! across worker counts while the analysis result itself must not.

pub use extractocol_analysis::CacheStats;
pub use extractocol_analysis::{LintReport, PtsStats};
use std::time::Duration;

/// Wall-clock time of each pipeline phase (Fig. 2's boxes).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// §3.4 library de-obfuscation.
    pub deobfuscation: Duration,
    /// Program indexing + call-graph construction.
    pub indexing: Duration,
    /// Demarcation-point scan.
    pub demarcation: Duration,
    /// Bidirectional slicing across all DPs (wall time, not CPU time —
    /// under `jobs > 1` many DPs overlap inside this window).
    pub slicing: Duration,
    /// Request/response pairing via disjoint sub-slices.
    pub pairing: Duration,
    /// Per-transaction signature extraction.
    pub signatures: Duration,
    /// Inter-transaction dependency analysis.
    pub dependencies: Duration,
}

impl PhaseTimings {
    /// Sum of all phase times.
    pub fn total(&self) -> Duration {
        self.deobfuscation
            + self.indexing
            + self.demarcation
            + self.slicing
            + self.pairing
            + self.signatures
            + self.dependencies
    }
}

/// Slice sizes of one demarcation point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DpSliceMetrics {
    /// The DP site id.
    pub dp_id: usize,
    /// Statements in the backward (request) slice.
    pub request_stmts: usize,
    /// Statements in the forward (response) slice.
    pub response_stmts: usize,
}

impl DpSliceMetrics {
    /// Total statements across both slices (with overlap counted twice —
    /// a per-DP effort proxy, not a coverage figure).
    pub fn total_stmts(&self) -> usize {
        self.request_stmts + self.response_stmts
    }
}

/// All instrumentation of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Worker threads the run actually used (after resolving `jobs = 0`).
    pub jobs: usize,
    /// Per-phase wall times.
    pub phases: PhaseTimings,
    /// Method-summary cache counters from the slicing phase.
    pub cache: CacheStats,
    /// Per-DP slice sizes, ordered by DP id.
    pub per_dp: Vec<DpSliceMetrics>,
    /// Precision lints from the diagnostics pass (stable order; rendered
    /// by `extractocol --lints`). Unlike timings, these ARE deterministic
    /// across worker counts — they just aren't part of the protocol
    /// signature, so they live here rather than in the canonical report.
    pub lints: LintReport,
    /// Points-to solver statistics, when `Options::pointsto` ran.
    pub pts: Option<PtsStats>,
    /// Conformance-oracle result, when a driver (e.g. `extractocol-eval
    /// --conformance`) cross-checked this report against a dynamic trace.
    /// Deterministic given the same trace, but observational: it describes
    /// a validation run, not the protocol signature itself.
    pub conformance: Option<crate::conformance::ConformanceReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_total_sums_components() {
        let t = PhaseTimings {
            slicing: Duration::from_millis(30),
            signatures: Duration::from_millis(12),
            ..PhaseTimings::default()
        };
        assert_eq!(t.total(), Duration::from_millis(42));
    }

    #[test]
    fn dp_totals() {
        let d = DpSliceMetrics { dp_id: 0, request_stmts: 10, response_stmts: 5 };
        assert_eq!(d.total_stmts(), 15);
    }
}
