//! The `extractocol` command-line tool: analyze an app serialized in the
//! Jimple-flavoured text format (see `extractocol-ir::parser`) and print
//! its reconstructed protocol behavior.
//!
//! ```bash
//! extractocol app.jimple                 # full report
//! extractocol app.jimple --json         # machine-readable export
//! extractocol app.jimple --regex        # one compiled regex per line
//! extractocol app.jimple --scope com.x  # restrict DPs to a package (§5.3)
//! extractocol app.jimple --no-async     # disable the §3.4 heuristic
//! extractocol app.jimple --hops 3       # multi-hop async chains (§4)
//! extractocol app.jimple --jobs 8       # worker threads (0 = one per core)
//! extractocol app.jimple --lints        # precision diagnostics, then report
//! extractocol app.jimple --no-pointsto  # pure-CHA call graph (no SPARK layer)
//! ```

use extractocol_core::slicing::SliceOptions;
use extractocol_core::{Extractocol, Options};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: extractocol <app.jimple> [--regex] [--scope <prefix>] \
         [--json] [--no-async] [--no-augment] [--hops <n>] [--depth <n>] \
         [--jobs <n>] [--lints] [--no-pointsto]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut regex_only = false;
    let mut json_out = false;
    let mut show_lints = false;
    let mut opts = Options::default();
    let mut slice = SliceOptions::default();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--regex" => regex_only = true,
            "--json" => json_out = true,
            "--lints" => show_lints = true,
            "--no-pointsto" => opts.pointsto = false,
            "--pointsto" => opts.pointsto = true,
            "--no-async" => slice.async_heuristic = false,
            "--no-augment" => slice.augmentation = false,
            "--scope" => match it.next() {
                Some(p) => opts.scope_prefix = Some(p),
                None => return usage(),
            },
            "--hops" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => slice.async_hops = n,
                None => return usage(),
            },
            "--depth" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => slice.max_field_depth = n,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.jobs = n,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    opts.slice = slice;

    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("extractocol: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let apk = match extractocol_ir::parser::parse_apk(&src) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("extractocol: {path}: parse error at {e}");
            return ExitCode::FAILURE;
        }
    };
    let errs = extractocol_ir::validate::validate_apk(&apk);
    if !errs.is_empty() {
        for e in errs.iter().take(5) {
            eprintln!("extractocol: {path}: invalid IR: {e}");
        }
        return ExitCode::FAILURE;
    }

    let report = Extractocol::with_options(opts).analyze(&apk);
    if show_lints {
        print!("{}", report.metrics.lints.to_text());
        if report.metrics.lints.lints.is_empty() {
            println!("no lints");
        }
    }
    if json_out {
        println!("{}", report.to_json().to_json());
    } else if regex_only {
        for t in &report.transactions {
            println!("{} {}", t.method, t.uri_regex);
        }
    } else {
        print!("{}", report.to_table());
        println!(
            "\n{} demarcation sites; slices cover {:.1}% of {} statements; {:?}",
            report.stats.dp_sites,
            100.0 * report.stats.slice_fraction(),
            report.stats.total_stmts,
            report.stats.duration
        );
        let m = &report.metrics;
        println!(
            "{} worker(s); summary cache {}/{} hits ({:.1}%)",
            m.jobs,
            m.cache.hits,
            m.cache.lookups(),
            100.0 * m.cache.hit_rate()
        );
    }
    ExitCode::SUCCESS
}
