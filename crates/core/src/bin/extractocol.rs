//! The `extractocol` command-line tool: analyze an app serialized in the
//! Jimple-flavoured text format (see `extractocol-ir::parser`) and print
//! its reconstructed protocol behavior.
//!
//! ```bash
//! extractocol app.jimple                 # full report
//! extractocol app.jimple --json         # machine-readable export
//! extractocol app.jimple --regex        # one compiled regex per line
//! extractocol app.jimple --scope com.x  # restrict DPs to a package (§5.3)
//! extractocol app.jimple --no-async     # disable the §3.4 heuristic
//! extractocol app.jimple --hops 3       # multi-hop async chains (§4)
//! extractocol app.jimple --jobs 8       # worker threads (0 = one per core)
//! extractocol app.jimple --lints        # precision diagnostics, then report
//! extractocol app.jimple --no-pointsto  # pure-CHA call graph (no SPARK layer)
//! extractocol app.jimple --trace-out trace.json   # Chrome-trace span tree
//! extractocol app.jimple --trace-summary          # top spans by self-time
//! extractocol app.jimple --flame-out stacks.txt   # collapsed flamegraph stacks
//! extractocol app.jimple --metrics-out metrics.txt  # exposition-format metrics
//! extractocol app.jimple --log-out events.log       # structured event log
//! extractocol app.jimple --log-out events.log --log-level debug  # + phases
//! extractocol app.jimple --targeted     # demand-driven cone analysis
//! extractocol app.jimple --summary-cache-path app.exsm  # persistent summaries
//! extractocol app.jimple --no-incremental  # ignore the summary cache
//! ```

use extractocol_core::slicing::SliceOptions;
use extractocol_core::{EventLog, Extractocol, Level, Options, SinkFormat, TraceCollector};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: extractocol <app.jimple> [--regex] [--scope <prefix>] \
         [--json] [--no-async] [--no-augment] [--hops <n>] [--depth <n>] \
         [--jobs <n>] [--lints] [--no-pointsto] [--targeted] \
         [--summary-cache-path <file>] [--no-incremental] \
         [--trace-out <file>] [--trace-summary] [--flame-out <file>] \
         [--metrics-out <file>] [--log-out <file>] [--log-level <level>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut regex_only = false;
    let mut json_out = false;
    let mut show_lints = false;
    let mut trace_out: Option<String> = None;
    let mut flame_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut log_out: Option<String> = None;
    let mut log_level = Level::Info;
    let mut trace_summary = false;
    let mut opts = Options::default();
    let mut slice = SliceOptions::default();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--regex" => regex_only = true,
            "--json" => json_out = true,
            "--lints" => show_lints = true,
            "--trace-summary" => trace_summary = true,
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => return usage(),
            },
            "--flame-out" => match it.next() {
                Some(p) => flame_out = Some(p),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            "--log-out" => match it.next() {
                Some(p) => log_out = Some(p),
                None => return usage(),
            },
            "--log-level" => match it.next().and_then(|l| Level::parse(&l)) {
                Some(l) => log_level = l,
                None => return usage(),
            },
            "--no-pointsto" => opts.pointsto = false,
            "--pointsto" => opts.pointsto = true,
            "--targeted" => opts.targeted = true,
            "--no-incremental" => opts.incremental = false,
            "--summary-cache-path" => match it.next() {
                Some(p) => opts.summary_cache_path = Some(p.into()),
                None => return usage(),
            },
            "--no-async" => slice.async_heuristic = false,
            "--no-augment" => slice.augmentation = false,
            "--scope" => match it.next() {
                Some(p) => opts.scope_prefix = Some(p),
                None => return usage(),
            },
            "--hops" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => slice.async_hops = n,
                None => return usage(),
            },
            "--depth" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => slice.max_field_depth = n,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.jobs = n,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    opts.slice = slice;

    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("extractocol: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let apk = match extractocol_ir::parser::parse_apk(&src) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("extractocol: {path}: parse error at {e}");
            return ExitCode::FAILURE;
        }
    };
    let errs = extractocol_ir::validate::validate_apk(&apk);
    if !errs.is_empty() {
        for e in errs.iter().take(5) {
            eprintln!("extractocol: {path}: invalid IR: {e}");
        }
        return ExitCode::FAILURE;
    }

    // Tracing is off-by-default: the disabled collector costs one branch
    // per span site, so the plain path stays within the perf gates.
    let trace = if trace_out.is_some() || flame_out.is_some() || trace_summary {
        TraceCollector::enabled()
    } else {
        TraceCollector::disabled()
    };
    let mut analyzer = Extractocol::with_options(opts);
    let events = if let Some(out) = &log_out {
        let events = EventLog::enabled(log_level);
        match std::fs::File::create(out) {
            Ok(file) => events.set_sink(Box::new(file), SinkFormat::Text),
            Err(e) => {
                eprintln!("extractocol: cannot create {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
        events
    } else {
        EventLog::disabled()
    };
    analyzer.set_event_log(events);
    let report = analyzer.analyze_traced(&apk, &trace);
    let spans = trace.drain();
    if let Some(out) = &trace_out {
        let json = extractocol_obs::chrome_trace_json(&spans);
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("extractocol: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(out) = &flame_out {
        if let Err(e) = std::fs::write(out, extractocol_obs::collapsed_stacks(&spans)) {
            eprintln!("extractocol: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if trace_summary {
        // Enough rows that every pipeline phase stays visible for a
        // single-app run; dp/txn spans beyond that are still in the
        // chrome-trace artifact.
        print!("{}", extractocol_obs::summary_table(&spans, 32));
        if trace.dropped() > 0 {
            println!("({} span(s) dropped at the collector capacity)", trace.dropped());
        }
    }
    if let Some(out) = &metrics_out {
        let text = report.metrics.export_registry().render();
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("extractocol: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if show_lints {
        print!("{}", report.metrics.lints.to_text());
        if report.metrics.lints.lints.is_empty() {
            println!("no lints");
        }
    }
    if json_out {
        println!("{}", report.to_json().to_json());
    } else if regex_only {
        for t in &report.transactions {
            println!("{} {}", t.method, t.uri_regex);
        }
    } else {
        print!("{}", report.to_table());
        println!(
            "\n{} demarcation sites; slices cover {:.1}% of {} statements; {:?}",
            report.stats.dp_sites,
            100.0 * report.stats.slice_fraction(),
            report.stats.total_stmts,
            report.stats.duration
        );
        let m = &report.metrics;
        println!(
            "{} worker(s); summary cache {}/{} hits ({:.1}%)",
            m.jobs,
            m.cache.hits,
            m.cache.lookups(),
            100.0 * m.cache.hit_rate()
        );
        if let Some(tg) = &m.targeted {
            println!(
                "targeted: cone {}/{} methods; skipped {}/{} classes",
                tg.cone_methods, tg.total_methods, tg.skipped_classes, tg.total_classes
            );
        }
        if let Some(incr) = &m.incr {
            println!("incremental: {}", incr.to_line());
            if let Some(e) = &incr.load_error {
                println!("incremental: cache load failed ({e}); ran cold");
            }
            if let Some(e) = &incr.save_error {
                println!("incremental: cache save failed ({e})");
            }
        }
    }
    ExitCode::SUCCESS
}
