//! # extractocol-core
//!
//! The Extractocol pipeline (Kim, Choi, et al., CoNEXT '16): given an
//! Android application package as IR, reconstruct its HTTP(S) protocol
//! behavior — message signatures, request/response pairs, and
//! inter-transaction dependencies — using static analysis only.
//!
//! The three phases of the paper's design (Fig. 2) map onto modules:
//!
//! 1. **Network-aware program slicing** — [`demarcation`] finds the
//!    demarcation points, [`slicing`] runs bidirectional taint propagation
//!    (with object-aware augmentation and the asynchronous-event
//!    heuristic) to produce request/response slices.
//! 2. **Signature extraction** — [`sigbuild`] abstract-interprets each
//!    slice over the [`semantics`] API model, maintaining signatures in the
//!    intermediate language of [`siglang`], and compiles them to regexes
//!    and JSON/XML tree signatures.
//! 3. **Message dependency analysis** — [`pairing`] reconstructs HTTP
//!    transactions (request ↔ response, via disjoint sub-slices), and
//!    [`interdep`] infers fine-grained inter-transaction dependencies
//!    (response fields feeding later requests, including through SQLite
//!    and resources).
//!
//! [`deobf`] handles obfuscated bundled libraries (§3.4); [`pipeline`]
//! orchestrates everything behind [`pipeline::Extractocol`]; [`report`]
//! holds the output model.

pub mod conformance;
pub mod demarcation;
pub mod deobf;
pub mod flowmodel;
pub mod interdep;
pub mod metrics;
pub mod pairing;
pub mod par;
pub mod pipeline;
pub mod report;
pub mod semantics;
pub mod sigbuild;
pub mod siglang;
pub mod slicing;
pub mod stubs;

pub use extractocol_obs::{EventLog, Level, SinkFormat, TraceCollector};
pub use metrics::{CacheStats, DpSliceMetrics, Metrics, PhaseTimings};
pub use pipeline::{Extractocol, Options};
pub use report::AnalysisReport;
pub use semantics::{ApiOp, SemanticModel};
pub use siglang::{JsonSig, SigPat, TypeHint, XmlSig};
