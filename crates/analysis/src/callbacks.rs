//! Models of Android's implicit control flow.
//!
//! "Network programming in Android often involves using thread libraries
//! such as AsyncTask, which introduce implicit call flows. However,
//! existing static taint analysis tools often do not cover them." (§3.4).
//! The paper adds support for the implicit callbacks of the thread and
//! HTTP libraries it models: `AsyncTask`, Volley, retrofit, `FutureTask`,
//! rx.android, BeeFramework, and the common UI/location listeners.
//!
//! A [`CallbackRegistry`] holds declarative rules: *when a call to
//! `trigger_class.trigger_method` is seen, the runtime will eventually
//! invoke `target_method` on one of the call's operands, passing it data
//! derived from other operands*. The call-graph builder materializes these
//! into [`ImplicitEdge`]s with concrete [`MethodId`] targets, and the taint
//! engine propagates facts across them exactly like explicit calls.

use extractocol_ir::{Call, MethodId, ProgramIndex, Type};

/// Which operand of the triggering call an implicit binding refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperandSource {
    /// The receiver of the triggering call.
    Receiver,
    /// The i-th argument of the triggering call.
    Arg(usize),
}

/// A materialized implicit call edge at a specific call site.
#[derive(Clone, Debug, PartialEq)]
pub struct ImplicitEdge {
    /// The concrete callback method that will run.
    pub target: MethodId,
    /// What the callback's `this` is bound to.
    pub recv_from: Option<OperandSource>,
    /// For each callback parameter: the triggering-call operand whose value
    /// flows into it, if any (parameters fed by the framework — e.g. a
    /// network response — have `None` and are seeded by demarcation-point
    /// handling instead).
    pub param_from: Vec<Option<OperandSource>>,
    /// When set, the callback's return value flows into parameter `.1` of
    /// the named follow-up callback on the same receiver (e.g.
    /// `AsyncTask.doInBackground`'s result becomes `onPostExecute`'s
    /// argument).
    pub chains_to: Option<(MethodId, u32)>,
}

/// A declarative callback rule.
#[derive(Clone, Debug)]
pub struct CallbackRule {
    /// The class (or supertype) whose method triggers the callback.
    pub trigger_class: String,
    /// The triggering method name.
    pub trigger_method: String,
    /// The operand carrying the callback object.
    pub target_on: OperandSource,
    /// The callback method name looked up on the callback object's type
    /// cone.
    pub target_method: String,
    /// Expected callback arity (`None` = any).
    pub target_arity: Option<usize>,
    /// Data flow into callback parameters, by parameter index.
    pub param_from: Vec<Option<OperandSource>>,
    /// Follow-up callback on the same object receiving the return value:
    /// `(method name, parameter index)`.
    pub chain: Option<(String, u32)>,
}

/// The registry of callback rules in effect for an analysis run.
#[derive(Clone, Debug, Default)]
pub struct CallbackRegistry {
    rules: Vec<CallbackRule>,
}

impl CallbackRegistry {
    /// An empty registry (no implicit flow modelling) — the configuration
    /// FlowDroid-without-EDGEMINER effectively has, used by ablations.
    pub fn empty() -> CallbackRegistry {
        CallbackRegistry::default()
    }

    /// The default registry: the implicit callbacks "commonly observed in
    /// network operation and HTTP libraries" that the paper supports
    /// (§3.4, §4): `AsyncTask`, Volley, retrofit, `Thread`/`Runnable`,
    /// `Handler`, `Timer`, `FutureTask`, rx.android, BeeFramework, and the
    /// click/location listeners its case studies rely on.
    pub fn android_defaults() -> CallbackRegistry {
        let mut r = CallbackRegistry::default();
        // AsyncTask.execute(params) → doInBackground(params) → onPostExecute(result)
        r.add(CallbackRule {
            trigger_class: "android.os.AsyncTask".into(),
            trigger_method: "execute".into(),
            target_on: OperandSource::Receiver,
            target_method: "doInBackground".into(),
            target_arity: None,
            param_from: vec![Some(OperandSource::Arg(0))],
            chain: Some(("onPostExecute".into(), 0)),
        });
        // Thread constructed over a Runnable: new Thread(r) … start() → r.run()
        r.add(CallbackRule {
            trigger_class: "java.lang.Thread".into(),
            trigger_method: "<init>".into(),
            target_on: OperandSource::Arg(0),
            target_method: "run".into(),
            target_arity: Some(0),
            param_from: vec![],
            chain: None,
        });
        // Subclassed Thread: t.start() → t.run()
        r.add(CallbackRule {
            trigger_class: "java.lang.Thread".into(),
            trigger_method: "start".into(),
            target_on: OperandSource::Receiver,
            target_method: "run".into(),
            target_arity: Some(0),
            param_from: vec![],
            chain: None,
        });
        // Handler.post/postDelayed(r) → r.run()
        for m in ["post", "postDelayed"] {
            r.add(CallbackRule {
                trigger_class: "android.os.Handler".into(),
                trigger_method: m.into(),
                target_on: OperandSource::Arg(0),
                target_method: "run".into(),
                target_arity: Some(0),
                param_from: vec![],
                chain: None,
            });
        }
        // Timer.schedule(task, …) → task.run() — the APK-update-by-timer
        // pattern UI fuzzing cannot trigger (§5.1).
        r.add(CallbackRule {
            trigger_class: "java.util.Timer".into(),
            trigger_method: "schedule".into(),
            target_on: OperandSource::Arg(0),
            target_method: "run".into(),
            target_arity: Some(0),
            param_from: vec![],
            chain: None,
        });
        // FutureTask.<init>(Callable) → call()
        r.add(CallbackRule {
            trigger_class: "java.util.concurrent.FutureTask".into(),
            trigger_method: "<init>".into(),
            target_on: OperandSource::Arg(0),
            target_method: "call".into(),
            target_arity: Some(0),
            param_from: vec![],
            chain: None,
        });
        // ExecutorService.submit/execute(r) → r.run()
        for m in ["submit", "execute"] {
            r.add(CallbackRule {
                trigger_class: "java.util.concurrent.ExecutorService".into(),
                trigger_method: m.into(),
                target_on: OperandSource::Arg(0),
                target_method: "run".into(),
                target_arity: Some(0),
                param_from: vec![],
                chain: None,
            });
        }
        // Volley: RequestQueue.add(request) → request.parseNetworkResponse
        // and request.deliverResponse (framework feeds the parameters).
        for (m, arity) in [("parseNetworkResponse", 1), ("deliverResponse", 1)] {
            r.add(CallbackRule {
                trigger_class: "com.android.volley.RequestQueue".into(),
                trigger_method: "add".into(),
                target_on: OperandSource::Arg(0),
                target_method: m.into(),
                target_arity: Some(arity),
                param_from: vec![None],
                chain: None,
            });
        }
        // Volley listener interface: Response.Listener.onResponse is
        // reached from deliverResponse in app code; nothing implicit needed
        // beyond the above when apps subclass Request.
        // retrofit2 / okhttp3: Call.enqueue(cb) → cb.onResponse(call, resp)
        for cls in ["retrofit2.Call", "okhttp3.Call"] {
            r.add(CallbackRule {
                trigger_class: cls.into(),
                trigger_method: "enqueue".into(),
                target_on: OperandSource::Arg(0),
                target_method: "onResponse".into(),
                target_arity: None,
                param_from: vec![Some(OperandSource::Receiver), None],
                chain: None,
            });
        }
        // loopj android-async-http: client.get/post(url, …, handler)
        //   → handler.onSuccess(body)
        for (m, handler_arg) in [("get", 1), ("post", 2), ("get", 2), ("post", 3)] {
            r.add(CallbackRule {
                trigger_class: "com.loopj.android.http.AsyncHttpClient".into(),
                trigger_method: m.into(),
                target_on: OperandSource::Arg(handler_arg),
                target_method: "onSuccess".into(),
                target_arity: Some(1),
                param_from: vec![None],
                chain: None,
            });
        }
        // rx.android: Observable.subscribe(observer) → observer.onNext(item)
        r.add(CallbackRule {
            trigger_class: "rx.Observable".into(),
            trigger_method: "subscribe".into(),
            target_on: OperandSource::Arg(0),
            target_method: "onNext".into(),
            target_arity: Some(1),
            param_from: vec![None],
            chain: None,
        });
        // BeeFramework model: Bee.get(url, cb) / Bee.post(url, body, cb)
        //   → cb.onReceive(data)
        for (m, cb_arg) in [("get", 1), ("post", 2)] {
            r.add(CallbackRule {
                trigger_class: "com.beeframework.Bee".into(),
                trigger_method: m.into(),
                target_on: OperandSource::Arg(cb_arg),
                target_method: "onReceive".into(),
                target_arity: Some(1),
                param_from: vec![None],
                chain: None,
            });
        }
        // UI: View.setOnClickListener(l) → l.onClick(view)
        r.add(CallbackRule {
            trigger_class: "android.view.View".into(),
            trigger_method: "setOnClickListener".into(),
            target_on: OperandSource::Arg(0),
            target_method: "onClick".into(),
            target_arity: Some(1),
            param_from: vec![Some(OperandSource::Receiver)],
            chain: None,
        });
        // Location: requestLocationUpdates(provider, t, d, listener)
        //   → listener.onLocationChanged(location) — the weather-app
        // asynchronous-event example of §3.4.
        r.add(CallbackRule {
            trigger_class: "android.location.LocationManager".into(),
            trigger_method: "requestLocationUpdates".into(),
            target_on: OperandSource::Arg(3),
            target_method: "onLocationChanged".into(),
            target_arity: Some(1),
            param_from: vec![None],
            chain: None,
        });
        r
    }

    /// Adds a rule; the "easy plugin for adding new API semantics" the
    /// paper mentions extends both this and the semantic model.
    pub fn add(&mut self, rule: CallbackRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Materializes the implicit edges for a call site.
    pub fn implicit_edges(&self, prog: &ProgramIndex<'_>, call: &Call) -> Vec<ImplicitEdge> {
        let mut out = Vec::new();
        for rule in &self.rules {
            if call.callee.name != rule.trigger_method {
                continue;
            }
            if !prog.is_subtype(&call.callee.class, &rule.trigger_class)
                && call.callee.class != rule.trigger_class
            {
                continue;
            }
            // Determine the static type of the callback-carrying operand.
            let carrier_ty: Option<&Type> = match rule.target_on {
                OperandSource::Receiver => None, // use callee.class below
                OperandSource::Arg(i) => call.callee.params.get(i),
            };
            let carrier_class: Option<String> = match (rule.target_on, carrier_ty) {
                (OperandSource::Receiver, _) => Some(call.callee.class.clone()),
                (OperandSource::Arg(_), Some(Type::Object(n))) => Some(n.clone()),
                _ => None,
            };
            let Some(carrier_class) = carrier_class else { continue };
            // Concrete targets: the carrier class and every subtype that
            // declares the callback with a body.
            let mut candidates: Vec<MethodId> = Vec::new();
            let mut classes: Vec<String> = vec![carrier_class.clone()];
            classes.extend(
                prog.all_subtypes(&carrier_class).into_iter().map(|id| prog.class(id).name.clone()),
            );
            for cn in classes {
                if let Some(cid) = prog.class_id(&cn) {
                    for (mi, m) in prog.class(cid).methods.iter().enumerate() {
                        if m.name == rule.target_method
                            && m.has_body
                            && rule.target_arity.map(|a| a == m.params.len()).unwrap_or(true)
                        {
                            candidates.push(MethodId { class: cid, method: mi as u32 });
                        }
                    }
                }
            }
            for target in candidates {
                let arity = prog.method(target).params.len();
                let mut param_from = rule.param_from.clone();
                param_from.resize(arity, None);
                // Resolve the chain target on the same class cone.
                let chains_to = rule.chain.as_ref().and_then(|(name, pidx)| {
                    let cls = &prog.class(target.class).name;
                    prog.resolve_method(cls, name, (*pidx as usize) + 1)
                        .filter(|mid| prog.method(*mid).has_body)
                        .map(|mid| (mid, *pidx))
                });
                out.push(ImplicitEdge {
                    target,
                    recv_from: Some(rule.target_on),
                    param_from,
                    chains_to,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::{ApkBuilder, Type, Value};

    fn asynctask_app() -> extractocol_ir::Apk {
        let mut b = ApkBuilder::new("t", "t");
        b.class("android.os.AsyncTask", |c| {
            c.stub_method("execute", vec![Type::obj_root()], Type::Void);
            c.stub_method("doInBackground", vec![Type::obj_root()], Type::obj_root());
            c.stub_method("onPostExecute", vec![Type::obj_root()], Type::Void);
        });
        b.class("t.Task", |c| {
            c.extends("android.os.AsyncTask");
            c.method("doInBackground", vec![Type::obj_root()], Type::obj_root(), |m| {
                m.recv("t.Task");
                let p = m.arg(0, "p");
                m.ret(p);
            });
            c.method("onPostExecute", vec![Type::obj_root()], Type::Void, |m| {
                m.recv("t.Task");
                m.arg(0, "r");
                m.ret_void();
            });
        });
        b.class("t.Main", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.Main");
                let task = m.new_obj("t.Task", vec![]);
                m.vcall_void(task, "t.Task", "execute", vec![Value::str("u")]);
                m.ret_void();
            });
        });
        b.build()
    }

    #[test]
    fn asynctask_execute_resolves_and_chains() {
        let apk = asynctask_app();
        let prog = ProgramIndex::new(&apk);
        let reg = CallbackRegistry::android_defaults();
        // find the execute call
        let main = prog.resolve_method("t.Main", "go", 0).unwrap();
        let call = prog
            .method(main)
            .body
            .iter()
            .find_map(|s| s.call().filter(|c| c.callee.name == "execute"))
            .unwrap();
        let edges = reg.implicit_edges(&prog, call);
        assert_eq!(edges.len(), 1);
        let e = &edges[0];
        assert_eq!(prog.method(e.target).name, "doInBackground");
        assert_eq!(e.recv_from, Some(OperandSource::Receiver));
        assert_eq!(e.param_from, vec![Some(OperandSource::Arg(0))]);
        let (chain, pidx) = e.chains_to.expect("chains to onPostExecute");
        assert_eq!(prog.method(chain).name, "onPostExecute");
        assert_eq!(pidx, 0);
    }

    #[test]
    fn unrelated_calls_get_no_edges() {
        let apk = asynctask_app();
        let prog = ProgramIndex::new(&apk);
        let reg = CallbackRegistry::android_defaults();
        let main = prog.resolve_method("t.Main", "go", 0).unwrap();
        // the <init> of t.Task is not a trigger
        let init = prog
            .method(main)
            .body
            .iter()
            .find_map(|s| s.call().filter(|c| c.callee.name == "<init>"))
            .unwrap();
        assert!(reg.implicit_edges(&prog, init).is_empty());
    }

    #[test]
    fn empty_registry_is_inert() {
        let apk = asynctask_app();
        let prog = ProgramIndex::new(&apk);
        let reg = CallbackRegistry::empty();
        assert!(reg.is_empty());
        let main = prog.resolve_method("t.Main", "go", 0).unwrap();
        let call = prog
            .method(main)
            .body
            .iter()
            .find_map(|s| s.call().filter(|c| c.callee.name == "execute"))
            .unwrap();
        assert!(reg.implicit_edges(&prog, call).is_empty());
    }
}
