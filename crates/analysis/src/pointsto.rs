//! Andersen-style points-to analysis (the role SPARK \[60\] plays under
//! Soot in the original system).
//!
//! The analysis is *flow-insensitive* (one constraint system for the whole
//! program), *field-sensitive* (each abstract object tracks its instance
//! fields separately), and uses *allocation-site abstraction*: every
//! `new C` / `newarray` statement is one abstract object. Call targets are
//! resolved *on the fly*: a virtual/interface site only binds
//! receiver/argument/return edges to the implementations of classes that
//! actually reach its receiver, so the solved points-to sets and the
//! devirtualized call graph are mutually consistent — exactly SPARK's
//! on-the-fly call-graph mode.
//!
//! Determinism: the solver is a worklist over dense integer node ids
//! assigned in program order; points-to sets are `BTreeSet`s and every
//! exported map is keyed by ordered ids. Two runs over the same program
//! produce identical results regardless of thread count or hash seeds,
//! preserving the byte-identical-report guarantee.

use extractocol_ir::{
    CallKind, Expr, IdentityKind, Local, MethodId, Place, ProgramIndex, Stmt, Value,
};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// An abstract object: one allocation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(pub u32);

/// Where (and what) an abstract object is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocSite {
    /// Method containing the `new`.
    pub method: MethodId,
    /// Statement index of the `new`.
    pub stmt: usize,
    /// Allocated class (array allocations use the `elem[]` spelling).
    pub class: String,
}

/// The pseudo-field under which array elements are merged (array
/// index-insensitivity, as in SPARK).
pub const ARRAY_FIELD: &str = "[]";

/// Solved points-to results.
#[derive(Debug, Default)]
pub struct PointsTo {
    allocs: Vec<AllocSite>,
    locals: HashMap<(MethodId, Local), BTreeSet<AllocId>>,
    fields: HashMap<(AllocId, String), BTreeSet<AllocId>>,
    statics: HashMap<String, BTreeSet<AllocId>>,
    propagations: usize,
}

/// Aggregate solver statistics for reports and ablations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PtsStats {
    /// Allocation sites discovered.
    pub allocs: usize,
    /// `(method, local)` variables with a non-empty points-to set.
    pub nonempty_locals: usize,
    /// Field cells `(alloc, field)` with a non-empty points-to set.
    pub field_cells: usize,
    /// Worklist items processed to fixpoint — the solver's work measure.
    /// The worklist order is deterministic, so this is too.
    pub propagations: usize,
}

impl PointsTo {
    /// Solves the whole-program constraint system.
    pub fn solve(prog: &ProgramIndex<'_>) -> PointsTo {
        Solver::new(prog, None).solve()
    }

    /// Solves the constraint system restricted to `scope` (the targeted
    /// mode's reachability cone): only scope methods contribute
    /// constraints or allocation sites. When the scope is closed under
    /// every inter-method coupling the solver traverses — calls in both
    /// directions, static fields, instance-field cells — the scoped
    /// solution equals the whole-program solution restricted to the
    /// scope's locals, which is what keeps targeted reports byte-identical.
    pub fn solve_scoped(
        prog: &ProgramIndex<'_>,
        scope: &std::collections::HashSet<MethodId>,
    ) -> PointsTo {
        Solver::new(prog, Some(scope)).solve()
    }

    /// The allocation site behind an id.
    pub fn alloc(&self, id: AllocId) -> &AllocSite {
        &self.allocs[id.0 as usize]
    }

    /// All allocation sites, indexed by [`AllocId`].
    pub fn allocs(&self) -> &[AllocSite] {
        &self.allocs
    }

    /// The points-to set of a local (empty when nothing reaches it).
    pub fn local_pts(&self, m: MethodId, l: Local) -> &BTreeSet<AllocId> {
        static EMPTY: BTreeSet<AllocId> = BTreeSet::new();
        self.locals.get(&(m, l)).unwrap_or(&EMPTY)
    }

    /// The points-to set of an instance-field cell.
    pub fn field_pts(&self, a: AllocId, field: &str) -> &BTreeSet<AllocId> {
        static EMPTY: BTreeSet<AllocId> = BTreeSet::new();
        self.fields.get(&(a, field.to_string())).unwrap_or(&EMPTY)
    }

    /// The points-to set of a static field (`class#name` key).
    pub fn static_pts(&self, key: &str) -> &BTreeSet<AllocId> {
        static EMPTY: BTreeSet<AllocId> = BTreeSet::new();
        self.statics.get(key).unwrap_or(&EMPTY)
    }

    /// The distinct classes a local may point to, in [`AllocId`] order.
    pub fn classes_of(&self, m: MethodId, l: Local) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for &a in self.local_pts(m, l) {
            let c = self.alloc(a).class.as_str();
            if seen.insert(c) {
                out.push(c);
            }
        }
        out
    }

    /// May-alias query between two locals. Conservative: a local with an
    /// *empty* set is unknown (a parameter from an unanalyzed context, a
    /// modeled API return) and may alias anything.
    pub fn may_alias(&self, a: (MethodId, Local), b: (MethodId, Local)) -> bool {
        let pa = self.local_pts(a.0, a.1);
        let pb = self.local_pts(b.0, b.1);
        if pa.is_empty() || pb.is_empty() {
            return true;
        }
        pa.intersection(pb).next().is_some()
    }

    /// Solver statistics.
    pub fn stats(&self) -> PtsStats {
        PtsStats {
            allocs: self.allocs.len(),
            nonempty_locals: self.locals.values().filter(|s| !s.is_empty()).count(),
            field_cells: self.fields.values().filter(|s| !s.is_empty()).count(),
            propagations: self.propagations,
        }
    }
}

/// A constraint-graph node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum NodeKey {
    /// A method-local pointer variable.
    Local(MethodId, Local),
    /// A static field (`class#name`).
    Static(String),
    /// The result of a statement whose value does not land in a plain
    /// local (e.g. `o.f = call()` or a `new` stored straight to a field).
    Site(MethodId, usize),
    /// One instance-field cell of one abstract object.
    Field(AllocId, String),
}

#[derive(Default)]
struct Node {
    pts: BTreeSet<AllocId>,
    /// Subset edges: everything here is a superset of this node.
    succ: Vec<usize>,
    /// Pending field loads `x = n.f`: `(field, destination node)`.
    loads: Vec<(String, usize)>,
    /// Pending field stores `n.f = x`: `(field, source node)`.
    stores: Vec<(String, usize)>,
    /// On-the-fly virtual sites dispatching on this node.
    sites: Vec<usize>,
}

/// A virtual/interface call site awaiting on-the-fly resolution.
struct FlySite {
    /// Declared (static) receiver class — dispatch filter.
    static_class: String,
    callee_name: String,
    arity: usize,
    /// Argument operand nodes (those that are pointer-typed locals).
    args: Vec<(usize, usize)>,
    /// Node receiving the return value, if the result is used.
    result: Option<usize>,
}

/// Per-method entry/exit info for call binding.
struct MInfo {
    this_local: Option<Local>,
    param_locals: Vec<Option<Local>>,
    ret_locals: Vec<Local>,
}

struct Solver<'a> {
    prog: &'a ProgramIndex<'a>,
    /// Analysis scope (`None` = whole program). Methods outside the scope
    /// contribute no constraints — they are invisible to the solver.
    scope: Option<&'a std::collections::HashSet<MethodId>>,
    minfo: HashMap<MethodId, MInfo>,
    ids: HashMap<NodeKey, usize>,
    nodes: Vec<Node>,
    allocs: Vec<AllocSite>,
    fly: Vec<FlySite>,
    /// `(fly-site, target)` pairs already bound.
    bound: HashSet<(usize, MethodId)>,
    /// `(node, alloc)` pairs still to be propagated.
    worklist: VecDeque<(usize, AllocId)>,
}

impl<'a> Solver<'a> {
    fn new(
        prog: &'a ProgramIndex<'a>,
        scope: Option<&'a std::collections::HashSet<MethodId>>,
    ) -> Solver<'a> {
        let mut minfo = HashMap::new();
        for mid in prog.concrete_methods() {
            if let Some(scope) = scope {
                if !scope.contains(&mid) {
                    continue;
                }
            }
            let method = prog.method(mid);
            let mut this_local = None;
            let mut param_locals = vec![None; method.params.len()];
            let mut ret_locals = Vec::new();
            for s in &method.body {
                match s {
                    Stmt::Identity { local, kind } => match kind {
                        IdentityKind::This => this_local = Some(*local),
                        IdentityKind::Param(p) => {
                            if let Some(slot) = param_locals.get_mut(*p as usize) {
                                *slot = Some(*local);
                            }
                        }
                        IdentityKind::CaughtException => {}
                    },
                    Stmt::Return(Some(Value::Local(l))) => ret_locals.push(*l),
                    _ => {}
                }
            }
            minfo.insert(mid, MInfo { this_local, param_locals, ret_locals });
        }
        Solver {
            prog,
            scope,
            minfo,
            ids: HashMap::new(),
            nodes: Vec::new(),
            allocs: Vec::new(),
            fly: Vec::new(),
            bound: HashSet::new(),
            worklist: VecDeque::new(),
        }
    }

    fn node(&mut self, key: NodeKey) -> usize {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.nodes.len();
        self.ids.insert(key, id);
        self.nodes.push(Node::default());
        id
    }

    fn local_node(&mut self, m: MethodId, l: Local) -> usize {
        self.node(NodeKey::Local(m, l))
    }

    fn static_key(class: &str, name: &str) -> String {
        format!("{class}#{name}")
    }

    fn add_alloc(&mut self, node: usize, a: AllocId) {
        if self.nodes[node].pts.insert(a) {
            self.worklist.push_back((node, a));
        }
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if from == to || self.nodes[from].succ.contains(&to) {
            return;
        }
        self.nodes[from].succ.push(to);
        for a in self.nodes[from].pts.clone() {
            self.add_alloc(to, a);
        }
    }

    /// Generates constraints for every in-scope method, in program order.
    /// Scoped generation visits a subsequence of the whole-program order,
    /// so surviving allocation sites keep their relative [`AllocId`] order
    /// and `classes_of` answers agree with the whole-program solve.
    fn generate(&mut self) {
        let methods: Vec<MethodId> = self
            .prog
            .concrete_methods()
            .filter(|mid| self.scope.is_none_or(|s| s.contains(mid)))
            .collect();
        for mid in methods {
            let body = &self.prog.method(mid).body;
            for (si, stmt) in body.iter().enumerate() {
                match stmt {
                    Stmt::Assign { place, expr } => self.assign(mid, si, place, expr),
                    Stmt::Invoke(call) => self.call(mid, call, None),
                    _ => {}
                }
            }
        }
    }

    fn assign(&mut self, m: MethodId, si: usize, place: &Place, expr: &Expr) {
        let src: Option<usize> = match expr {
            Expr::New(class) => Some(self.alloc_node(m, si, class.clone())),
            Expr::NewArray(elem, _) => Some(self.alloc_node(m, si, format!("{elem}[]"))),
            Expr::Use(Value::Local(l)) | Expr::Cast(_, Value::Local(l)) => {
                Some(self.local_node(m, *l))
            }
            Expr::Load(loaded) => self.load_node(m, si, loaded),
            Expr::Invoke(call) => {
                let result = self.place_sink(m, si, place);
                self.call(m, call, result);
                return;
            }
            _ => None,
        };
        if let Some(src) = src {
            self.flow_into_place(m, src, place);
        }
    }

    /// A fresh node holding exactly one new abstract object.
    fn alloc_node(&mut self, m: MethodId, si: usize, class: String) -> usize {
        let id = AllocId(self.allocs.len() as u32);
        self.allocs.push(AllocSite { method: m, stmt: si, class });
        let n = self.node(NodeKey::Site(m, si));
        self.add_alloc(n, id);
        n
    }

    /// The node a load reads from (introducing a deferred constraint for
    /// instance/array cells).
    fn load_node(&mut self, m: MethodId, si: usize, loaded: &Place) -> Option<usize> {
        match loaded {
            Place::Local(l) => Some(self.local_node(m, *l)),
            Place::StaticField(f) => {
                Some(self.node(NodeKey::Static(Self::static_key(&f.class, &f.name))))
            }
            Place::InstanceField { base, field } => {
                let dst = self.node(NodeKey::Site(m, si));
                let b = self.local_node(m, *base);
                self.add_load(b, field.name.clone(), dst);
                Some(dst)
            }
            Place::ArrayElem { base, .. } => {
                let dst = self.node(NodeKey::Site(m, si));
                let b = self.local_node(m, *base);
                self.add_load(b, ARRAY_FIELD.to_string(), dst);
                Some(dst)
            }
        }
    }

    /// The node a statement's produced value should land in, given its
    /// destination place. Plain locals write directly; field/array/static
    /// destinations go through a per-site node then a store constraint.
    fn place_sink(&mut self, m: MethodId, si: usize, place: &Place) -> Option<usize> {
        match place {
            Place::Local(l) => Some(self.local_node(m, *l)),
            _ => {
                let site = self.node(NodeKey::Site(m, si));
                self.flow_into_place(m, site, place);
                Some(site)
            }
        }
    }

    fn flow_into_place(&mut self, m: MethodId, src: usize, place: &Place) {
        match place {
            Place::Local(l) => {
                let dst = self.local_node(m, *l);
                self.add_edge(src, dst);
            }
            Place::StaticField(f) => {
                let dst = self.node(NodeKey::Static(Self::static_key(&f.class, &f.name)));
                self.add_edge(src, dst);
            }
            Place::InstanceField { base, field } => {
                let b = self.local_node(m, *base);
                self.add_store(b, field.name.clone(), src);
            }
            Place::ArrayElem { base, .. } => {
                let b = self.local_node(m, *base);
                self.add_store(b, ARRAY_FIELD.to_string(), src);
            }
        }
    }

    fn add_load(&mut self, base: usize, field: String, dst: usize) {
        for a in self.nodes[base].pts.clone() {
            let fnode = self.node(NodeKey::Field(a, field.clone()));
            self.add_edge(fnode, dst);
        }
        self.nodes[base].loads.push((field, dst));
    }

    fn add_store(&mut self, base: usize, field: String, src: usize) {
        for a in self.nodes[base].pts.clone() {
            let fnode = self.node(NodeKey::Field(a, field.clone()));
            self.add_edge(src, fnode);
        }
        self.nodes[base].stores.push((field, src));
    }

    fn call(&mut self, m: MethodId, call: &extractocol_ir::Call, result: Option<usize>) {
        let args: Vec<(usize, usize)> = call
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_local().map(|l| (i, l)))
            .map(|(i, l)| (i, self.local_node(m, l)))
            .collect();
        match call.kind {
            CallKind::Static | CallKind::Special => {
                let target = self.prog.resolve_method(
                    &call.callee.class,
                    &call.callee.name,
                    call.callee.params.len(),
                );
                let Some(t) = target else { return };
                if !self.prog.method(t).has_body || !self.minfo.contains_key(&t) {
                    // Bodyless, or outside the analysis scope: treated like
                    // a platform stub (no constraints generated into it).
                    return;
                }
                if let Some(recv) = call.receiver.as_ref().and_then(Value::as_local) {
                    let rn = self.local_node(m, recv);
                    if let Some(this) = self.minfo[&t].this_local {
                        let tn = self.local_node(t, this);
                        self.add_edge(rn, tn);
                    }
                }
                self.bind_args_and_return(t, &args, result);
            }
            CallKind::Virtual | CallKind::Interface => {
                let Some(recv) = call.receiver.as_ref().and_then(Value::as_local) else {
                    return;
                };
                let rn = self.local_node(m, recv);
                let idx = self.fly.len();
                self.fly.push(FlySite {
                    static_class: call.callee.class.clone(),
                    callee_name: call.callee.name.clone(),
                    arity: call.callee.params.len(),
                    args,
                    result,
                });
                for a in self.nodes[rn].pts.clone() {
                    self.dispatch(idx, a);
                }
                self.nodes[rn].sites.push(idx);
            }
        }
    }

    fn bind_args_and_return(
        &mut self,
        t: MethodId,
        args: &[(usize, usize)],
        result: Option<usize>,
    ) {
        let (params, rets) = {
            let info = &self.minfo[&t];
            (info.param_locals.clone(), info.ret_locals.clone())
        };
        for &(i, an) in args {
            if let Some(Some(pl)) = params.get(i) {
                let pn = self.local_node(t, *pl);
                self.add_edge(an, pn);
            }
        }
        if let Some(rnode) = result {
            for rl in rets {
                let sn = self.local_node(t, rl);
                self.add_edge(sn, rnode);
            }
        }
    }

    /// On-the-fly dispatch: one abstract object reached one virtual site.
    fn dispatch(&mut self, site: usize, a: AllocId) {
        let class = self.allocs[a.0 as usize].class.clone();
        let (static_class, name, arity) = {
            let s = &self.fly[site];
            (s.static_class.clone(), s.callee_name.clone(), s.arity)
        };
        // Dispatch filter: ignore objects that cannot inhabit the declared
        // receiver type (flow-insensitive imprecision can wash unrelated
        // allocations into a set; an ill-typed dispatch would fabricate
        // edges a real VM could never take). Classes absent from the
        // hierarchy (platform types) pass the filter only for calls
        // declared directly on them.
        let typed = self.prog.is_subtype(&class, &static_class);
        if !typed {
            return;
        }
        let Some(t) = self.prog.resolve_method(&class, &name, arity) else { return };
        if !self.prog.method(t).has_body
            || !self.minfo.contains_key(&t)
            || !self.bound.insert((site, t))
        {
            return;
        }
        let (args, result) = {
            let s = &self.fly[site];
            (s.args.clone(), s.result)
        };
        // Receiver binding is per-object: only `a` flows into the callee's
        // `this`, not the whole receiver set — the precision on-the-fly
        // resolution exists to provide.
        if let Some(this) = self.minfo[&t].this_local {
            let tn = self.local_node(t, this);
            self.add_alloc(tn, a);
        }
        self.bind_args_and_return(t, &args, result);
    }

    fn solve(mut self) -> PointsTo {
        self.generate();
        let mut propagations = 0usize;
        while let Some((n, a)) = self.worklist.pop_front() {
            propagations += 1;
            for s in self.nodes[n].succ.clone() {
                self.add_alloc(s, a);
            }
            for (field, dst) in self.nodes[n].loads.clone() {
                let fnode = self.node(NodeKey::Field(a, field));
                self.add_edge(fnode, dst);
            }
            for (field, src) in self.nodes[n].stores.clone() {
                let fnode = self.node(NodeKey::Field(a, field));
                self.add_edge(src, fnode);
            }
            for site in self.nodes[n].sites.clone() {
                self.dispatch(site, a);
            }
        }

        let mut out = PointsTo { allocs: self.allocs, propagations, ..PointsTo::default() };
        for (key, &id) in &self.ids {
            let pts = &self.nodes[id].pts;
            if pts.is_empty() {
                continue;
            }
            match key {
                NodeKey::Local(m, l) => {
                    out.locals.insert((*m, *l), pts.clone());
                }
                NodeKey::Static(k) => {
                    out.statics.insert(k.clone(), pts.clone());
                }
                NodeKey::Field(a, f) => {
                    out.fields.insert((*a, f.clone()), pts.clone());
                }
                NodeKey::Site(..) => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::{ApkBuilder, Type};

    fn classes(pts: &PointsTo, prog: &ProgramIndex<'_>, class: &str, method: &str) -> Vec<String> {
        let mid = prog.resolve_method(class, method, 0).unwrap();
        // take the local assigned last (by convention the interesting one)
        let m = prog.method(mid);
        let mut last = None;
        for s in &m.body {
            if let Stmt::Assign { place: Place::Local(l), .. } = s {
                last = Some(*l);
            }
        }
        pts.classes_of(mid, last.unwrap()).into_iter().map(str::to_string).collect()
    }

    #[test]
    fn alloc_and_copy_chains() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.A", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.A");
                let a = m.new_obj("t.A", vec![]);
                let x = m.temp(Type::object("t.A"));
                m.copy(x, a);
                let y = m.temp(Type::object("t.A"));
                m.copy(y, x);
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let pts = PointsTo::solve(&prog);
        assert_eq!(classes(&pts, &prog, "t.A", "go"), vec!["t.A"]);
        assert_eq!(pts.stats().allocs, 1);
    }

    #[test]
    fn field_sensitivity_separates_objects() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.Box", |c| {
            c.field("v", Type::obj_root());
        });
        b.class("t.P", |_| {});
        b.class("t.Q", |_| {});
        b.class("t.M", |c| {
            c.static_method("go", vec![], Type::Void, |m| {
                let f = extractocol_ir::FieldRef::new("t.Box", "v", Type::obj_root());
                let b1 = m.new_obj("t.Box", vec![]);
                let b2 = m.new_obj("t.Box", vec![]);
                let p = m.new_obj("t.P", vec![]);
                let q = m.new_obj("t.Q", vec![]);
                m.put_field(b1, &f, p);
                m.put_field(b2, &f, q);
                let got = m.temp(Type::obj_root());
                m.get_field(got, b1, &f);
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let pts = PointsTo::solve(&prog);
        // b1.v only holds P — the two boxes are distinct abstract objects.
        assert_eq!(classes(&pts, &prog, "t.M", "go"), vec!["t.P"]);
    }

    #[test]
    fn calls_bind_params_returns_and_receiver() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.A", |c| {
            c.method("id", vec![Type::obj_root()], Type::obj_root(), |m| {
                m.recv("t.A");
                let p = m.arg(0, "p");
                m.ret(p);
            });
        });
        b.class("t.M", |c| {
            c.static_method("go", vec![], Type::Void, |m| {
                let a = m.new_obj("t.A", vec![]);
                let v = m.new_obj("t.M", vec![]);
                let r = m.vcall(a, "t.A", "id", vec![Value::Local(v)], Type::obj_root());
                let _ = r;
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let pts = PointsTo::solve(&prog);
        let id = prog.resolve_method("t.A", "id", 1).unwrap();
        // receiver bound
        let this = prog
            .method(id)
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Identity { local, kind: IdentityKind::This } => Some(*local),
                _ => None,
            })
            .unwrap();
        assert_eq!(pts.classes_of(id, this), vec!["t.A"], "receiver flows into callee this");
        // return flows back: last assigned local in go is r
        assert_eq!(classes(&pts, &prog, "t.M", "go"), vec!["t.M"]);
    }

    #[test]
    fn on_the_fly_devirtualization_is_receiver_precise() {
        let mut b = ApkBuilder::new("t", "t");
        b.iface("t.I", |c| {
            c.stub_method("make", vec![], Type::obj_root());
        });
        b.class("t.A", |c| {
            c.implements("t.I");
            c.method("make", vec![], Type::obj_root(), |m| {
                m.recv("t.A");
                let o = m.new_obj("t.A", vec![]);
                m.ret(o);
            });
        });
        b.class("t.B", |c| {
            c.implements("t.I");
            c.method("make", vec![], Type::obj_root(), |m| {
                m.recv("t.B");
                let o = m.new_obj("t.B", vec![]);
                m.ret(o);
            });
        });
        b.class("t.M", |c| {
            c.static_method("go", vec![], Type::Void, |m| {
                let a = m.new_obj("t.A", vec![]);
                let i = m.temp(Type::object("t.I"));
                m.copy(i, a);
                let r = m.icall(i, "t.I", "make", vec![], Type::obj_root());
                let _ = r;
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let pts = PointsTo::solve(&prog);
        // Only t.A::make is dispatched: the call result points to t.A,
        // never t.B, and t.B::make's receiver is never bound.
        assert_eq!(classes(&pts, &prog, "t.M", "go"), vec!["t.A"]);
        let b_make = prog.resolve_method("t.B", "make", 0).unwrap();
        let b_this = prog
            .method(b_make)
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Identity { local, kind: IdentityKind::This } => Some(*local),
                _ => None,
            })
            .unwrap();
        assert!(pts.local_pts(b_make, b_this).is_empty(), "t.B::make must stay unbound");
    }

    #[test]
    fn statics_and_arrays_propagate() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.G", |c| {
            c.static_field("cache", Type::obj_root());
        });
        b.class("t.M", |c| {
            c.static_method("go", vec![], Type::Void, |m| {
                let f = extractocol_ir::FieldRef::new("t.G", "cache", Type::obj_root());
                let o = m.new_obj("t.M", vec![]);
                m.put_static(&f, o);
                let back = m.temp(Type::obj_root());
                m.get_static(back, &f);
                let arr = m.temp(Type::obj_root().array_of());
                m.new_array(arr, Type::obj_root(), Value::int(2));
                m.store_elem(arr, Value::int(0), back);
                let out = m.temp(Type::obj_root());
                m.load_elem(out, arr, Value::int(0));
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let pts = PointsTo::solve(&prog);
        assert_eq!(classes(&pts, &prog, "t.M", "go"), vec!["t.M"]);
        assert!(!pts.static_pts("t.G#cache").is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut b = ApkBuilder::new("t", "t");
        for i in 0..6 {
            let cls = format!("t.C{i}");
            b.class(&cls, |c| {
                c.method("mk", vec![], Type::obj_root(), |m| {
                    m.recv("x");
                    let o = m.new_obj("java.lang.Object", vec![]);
                    m.ret(o);
                });
            });
        }
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let a = PointsTo::solve(&prog);
        let b2 = PointsTo::solve(&prog);
        assert_eq!(format!("{:?}", a.stats()), format!("{:?}", b2.stats()));
        assert_eq!(a.allocs(), b2.allocs());
    }
}
