//! Static precision diagnostics: a lint pass over the IR and analysis
//! results that explains *why* an analysis might be imprecise on a given
//! app before anyone reads a wrong signature out of it.
//!
//! Each lint names a statement-level site and a category:
//!
//! * **unresolved-virtual-site** — a virtual/interface call with no
//!   explicit target, no stub resolution, and no implicit edge: dispatch
//!   goes nowhere the analysis can see.
//! * **empty-points-to** — the receiver of a devirtualizable site has an
//!   empty points-to set, so the call graph fell back to the CHA cone.
//! * **model-gap** — dispatch lands in a bodyless platform/library stub
//!   that no API model covers: taint dies silently at this call.
//! * **reflection** — a reflective call (`Class.forName`,
//!   `Method.invoke`, `Class.newInstance`): behavior invisible to any
//!   static call graph (paper §6 limitation).
//! * **dead-block** — a CFG block unreachable from the method entry;
//!   usually a malformed corpus app or obfuscator artifact.
//!
//! Output ordering is total and deterministic: lints sort by class name,
//! method name, statement index, then category — never by hash order —
//! so lint listings obey the same byte-identical guarantee as reports.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::pointsto::PointsTo;
use extractocol_ir::{CallKind, MethodId, MethodRef, ProgramIndex, Value};

/// What kind of precision problem a lint reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCategory {
    UnresolvedVirtualSite,
    EmptyPointsTo,
    ModelGap,
    Reflection,
    DeadBlock,
}

impl LintCategory {
    /// Stable kebab-case name used in CLI output.
    pub fn name(self) -> &'static str {
        match self {
            LintCategory::UnresolvedVirtualSite => "unresolved-virtual-site",
            LintCategory::EmptyPointsTo => "empty-points-to",
            LintCategory::ModelGap => "model-gap",
            LintCategory::Reflection => "reflection",
            LintCategory::DeadBlock => "dead-block",
        }
    }
}

/// One diagnostic finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lint {
    pub category: LintCategory,
    /// `class.method` of the site.
    pub context: String,
    /// Statement index within the method.
    pub stmt: usize,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} @{}: {}", self.category.name(), self.context, self.stmt, self.message)
    }
}

/// All lints of one program, in stable order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    pub lints: Vec<Lint>,
}

impl LintReport {
    /// Number of lints in one category.
    pub fn count(&self, cat: LintCategory) -> usize {
        self.lints.iter().filter(|l| l.category == cat).count()
    }

    /// The canonical text rendering: one line per lint, then a summary
    /// line per non-empty category. Deterministic byte-for-byte.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for l in &self.lints {
            let _ = writeln!(out, "{l}");
        }
        for cat in [
            LintCategory::UnresolvedVirtualSite,
            LintCategory::EmptyPointsTo,
            LintCategory::ModelGap,
            LintCategory::Reflection,
            LintCategory::DeadBlock,
        ] {
            let n = self.count(cat);
            if n > 0 {
                let _ = writeln!(out, "# {}: {}", cat.name(), n);
            }
        }
        out
    }
}

/// True when a callee looks like a reflective entry point.
fn is_reflective(callee: &MethodRef) -> bool {
    callee.class.starts_with("java.lang.reflect.")
        || (callee.class == "java.lang.Class"
            && matches!(callee.name.as_str(), "forName" | "newInstance" | "getMethod"))
}

/// Runs every lint over the program. `pts` is the solved points-to result
/// when the pipeline ran with devirtualization (enables the
/// empty-points-to lint); `model_covers` reports whether the semantic
/// API-flow model knows a given bodyless callee (the `stubs.rs` /
/// `semantics.rs` coverage question, answered by the caller because the
/// model lives a crate above this one).
pub fn lint(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    pts: Option<&PointsTo>,
    model_covers: &dyn Fn(&MethodRef) -> bool,
) -> LintReport {
    lint_scoped(prog, graph, pts, model_covers, None)
}

/// Like [`lint`], restricted to an analysis scope: only methods in the set
/// are visited (the targeted mode's cone — lints for never-analyzed code
/// would be noise, and visiting it would defeat the point of targeting).
/// `None` lints the whole program.
pub fn lint_scoped(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    pts: Option<&PointsTo>,
    model_covers: &dyn Fn(&MethodRef) -> bool,
    scope: Option<&std::collections::HashSet<MethodId>>,
) -> LintReport {
    let mut lints = Vec::new();
    let mut methods: Vec<MethodId> =
        prog.concrete_methods().filter(|mid| scope.is_none_or(|s| s.contains(mid))).collect();
    methods.sort_unstable();
    for mid in methods {
        let method = prog.method(mid);
        let context = format!("{}.{}", prog.class(mid.class).name, method.name);

        // Statement-level lints.
        for (si, stmt) in method.body.iter().enumerate() {
            let Some(call) = stmt.call() else { continue };
            let site = (mid, si);
            if is_reflective(&call.callee) {
                lints.push(Lint {
                    category: LintCategory::Reflection,
                    context: context.clone(),
                    stmt: si,
                    message: format!("reflective call to {}", call.callee.qualified()),
                });
            }
            let explicit = graph.targets_of(site);
            let stubs = graph.unresolved_of(site);
            let implicit = graph.implicit_of(site);
            for t in stubs {
                if !model_covers(&call.callee) {
                    lints.push(Lint {
                        category: LintCategory::ModelGap,
                        context: context.clone(),
                        stmt: si,
                        message: format!(
                            "bodyless target {} has no API model",
                            prog.method_display(*t)
                        ),
                    });
                }
            }
            if matches!(call.kind, CallKind::Virtual | CallKind::Interface) {
                if explicit.is_empty() && stubs.is_empty() && implicit.is_empty() {
                    lints.push(Lint {
                        category: LintCategory::UnresolvedVirtualSite,
                        context: context.clone(),
                        stmt: si,
                        message: format!("{} resolves to nothing", call.callee.qualified()),
                    });
                }
                if let (Some(pts), Some(recv)) =
                    (pts, call.receiver.as_ref().and_then(Value::as_local))
                {
                    if pts.local_pts(mid, recv).is_empty() && !explicit.is_empty() {
                        lints.push(Lint {
                            category: LintCategory::EmptyPointsTo,
                            context: context.clone(),
                            stmt: si,
                            message: format!(
                                "receiver of {} has an empty points-to set (CHA fallback, \
                                 {} target(s))",
                                call.callee.qualified(),
                                explicit.len()
                            ),
                        });
                    }
                }
            }
        }

        // Dead blocks: anything the CFG's reverse post-order never visits.
        let cfg = Cfg::build(method);
        for (bi, block) in cfg.blocks.iter().enumerate() {
            if bi != 0 && !cfg.rpo.contains(&bi) {
                lints.push(Lint {
                    category: LintCategory::DeadBlock,
                    context: context.clone(),
                    stmt: block.stmts().start,
                    message: format!(
                        "block {bi} (statements {}..{}) is unreachable",
                        block.stmts().start,
                        block.stmts().end
                    ),
                });
            }
        }
    }
    lints.sort_by(|a, b| {
        (&a.context, a.stmt, a.category, &a.message)
            .cmp(&(&b.context, b.stmt, b.category, &b.message))
    });
    LintReport { lints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callbacks::CallbackRegistry;
    use extractocol_ir::{ApkBuilder, Type};

    fn lint_all(apk: &extractocol_ir::Apk, with_pts: bool) -> LintReport {
        let prog = ProgramIndex::new(apk);
        let pts = with_pts.then(|| PointsTo::solve(&prog));
        let graph = match &pts {
            Some(p) => CallGraph::build_with_pointsto(&prog, &CallbackRegistry::empty(), p),
            None => CallGraph::build(&prog, &CallbackRegistry::empty()),
        };
        lint(&prog, &graph, pts.as_ref(), &|_| false)
    }

    #[test]
    fn model_gap_and_reflection_reported() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.Stub", |c| {
            c.stub_method("api", vec![], Type::Void);
        });
        b.class("t.M", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.M");
                let s = m.new_obj("t.Stub", vec![]);
                m.vcall_void(s, "t.Stub", "api", vec![]);
                m.scall(
                    "java.lang.Class",
                    "forName",
                    vec![Value::str("t.Hidden")],
                    Type::object("java.lang.Class"),
                );
                m.ret_void();
            });
        });
        let apk = b.build();
        let r = lint_all(&apk, false);
        assert_eq!(r.count(LintCategory::ModelGap), 1, "{}", r.to_text());
        assert_eq!(r.count(LintCategory::Reflection), 1, "{}", r.to_text());
    }

    #[test]
    fn unresolved_virtual_site_reported() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.M", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.M");
                let x = m.temp(Type::object("t.Ghost"));
                // t.Ghost is not declared anywhere: resolution finds nothing.
                m.vcall_void(x, "t.Ghost", "spooky", vec![]);
                m.ret_void();
            });
        });
        let apk = b.build();
        let r = lint_all(&apk, false);
        assert_eq!(r.count(LintCategory::UnresolvedVirtualSite), 1, "{}", r.to_text());
    }

    #[test]
    fn empty_points_to_reported_on_cha_fallback() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.A", |c| {
            c.method("work", vec![], Type::Void, |m| {
                m.recv("t.A");
                m.ret_void();
            });
        });
        b.class("t.M", |c| {
            // The receiver arrives as a parameter from nowhere: its
            // points-to set is empty and the site keeps the CHA targets.
            c.method("go", vec![Type::object("t.A")], Type::Void, |m| {
                m.recv("t.M");
                let a = m.arg(0, "a");
                m.vcall_void(a, "t.A", "work", vec![]);
                m.ret_void();
            });
        });
        let apk = b.build();
        let with = lint_all(&apk, true);
        assert_eq!(with.count(LintCategory::EmptyPointsTo), 1, "{}", with.to_text());
        let without = lint_all(&apk, false);
        assert_eq!(without.count(LintCategory::EmptyPointsTo), 0, "lint requires points-to");
    }

    #[test]
    fn dead_block_reported_and_order_is_stable() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.M", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.M");
                m.goto("end");
                // unreachable:
                let d = m.temp(Type::string());
                m.cstr(d, "never");
                m.label("end");
                m.ret_void();
            });
        });
        let apk = b.build();
        let r = lint_all(&apk, false);
        assert!(r.count(LintCategory::DeadBlock) >= 1, "{}", r.to_text());
        // stable ordering: repeated runs render identically
        let r2 = lint_all(&apk, false);
        assert_eq!(r.to_text(), r2.to_text());
    }
}
