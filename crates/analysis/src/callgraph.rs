//! Class-hierarchy-analysis (CHA) call graph over explicit call sites,
//! plus the implicit edges materialized from the [`CallbackRegistry`].
//!
//! Soot's SPARK/CHA layer plays this role in the original system \[60\]. The
//! call graph serves two consumers: the taint engine (to step into callees
//! and back) and the slicer (to bound the code reachable from demarcation
//! points).

use crate::callbacks::{CallbackRegistry, ImplicitEdge};
use crate::pointsto::PointsTo;
use extractocol_ir::{CallKind, MethodId, ProgramIndex, Value};
use std::collections::{HashMap, HashSet};

/// A call site: `(containing method, statement index)`.
pub type CallSite = (MethodId, usize);

/// The whole-program call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Explicit targets (concrete methods only) per call site.
    pub targets: HashMap<CallSite, Vec<MethodId>>,
    /// Resolved-but-bodyless targets per call site: dispatch lands in a
    /// platform/library stub, so the edge is owed to an API model rather
    /// than the graph. Recorded (instead of silently dropped) so the
    /// diagnostics pass can count model-coverage gaps.
    pub unresolved: HashMap<CallSite, Vec<MethodId>>,
    /// Implicit callback edges per call site.
    pub implicit: HashMap<CallSite, Vec<ImplicitEdge>>,
    /// Reverse edges: callee → explicit call sites invoking it.
    pub callers: HashMap<MethodId, Vec<CallSite>>,
    /// Virtual/interface sites whose targets came from the receiver's
    /// points-to set (only populated by [`CallGraph::build_with_pointsto`]).
    pub devirtualized: HashSet<CallSite>,
}

impl CallGraph {
    /// Builds the call graph for the whole program.
    ///
    /// Virtual/interface sites resolve to the statically-typed receiver
    /// class's implementation (if concrete) plus every overriding subtype
    /// implementation — plain CHA. Static/special sites resolve directly.
    /// Bodyless targets (platform/library stubs) are *not* edges — they are
    /// handled by the taint engine's API model — but are recorded in
    /// [`CallGraph::unresolved`] for the diagnostics pass.
    pub fn build(prog: &ProgramIndex<'_>, registry: &CallbackRegistry) -> CallGraph {
        Self::build_inner(prog, registry, None)
    }

    /// Builds the call graph with on-the-fly devirtualization: a
    /// virtual/interface site whose receiver has a non-empty points-to set
    /// resolves against the *allocated* classes only, shedding the CHA
    /// subtype cone. Sites with an empty set (receivers fed by modeled
    /// APIs or unanalyzed contexts) fall back to CHA.
    pub fn build_with_pointsto(
        prog: &ProgramIndex<'_>,
        registry: &CallbackRegistry,
        pts: &PointsTo,
    ) -> CallGraph {
        Self::build_inner(prog, registry, Some(pts))
    }

    fn build_inner(
        prog: &ProgramIndex<'_>,
        registry: &CallbackRegistry,
        pts: Option<&PointsTo>,
    ) -> CallGraph {
        let mut g = CallGraph::default();
        for mid in prog.concrete_methods() {
            let body = &prog.method(mid).body;
            for (si, stmt) in body.iter().enumerate() {
                let Some(call) = stmt.call() else { continue };
                let site: CallSite = (mid, si);
                let mut targets: Vec<MethodId> = Vec::new();
                let mut stubs: Vec<MethodId> = Vec::new();
                let mut push = |t: MethodId| {
                    let bucket = if prog.method(t).has_body { &mut targets } else { &mut stubs };
                    if !bucket.contains(&t) {
                        bucket.push(t);
                    }
                };
                match call.kind {
                    CallKind::Static | CallKind::Special => {
                        if let Some(t) = prog.resolve_method(
                            &call.callee.class,
                            &call.callee.name,
                            call.callee.params.len(),
                        ) {
                            push(t);
                        }
                    }
                    CallKind::Virtual | CallKind::Interface => {
                        let devirt = pts.and_then(|p| {
                            devirtualize(prog, p, mid, call).filter(|v| !v.is_empty())
                        });
                        if let Some(resolved) = devirt {
                            for t in resolved {
                                push(t);
                            }
                            g.devirtualized.insert(site);
                        } else {
                            if let Some(t) = prog.resolve_method(
                                &call.callee.class,
                                &call.callee.name,
                                call.callee.params.len(),
                            ) {
                                push(t);
                            }
                            for sub in prog.all_subtypes(&call.callee.class) {
                                if let Some(t) = prog.declared_method(
                                    sub,
                                    &call.callee.name,
                                    call.callee.params.len(),
                                ) {
                                    push(t);
                                }
                            }
                        }
                    }
                }
                let implicit = registry.implicit_edges(prog, call);
                for t in &targets {
                    g.callers.entry(*t).or_default().push(site);
                }
                for e in &implicit {
                    g.callers.entry(e.target).or_default().push(site);
                }
                if !targets.is_empty() {
                    g.targets.insert(site, targets);
                }
                if !stubs.is_empty() {
                    g.unresolved.insert(site, stubs);
                }
                if !implicit.is_empty() {
                    g.implicit.insert(site, implicit);
                }
            }
        }
        g
    }

    /// Explicit targets of a call site (empty slice when unresolved or
    /// library-modelled).
    pub fn targets_of(&self, site: CallSite) -> &[MethodId] {
        self.targets.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolved-but-bodyless targets of a call site.
    pub fn unresolved_of(&self, site: CallSite) -> &[MethodId] {
        self.unresolved.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total explicit targets across all sites — the precision figure the
    /// CHA-vs-PTA ablation compares (devirtualization can only shrink it).
    pub fn total_explicit_targets(&self) -> usize {
        self.targets.values().map(Vec::len).sum()
    }

    /// Implicit callback edges of a call site.
    pub fn implicit_of(&self, site: CallSite) -> &[ImplicitEdge] {
        self.implicit.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All methods transitively reachable from the given roots through
    /// explicit and implicit edges (including the roots).
    pub fn reachable(&self, prog: &ProgramIndex<'_>, roots: &[MethodId]) -> HashSet<MethodId> {
        let mut seen: HashSet<MethodId> = HashSet::new();
        let mut stack: Vec<MethodId> = roots.to_vec();
        while let Some(m) = stack.pop() {
            if !seen.insert(m) {
                continue;
            }
            let body = &prog.method(m).body;
            for si in 0..body.len() {
                for &t in self.targets_of((m, si)) {
                    stack.push(t);
                }
                for e in self.implicit_of((m, si)) {
                    stack.push(e.target);
                    if let Some((c, _)) = e.chains_to {
                        stack.push(c);
                    }
                }
            }
        }
        seen
    }
}

/// Resolves a virtual/interface call against the receiver's points-to set:
/// one dispatch per allocated class, in allocation order. Returns `None`
/// when the receiver is not a local or its set is empty (CHA fallback).
fn devirtualize(
    prog: &ProgramIndex<'_>,
    pts: &PointsTo,
    mid: MethodId,
    call: &extractocol_ir::Call,
) -> Option<Vec<MethodId>> {
    let recv = call.receiver.as_ref().and_then(Value::as_local)?;
    let classes = pts.classes_of(mid, recv);
    if classes.is_empty() {
        return None;
    }
    let mut out = Vec::new();
    for class in classes {
        // The same type filter the points-to solver applies on dispatch:
        // ill-typed allocations washed in by flow-insensitivity don't
        // fabricate call edges.
        if !prog.is_subtype(class, &call.callee.class) {
            continue;
        }
        if let Some(t) = prog.resolve_method(class, &call.callee.name, call.callee.params.len()) {
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::{ApkBuilder, Type};

    fn diamond_apk() -> extractocol_ir::Apk {
        let mut b = ApkBuilder::new("t", "t");
        b.iface("t.I", |c| {
            c.stub_method("work", vec![], Type::Void);
        });
        b.class("t.A", |c| {
            c.implements("t.I");
            c.method("work", vec![], Type::Void, |m| {
                m.recv("t.A");
                m.ret_void();
            });
        });
        b.class("t.B", |c| {
            c.implements("t.I");
            c.method("work", vec![], Type::Void, |m| {
                m.recv("t.B");
                m.ret_void();
            });
        });
        b.class("t.Main", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.Main");
                let a = m.new_obj("t.A", vec![]);
                // Interface-typed call: CHA sees both implementations.
                let i = m.temp(Type::object("t.I"));
                m.copy(i, a);
                m.icall(i, "t.I", "work", vec![], Type::Void);
                m.ret_void();
            });
            c.static_method("util", vec![], Type::Void, |m| {
                m.scall_void("t.Main", "util2", vec![]);
                m.ret_void();
            });
            c.static_method("util2", vec![], Type::Void, |m| {
                m.ret_void();
            });
        });
        b.build()
    }

    #[test]
    fn cha_resolves_interface_calls_to_all_impls() {
        let apk = diamond_apk();
        let prog = ProgramIndex::new(&apk);
        let g = CallGraph::build(&prog, &CallbackRegistry::empty());
        let main = prog.resolve_method("t.Main", "go", 0).unwrap();
        // find the interface call site
        let site = prog
            .method(main)
            .body
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.call().filter(|c| c.callee.name == "work").map(|_| (main, i)))
            .unwrap();
        let mut names: Vec<String> =
            g.targets_of(site).iter().map(|t| prog.class(t.class).name.clone()).collect();
        names.sort();
        assert_eq!(names, vec!["t.A", "t.B"]);
    }

    #[test]
    fn static_calls_resolve_directly_and_reachability_works() {
        let apk = diamond_apk();
        let prog = ProgramIndex::new(&apk);
        let g = CallGraph::build(&prog, &CallbackRegistry::empty());
        let util = prog.resolve_method("t.Main", "util", 0).unwrap();
        let util2 = prog.resolve_method("t.Main", "util2", 0).unwrap();
        let reach = g.reachable(&prog, &[util]);
        assert!(reach.contains(&util2));
        assert!(!reach.contains(&prog.resolve_method("t.A", "work", 0).unwrap()));
        // callers recorded
        assert_eq!(g.callers[&util2].len(), 1);
    }

    #[test]
    fn pointsto_devirtualizes_interface_call_to_one_target() {
        let apk = diamond_apk();
        let prog = ProgramIndex::new(&apk);
        let cha = CallGraph::build(&prog, &CallbackRegistry::empty());
        let pts = crate::pointsto::PointsTo::solve(&prog);
        let pta = CallGraph::build_with_pointsto(&prog, &CallbackRegistry::empty(), &pts);
        let main = prog.resolve_method("t.Main", "go", 0).unwrap();
        let site = prog
            .method(main)
            .body
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.call().filter(|c| c.callee.name == "work").map(|_| (main, i)))
            .unwrap();
        assert_eq!(cha.targets_of(site).len(), 2, "CHA sees both implementations");
        let names: Vec<String> =
            pta.targets_of(site).iter().map(|t| prog.class(t.class).name.clone()).collect();
        assert_eq!(names, vec!["t.A"], "the receiver only ever holds a t.A");
        assert!(pta.devirtualized.contains(&site));
        assert!(pta.total_explicit_targets() < cha.total_explicit_targets());
    }

    #[test]
    fn bodyless_targets_land_in_unresolved_not_dropped() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.Stubby", |c| {
            c.stub_method("api", vec![], Type::Void);
        });
        b.class("t.Main", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.Main");
                let s = m.new_obj("t.Stubby", vec![]);
                m.vcall_void(s, "t.Stubby", "api", vec![]);
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let g = CallGraph::build(&prog, &CallbackRegistry::empty());
        let main = prog.resolve_method("t.Main", "go", 0).unwrap();
        let site = prog
            .method(main)
            .body
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.call().filter(|c| c.callee.name == "api").map(|_| (main, i)))
            .unwrap();
        assert!(g.targets_of(site).is_empty(), "stub is not a taint edge");
        let stubs: Vec<String> =
            g.unresolved_of(site).iter().map(|t| prog.method_display(*t)).collect();
        assert_eq!(stubs.len(), 1, "but the resolution is recorded: {stubs:?}");
    }
}
