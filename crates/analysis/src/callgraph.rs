//! Class-hierarchy-analysis (CHA) call graph over explicit call sites,
//! plus the implicit edges materialized from the [`CallbackRegistry`].
//!
//! Soot's SPARK/CHA layer plays this role in the original system \[60\]. The
//! call graph serves two consumers: the taint engine (to step into callees
//! and back) and the slicer (to bound the code reachable from demarcation
//! points).

use crate::callbacks::{CallbackRegistry, ImplicitEdge};
use extractocol_ir::{CallKind, MethodId, ProgramIndex};
use std::collections::{HashMap, HashSet};

/// A call site: `(containing method, statement index)`.
pub type CallSite = (MethodId, usize);

/// The whole-program call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Explicit targets (concrete methods only) per call site.
    pub targets: HashMap<CallSite, Vec<MethodId>>,
    /// Implicit callback edges per call site.
    pub implicit: HashMap<CallSite, Vec<ImplicitEdge>>,
    /// Reverse edges: callee → explicit call sites invoking it.
    pub callers: HashMap<MethodId, Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the call graph for the whole program.
    ///
    /// Virtual/interface sites resolve to the statically-typed receiver
    /// class's implementation (if concrete) plus every overriding subtype
    /// implementation — plain CHA. Static/special sites resolve directly.
    /// Bodyless targets (platform/library stubs) are *not* edges; they are
    /// handled by the taint engine's API model.
    pub fn build(prog: &ProgramIndex<'_>, registry: &CallbackRegistry) -> CallGraph {
        let mut g = CallGraph::default();
        for mid in prog.concrete_methods() {
            let body = &prog.method(mid).body;
            for (si, stmt) in body.iter().enumerate() {
                let Some(call) = stmt.call() else { continue };
                let site: CallSite = (mid, si);
                let mut targets: Vec<MethodId> = Vec::new();
                match call.kind {
                    CallKind::Static | CallKind::Special => {
                        if let Some(t) = prog.resolve_method(
                            &call.callee.class,
                            &call.callee.name,
                            call.callee.params.len(),
                        ) {
                            if prog.method(t).has_body {
                                targets.push(t);
                            }
                        }
                    }
                    CallKind::Virtual | CallKind::Interface => {
                        let mut seen = HashSet::new();
                        if let Some(t) = prog.resolve_method(
                            &call.callee.class,
                            &call.callee.name,
                            call.callee.params.len(),
                        ) {
                            if prog.method(t).has_body && seen.insert(t) {
                                targets.push(t);
                            }
                        }
                        for sub in prog.all_subtypes(&call.callee.class) {
                            if let Some(t) = prog.declared_method(
                                sub,
                                &call.callee.name,
                                call.callee.params.len(),
                            ) {
                                if prog.method(t).has_body && seen.insert(t) {
                                    targets.push(t);
                                }
                            }
                        }
                    }
                }
                let implicit = registry.implicit_edges(prog, call);
                for t in &targets {
                    g.callers.entry(*t).or_default().push(site);
                }
                for e in &implicit {
                    g.callers.entry(e.target).or_default().push(site);
                }
                if !targets.is_empty() {
                    g.targets.insert(site, targets);
                }
                if !implicit.is_empty() {
                    g.implicit.insert(site, implicit);
                }
            }
        }
        g
    }

    /// Explicit targets of a call site (empty slice when unresolved or
    /// library-modelled).
    pub fn targets_of(&self, site: CallSite) -> &[MethodId] {
        self.targets.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Implicit callback edges of a call site.
    pub fn implicit_of(&self, site: CallSite) -> &[ImplicitEdge] {
        self.implicit.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All methods transitively reachable from the given roots through
    /// explicit and implicit edges (including the roots).
    pub fn reachable(&self, prog: &ProgramIndex<'_>, roots: &[MethodId]) -> HashSet<MethodId> {
        let mut seen: HashSet<MethodId> = HashSet::new();
        let mut stack: Vec<MethodId> = roots.to_vec();
        while let Some(m) = stack.pop() {
            if !seen.insert(m) {
                continue;
            }
            let body = &prog.method(m).body;
            for si in 0..body.len() {
                for &t in self.targets_of((m, si)) {
                    stack.push(t);
                }
                for e in self.implicit_of((m, si)) {
                    stack.push(e.target);
                    if let Some((c, _)) = e.chains_to {
                        stack.push(c);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::{ApkBuilder, Type};

    fn diamond_apk() -> extractocol_ir::Apk {
        let mut b = ApkBuilder::new("t", "t");
        b.iface("t.I", |c| {
            c.stub_method("work", vec![], Type::Void);
        });
        b.class("t.A", |c| {
            c.implements("t.I");
            c.method("work", vec![], Type::Void, |m| {
                m.recv("t.A");
                m.ret_void();
            });
        });
        b.class("t.B", |c| {
            c.implements("t.I");
            c.method("work", vec![], Type::Void, |m| {
                m.recv("t.B");
                m.ret_void();
            });
        });
        b.class("t.Main", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.Main");
                let a = m.new_obj("t.A", vec![]);
                // Interface-typed call: CHA sees both implementations.
                let i = m.temp(Type::object("t.I"));
                m.copy(i, a);
                m.icall(i, "t.I", "work", vec![], Type::Void);
                m.ret_void();
            });
            c.static_method("util", vec![], Type::Void, |m| {
                m.scall_void("t.Main", "util2", vec![]);
                m.ret_void();
            });
            c.static_method("util2", vec![], Type::Void, |m| {
                m.ret_void();
            });
        });
        b.build()
    }

    #[test]
    fn cha_resolves_interface_calls_to_all_impls() {
        let apk = diamond_apk();
        let prog = ProgramIndex::new(&apk);
        let g = CallGraph::build(&prog, &CallbackRegistry::empty());
        let main = prog.resolve_method("t.Main", "go", 0).unwrap();
        // find the interface call site
        let site = prog
            .method(main)
            .body
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.call().filter(|c| c.callee.name == "work").map(|_| (main, i)))
            .unwrap();
        let mut names: Vec<String> =
            g.targets_of(site).iter().map(|t| prog.class(t.class).name.clone()).collect();
        names.sort();
        assert_eq!(names, vec!["t.A", "t.B"]);
    }

    #[test]
    fn static_calls_resolve_directly_and_reachability_works() {
        let apk = diamond_apk();
        let prog = ProgramIndex::new(&apk);
        let g = CallGraph::build(&prog, &CallbackRegistry::empty());
        let util = prog.resolve_method("t.Main", "util", 0).unwrap();
        let util2 = prog.resolve_method("t.Main", "util2", 0).unwrap();
        let reach = g.reachable(&prog, &[util]);
        assert!(reach.contains(&util2));
        assert!(!reach.contains(&prog.resolve_method("t.A", "work", 0).unwrap()));
        // callers recorded
        assert_eq!(g.callers[&util2].len(), 1);
    }
}
