//! Bidirectional, flow- and field-sensitive taint propagation.
//!
//! This is the crate's stand-in for FlowDroid's IFDS data-flow layer
//! \[27, 73\], extended the way the paper extends it (§3.1):
//!
//! * **Forward** propagation follows assignments, loads/stores, calls, and
//!   returns — tracking objects that *originate from* the network buffer.
//! * **Backward** propagation runs over the reversed control-flow graph
//!   with inverted rules — "a tainted LHS taints RHS in an assignment
//!   statement, and the taint information of callee's arguments is
//!   propagated to caller's arguments"; "in backward taint propagation, an
//!   object is untainted at its definition."
//!
//! Facts are *access paths*: a root (local or static field) plus a capped
//! field chain, FlowDroid-style. The engine is whole-program and
//! flow-sensitive; callee returns flow to every call site (see the crate
//! docs for why context-insensitivity is acceptable here, and the
//! `ablation_taint_depth` bench for the field-depth trade-off).
//!
//! Unlike classic taint analysis — whose job ends at "does a path from
//! source to sink exist?" — the report keeps **every statement that touches
//! a tainted object**, because "omitting even a single statement that
//! operates on these objects would result in an inaccurate signature"
//! (§3.1). Slices are exactly those statement sets.

use crate::callbacks::OperandSource;
use crate::callgraph::{CallGraph, CallSite};
use crate::cfg::Cfg;
use crate::pointsto::PointsTo;
use extractocol_ir::{
    Call, CallKind, Expr, IdentityKind, Local, MethodId, MethodRef, Place, ProgramIndex, Stmt,
    Value,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Propagation direction. `Ord` so summary-cache exports sort into a
/// deterministic, jobs-invariant order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    Forward,
    Backward,
}

/// The root of an access path.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Root {
    /// A local slot of some method (paths are method-local; crossing a call
    /// re-roots the path).
    Local(Local),
    /// A static field, identified as `class#field` — global to the program.
    Static(String),
}

/// An access path: root plus a field chain capped at
/// [`TaintOptions::max_field_depth`]. The pseudo-field `"[]"` stands for
/// "any array element" (arrays are index-insensitive, as in FlowDroid).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessPath {
    pub root: Root,
    pub fields: Vec<String>,
}

impl AccessPath {
    /// A path rooted at a local with no fields.
    pub fn local(l: Local) -> AccessPath {
        AccessPath { root: Root::Local(l), fields: Vec::new() }
    }

    /// A path rooted at a static field.
    pub fn static_field(class: &str, field: &str) -> AccessPath {
        AccessPath { root: Root::Static(format!("{class}#{field}")), fields: Vec::new() }
    }

    /// Re-roots this path at another root, prefixing `prefix` fields and
    /// truncating to the depth cap (overapproximation, never loss).
    fn rebase(&self, root: Root, prefix: &[String], cap: usize) -> AccessPath {
        let mut fields: Vec<String> = prefix.to_vec();
        fields.extend(self.fields.iter().cloned());
        fields.truncate(cap);
        AccessPath { root, fields }
    }

    /// True when this path is rooted at the given local.
    fn rooted_at(&self, l: Local) -> bool {
        self.root == Root::Local(l)
    }
}

/// Slots of a modelled (bodyless) API call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Slot {
    Receiver,
    Arg(usize),
    Return,
}

/// Taint-transfer model for calls the engine cannot step into (platform
/// and library stubs). `extractocol-core` implements this over its API
/// semantic model; [`ConservativeModel`] is the default fallback.
pub trait ApiFlowModel {
    /// Directed taint flows `(from, to)` induced by a call to `callee`.
    fn flows(&self, callee: &MethodRef) -> Vec<(Slot, Slot)>;
}

/// Fallback model: taint on any input reaches the return value and the
/// receiver. Sound for value-producing APIs, imprecise for sanitizers —
/// which protocol-building code does not contain.
pub struct ConservativeModel;

impl ApiFlowModel for ConservativeModel {
    fn flows(&self, callee: &MethodRef) -> Vec<(Slot, Slot)> {
        let mut flows = Vec::new();
        for i in 0..callee.params.len() {
            flows.push((Slot::Arg(i), Slot::Return));
            flows.push((Slot::Arg(i), Slot::Receiver));
        }
        flows.push((Slot::Receiver, Slot::Return));
        flows
    }
}

/// A seeded fact: `fact` holds immediately *before* `stmt` when running
/// forward, immediately *after* it when running backward.
#[derive(Clone, Debug)]
pub struct Seed {
    pub method: MethodId,
    pub stmt: usize,
    pub fact: AccessPath,
}

/// Engine options.
#[derive(Clone, Debug)]
pub struct TaintOptions {
    /// Maximum access-path field depth (FlowDroid defaults to 5; protocol
    /// code rarely needs more than 2 — see `ablation_taint_depth`).
    pub max_field_depth: usize,
    /// Enable the interprocedural method-summary cache. Propagation
    /// results per `(method, statement, fact)` entry point are memoized on
    /// the engine and shared across runs (and threads), so distinct
    /// demarcation points stop re-analyzing shared helper methods. Results
    /// are identical either way; this is purely a work-avoidance cache.
    pub summary_cache: bool,
}

impl Default for TaintOptions {
    fn default() -> Self {
        TaintOptions { max_field_depth: 2, summary_cache: true }
    }
}

/// Method-summary cache hit/miss counters (monotonic over an engine's
/// lifetime, summed across every `run` and every thread using it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a memoized summary.
    pub hits: u64,
    /// Lookups that had to compute (and then memoize) a summary.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The result of a propagation run.
#[derive(Debug, Default)]
pub struct TaintReport {
    /// Statements that operate on tainted objects — the program slice.
    pub slice: HashSet<(MethodId, usize)>,
    /// Facts observed at each program point (before the statement in
    /// forward mode, after it in backward mode).
    pub facts_at: HashMap<(MethodId, usize), HashSet<AccessPath>>,
    /// Tainted static fields (global, flow-insensitive).
    pub statics: HashSet<String>,
}

impl TaintReport {
    /// All methods that contribute at least one sliced statement.
    pub fn methods(&self) -> HashSet<MethodId> {
        self.slice.iter().map(|(m, _)| *m).collect()
    }

    /// The sliced statement indices within one method, sorted.
    pub fn stmts_in(&self, m: MethodId) -> Vec<usize> {
        let mut v: Vec<usize> =
            self.slice.iter().filter(|(mm, _)| *mm == m).map(|(_, s)| *s).collect();
        v.sort_unstable();
        v
    }
}

/// Per-method info the engine precomputes.
struct MethodInfo {
    cfg: Cfg,
    /// Local bound by `@this`, if any.
    this_local: Option<Local>,
    /// Locals bound by `@paramN`, indexed by N.
    param_locals: Vec<Option<Local>>,
    /// Statement indices of `Return` statements.
    returns: Vec<usize>,
}

/// One propagation node: a fact holding at a program point.
type Node = (MethodId, usize, AccessPath);

/// Cache key: direction plus the entry node. Locals are method-relative
/// and deterministic per program, so the access path itself is the
/// "taint-seed abstraction" — two DPs entering the same helper with the
/// same fact share one summary.
type SummaryKey = (Direction, MethodId, usize, AccessPath);

/// A memoized method-segment summary: everything propagation does from one
/// entry node before leaving the method. Replaying a summary is
/// observationally identical to re-running the segment — summaries are
/// context-free (they depend only on the program, options and direction).
#[derive(Debug, Default)]
struct Summary {
    /// Intra-method nodes visited, as `(stmt, fact)`.
    nodes: Vec<(usize, AccessPath)>,
    /// Sliced statement indices inside the method.
    marks: Vec<usize>,
    /// Statements marked outside the method (caller call sites reached by
    /// return-value flow).
    extern_marks: Vec<(MethodId, usize)>,
    /// Facts that leave the method (callee entries, caller continuations).
    exits: Vec<Node>,
    /// Static-field keys tainted while inside the segment.
    statics: Vec<String>,
}

/// A summary-cache entry in portable form: the cache key (direction +
/// entry node) plus the memoized segment closure, with every vector in
/// the deterministic order [`TaintEngine::export_summaries`] guarantees.
/// `extractocol-incr` serializes these into `.exsm` archives and replays
/// them through [`TaintEngine::preload_summaries`] on warm runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryExport {
    pub direction: Direction,
    pub method: MethodId,
    pub stmt: usize,
    pub fact: AccessPath,
    /// Intra-method nodes visited, as `(stmt, fact)`, sorted.
    pub nodes: Vec<(usize, AccessPath)>,
    /// Sliced statement indices inside the method, sorted.
    pub marks: Vec<usize>,
    /// Statements marked outside the method, sorted.
    pub extern_marks: Vec<(MethodId, usize)>,
    /// Facts that leave the method (deterministic discovery order).
    pub exits: Vec<(MethodId, usize, AccessPath)>,
    /// Static-field keys tainted inside the segment (discovery order).
    pub statics: Vec<String>,
}

/// The bidirectional taint engine. Shareable across threads (`&self` runs
/// only): the summary cache is behind a `RwLock` and its counters are
/// atomics, everything else is immutable after construction.
pub struct TaintEngine<'p, 'g, 'm> {
    prog: &'p ProgramIndex<'p>,
    graph: &'g CallGraph,
    model: &'m (dyn ApiFlowModel + Sync),
    /// Optional alias information: narrows virtual-call transfer to the
    /// targets the receiver's points-to set allows, so taint only enters
    /// callees that allocation sites can actually reach.
    pts: Option<&'g PointsTo>,
    options: TaintOptions,
    infos: HashMap<MethodId, MethodInfo>,
    /// static key → (method, stmt) sites that store to it.
    static_stores: HashMap<String, Vec<(MethodId, usize)>>,
    /// static key → (method, stmt) sites that load from it.
    static_loads: HashMap<String, Vec<(MethodId, usize)>>,
    /// The interprocedural method-summary cache, shared by every run.
    summaries: RwLock<HashMap<SummaryKey, Arc<Summary>>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl<'p, 'g, 'm> TaintEngine<'p, 'g, 'm> {
    /// Prepares the engine: builds CFGs and static-field indexes.
    pub fn new(
        prog: &'p ProgramIndex<'p>,
        graph: &'g CallGraph,
        model: &'m (dyn ApiFlowModel + Sync),
        options: TaintOptions,
    ) -> Self {
        Self::with_pointsto(prog, graph, model, options, None)
    }

    /// Like [`TaintEngine::new`], with alias information from a solved
    /// points-to analysis. Virtual/interface call transfer then consults
    /// the receiver's points-to set and skips CHA targets no reaching
    /// allocation site can dispatch to; empty sets keep every target
    /// (conservative fallback). Results are deterministic either way.
    pub fn with_pointsto(
        prog: &'p ProgramIndex<'p>,
        graph: &'g CallGraph,
        model: &'m (dyn ApiFlowModel + Sync),
        options: TaintOptions,
        pts: Option<&'g PointsTo>,
    ) -> Self {
        Self::with_scope(prog, graph, model, options, pts, None)
    }

    /// Like [`TaintEngine::with_pointsto`], restricted to an analysis
    /// scope. When `scope` is `Some`, only methods in the set get CFGs and
    /// static-field index entries — methods outside the scope are never
    /// visited (the targeted mode's cone). `None` is whole-program.
    pub fn with_scope(
        prog: &'p ProgramIndex<'p>,
        graph: &'g CallGraph,
        model: &'m (dyn ApiFlowModel + Sync),
        options: TaintOptions,
        pts: Option<&'g PointsTo>,
        scope: Option<&HashSet<MethodId>>,
    ) -> Self {
        let mut infos = HashMap::new();
        let mut static_stores: HashMap<String, Vec<(MethodId, usize)>> = HashMap::new();
        let mut static_loads: HashMap<String, Vec<(MethodId, usize)>> = HashMap::new();
        for mid in prog.concrete_methods() {
            if let Some(scope) = scope {
                if !scope.contains(&mid) {
                    continue;
                }
            }
            let method = prog.method(mid);
            let cfg = Cfg::build(method);
            let mut this_local = None;
            let mut param_locals = vec![None; method.params.len()];
            let mut returns = Vec::new();
            for (i, s) in method.body.iter().enumerate() {
                match s {
                    Stmt::Identity { local, kind } => match kind {
                        IdentityKind::This => this_local = Some(*local),
                        IdentityKind::Param(p) => {
                            if let Some(slot) = param_locals.get_mut(*p as usize) {
                                *slot = Some(*local);
                            }
                        }
                        IdentityKind::CaughtException => {}
                    },
                    Stmt::Return(_) => returns.push(i),
                    Stmt::Assign { place, expr } => {
                        if let Place::StaticField(f) = place {
                            static_stores
                                .entry(format!("{}#{}", f.class, f.name))
                                .or_default()
                                .push((mid, i));
                        }
                        if let Expr::Load(Place::StaticField(f)) = expr {
                            static_loads
                                .entry(format!("{}#{}", f.class, f.name))
                                .or_default()
                                .push((mid, i));
                        }
                    }
                    _ => {}
                }
            }
            infos.insert(mid, MethodInfo { cfg, this_local, param_locals, returns });
        }
        TaintEngine {
            prog,
            graph,
            model,
            pts,
            options,
            infos,
            static_stores,
            static_loads,
            summaries: RwLock::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Runs propagation from the seeds and returns the slice/facts report.
    pub fn run(&self, direction: Direction, seeds: &[Seed]) -> TaintReport {
        Propagation::new(self, direction).run(seeds)
    }

    /// Method-summary cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized summaries currently in the cache.
    pub fn summary_count(&self) -> usize {
        self.summaries.read().unwrap().len()
    }

    /// Snapshots every memoized summary in a deterministic order (sorted
    /// by cache key). Summary values are themselves deterministic — the
    /// segment BFS is single-entry and its result vectors are sorted or in
    /// deterministic insertion order — so the export is byte-stable across
    /// worker counts. This is the persistence surface for the `.exsm`
    /// archives in `extractocol-incr`.
    pub fn export_summaries(&self) -> Vec<SummaryExport> {
        let map = self.summaries.read().unwrap();
        let mut out: Vec<SummaryExport> = map
            .iter()
            .map(|((dir, m, stmt, fact), s)| SummaryExport {
                direction: *dir,
                method: *m,
                stmt: *stmt,
                fact: fact.clone(),
                nodes: s.nodes.clone(),
                marks: s.marks.clone(),
                extern_marks: s.extern_marks.clone(),
                exits: s.exits.clone(),
                statics: s.statics.clone(),
            })
            .collect();
        drop(map);
        out.sort_by(|a, b| {
            (a.direction, a.method, a.stmt, &a.fact).cmp(&(b.direction, b.method, b.stmt, &b.fact))
        });
        out
    }

    /// Seeds the summary cache with previously exported entries (a warm
    /// start from a `.exsm` archive). The caller is responsible for
    /// validity: an entry may only be preloaded when the program state its
    /// summary was computed from is provably unchanged — that is what the
    /// incremental engine's fingerprints establish. Existing entries win.
    pub fn preload_summaries(&self, entries: Vec<SummaryExport>) {
        let mut map = self.summaries.write().unwrap();
        for e in entries {
            let key: SummaryKey = (e.direction, e.method, e.stmt, e.fact);
            map.entry(key).or_insert_with(|| {
                Arc::new(Summary {
                    nodes: e.nodes,
                    marks: e.marks,
                    extern_marks: e.extern_marks,
                    exits: e.exits,
                    statics: e.statics,
                })
            });
        }
    }

    /// Explicit targets of a call site, narrowed by the receiver's
    /// points-to set when alias information is available. A fact entering
    /// a virtual call only steps into implementations some allocation
    /// site flowing to the receiver can dispatch to; with no alias info,
    /// an empty set, or a non-virtual site, the graph's targets stand.
    fn call_targets(&self, site: CallSite, call: &Call) -> Vec<MethodId> {
        let targets = self.graph.targets_of(site);
        let Some(pts) = self.pts else { return targets.to_vec() };
        if !matches!(call.kind, CallKind::Virtual | CallKind::Interface) {
            return targets.to_vec();
        }
        let Some(recv) = call.receiver.as_ref().and_then(Value::as_local) else {
            return targets.to_vec();
        };
        let classes = pts.classes_of(site.0, recv);
        if classes.is_empty() {
            return targets.to_vec();
        }
        let mut allowed: Vec<MethodId> = Vec::new();
        for class in classes {
            if !self.prog.is_subtype(class, &call.callee.class) {
                continue;
            }
            if let Some(t) =
                self.prog.resolve_method(class, &call.callee.name, call.callee.params.len())
            {
                if !allowed.contains(&t) {
                    allowed.push(t);
                }
            }
        }
        if allowed.is_empty() {
            // Every reaching object was ill-typed for this site — keep the
            // CHA answer rather than inventing an unsound "no callees".
            return targets.to_vec();
        }
        targets.iter().copied().filter(|t| allowed.contains(t)).collect()
    }

    /// True when `callee` survives alias narrowing at `site`.
    fn calls_into(&self, site: CallSite, call: &Call, callee: MethodId) -> bool {
        self.call_targets(site, call).contains(&callee)
    }

    /// Public view of the per-site alias narrowing — the exact target list
    /// propagation steps into at `site`. The incremental engine folds this
    /// into validity fingerprints so a summary is invalidated whenever the
    /// narrowed dispatch at any of its call sites changes.
    pub fn narrowed_targets(&self, site: CallSite, call: &Call) -> Vec<MethodId> {
        self.call_targets(site, call)
    }

    /// True when `m` is inside this engine's analysis scope (always true
    /// for whole-program engines).
    pub fn in_scope(&self, m: MethodId) -> bool {
        self.infos.contains_key(&m) || !self.prog.method(m).has_body
    }

    fn info(&self, m: MethodId) -> &MethodInfo {
        self.infos
            .get(&m)
            .unwrap_or_else(|| panic!("no method info for {}", self.prog.method_display(m)))
    }

    /// Statement-level successors in the given direction.
    fn neighbors(&self, m: MethodId, stmt: usize, dir: Direction) -> Vec<usize> {
        let info = self.info(m);
        let body_len = self.prog.method(m).body.len();
        if body_len == 0 {
            return Vec::new();
        }
        let bi = info.cfg.block_of_stmt[stmt];
        let block = &info.cfg.blocks[bi];
        match dir {
            Direction::Forward => {
                if stmt + 1 < block.end {
                    vec![stmt + 1]
                } else {
                    block.succs.iter().map(|&s| info.cfg.blocks[s].start).collect()
                }
            }
            Direction::Backward => {
                if stmt > block.start {
                    vec![stmt - 1]
                } else {
                    block.preds.iter().map(|&p| info.cfg.blocks[p].end - 1).collect()
                }
            }
        }
    }
}

/// In-flight state of one method-segment (summary) computation. While a
/// segment is active, `enqueue`/`mark`/`taint_static` record into it
/// instead of the global run state, which keeps the resulting summary
/// context-free and therefore cacheable.
struct SegState {
    method: MethodId,
    queue: VecDeque<(usize, AccessPath)>,
    visited: HashSet<(usize, AccessPath)>,
    marks: HashSet<usize>,
    extern_marks: HashSet<(MethodId, usize)>,
    exits: Vec<Node>,
    exit_set: HashSet<Node>,
    statics: Vec<String>,
    static_set: HashSet<String>,
}

impl SegState {
    fn new(method: MethodId) -> SegState {
        SegState {
            method,
            queue: VecDeque::new(),
            visited: HashSet::new(),
            marks: HashSet::new(),
            extern_marks: HashSet::new(),
            exits: Vec::new(),
            exit_set: HashSet::new(),
            statics: Vec::new(),
            static_set: HashSet::new(),
        }
    }

    fn into_summary(self) -> Summary {
        let mut nodes: Vec<(usize, AccessPath)> = self.visited.into_iter().collect();
        nodes.sort();
        let mut marks: Vec<usize> = self.marks.into_iter().collect();
        marks.sort_unstable();
        let mut extern_marks: Vec<(MethodId, usize)> = self.extern_marks.into_iter().collect();
        extern_marks.sort();
        Summary { nodes, marks, extern_marks, exits: self.exits, statics: self.statics }
    }
}

/// One propagation run's mutable state.
struct Propagation<'e, 'p, 'g, 'm> {
    eng: &'e TaintEngine<'p, 'g, 'm>,
    dir: Direction,
    queue: VecDeque<Node>,
    visited: HashSet<Node>,
    /// Nodes whose effects are fully in the report — either stepped
    /// directly or covered by an applied summary. Popping a covered node
    /// is a no-op (its closure is already accounted for).
    processed: HashSet<Node>,
    report: TaintReport,
    tainted_statics: HashSet<String>,
    /// Active summary computation, if any.
    seg: Option<SegState>,
}

impl<'e, 'p, 'g, 'm> Propagation<'e, 'p, 'g, 'm> {
    fn new(eng: &'e TaintEngine<'p, 'g, 'm>, dir: Direction) -> Self {
        Propagation {
            eng,
            dir,
            queue: VecDeque::new(),
            visited: HashSet::new(),
            processed: HashSet::new(),
            report: TaintReport::default(),
            tainted_statics: HashSet::new(),
            seg: None,
        }
    }

    fn cap(&self) -> usize {
        self.eng.options.max_field_depth
    }

    fn enqueue(&mut self, m: MethodId, stmt: usize, fact: AccessPath) {
        if self.eng.prog.method(m).body.is_empty() || !self.eng.in_scope(m) {
            return;
        }
        let stmt = stmt.min(self.eng.prog.method(m).body.len() - 1);
        if let Some(seg) = &mut self.seg {
            if m == seg.method {
                let key = (stmt, fact);
                if seg.visited.insert(key.clone()) {
                    seg.queue.push_back(key);
                }
            } else {
                let node: Node = (m, stmt, fact);
                if seg.exit_set.insert(node.clone()) {
                    seg.exits.push(node);
                }
            }
            return;
        }
        let key = (m, stmt, fact);
        if self.visited.insert(key.clone()) {
            self.report.facts_at.entry((m, stmt)).or_default().insert(key.2.clone());
            self.queue.push_back(key);
        }
    }

    fn mark(&mut self, m: MethodId, stmt: usize) {
        if let Some(seg) = &mut self.seg {
            if m == seg.method {
                seg.marks.insert(stmt);
            } else {
                seg.extern_marks.insert((m, stmt));
            }
            return;
        }
        self.report.slice.insert((m, stmt));
    }

    fn taint_static(&mut self, key: String) {
        if let Some(seg) = &mut self.seg {
            if seg.static_set.insert(key.clone()) {
                seg.statics.push(key);
            }
            return;
        }
        if self.tainted_statics.insert(key.clone()) {
            self.report.statics.insert(key.clone());
            // Flow-insensitive for statics: re-seed at every load (forward)
            // or store (backward) of this field.
            match self.dir {
                Direction::Forward => {
                    if let Some(loads) = self.eng.static_loads.get(&key) {
                        for &(m, s) in loads {
                            self.enqueue(
                                m,
                                s,
                                AccessPath { root: Root::Static(key.clone()), fields: Vec::new() },
                            );
                        }
                    }
                }
                Direction::Backward => {
                    if let Some(stores) = self.eng.static_stores.get(&key) {
                        for &(m, s) in stores {
                            self.enqueue(
                                m,
                                s,
                                AccessPath { root: Root::Static(key.clone()), fields: Vec::new() },
                            );
                        }
                    }
                }
            }
        }
    }

    fn step(&mut self, m: MethodId, stmt: usize, fact: &AccessPath) {
        match self.dir {
            Direction::Forward => self.step_forward(m, stmt, fact),
            Direction::Backward => self.step_backward(m, stmt, fact),
        }
    }

    fn run(mut self, seeds: &[Seed]) -> TaintReport {
        for s in seeds {
            if let Root::Static(k) = &s.fact.root {
                self.taint_static(k.clone());
            }
            self.enqueue(s.method, s.stmt, s.fact.clone());
        }
        let use_cache = self.eng.options.summary_cache;
        while let Some((m, stmt, fact)) = self.queue.pop_front() {
            if !use_cache {
                self.step(m, stmt, &fact);
                continue;
            }
            if !self.processed.insert((m, stmt, fact.clone())) {
                continue; // already covered by an applied summary
            }
            let summary = self.summary_for(m, stmt, fact);
            self.apply_summary(m, &summary);
        }
        self.report
    }

    /// Looks up (or computes and memoizes) the segment summary for one
    /// entry node.
    fn summary_for(&mut self, m: MethodId, stmt: usize, fact: AccessPath) -> Arc<Summary> {
        let key: SummaryKey = (self.dir, m, stmt, fact.clone());
        if let Some(hit) = self.eng.summaries.read().unwrap().get(&key) {
            self.eng.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.eng.cache_misses.fetch_add(1, Ordering::Relaxed);
        let summary = Arc::new(self.compute_segment(m, stmt, fact));
        // Under contention another thread may have raced us to the same
        // key; keep the first insertion (both are equivalent closures).
        Arc::clone(self.eng.summaries.write().unwrap().entry(key).or_insert(summary))
    }

    /// Computes the intra-method closure from one entry node, recording
    /// every cross-method effect as an exit. Context-free: touches no
    /// global run state.
    fn compute_segment(&mut self, m: MethodId, stmt: usize, fact: AccessPath) -> Summary {
        debug_assert!(self.seg.is_none(), "segments do not nest");
        let mut seg = SegState::new(m);
        seg.visited.insert((stmt, fact.clone()));
        seg.queue.push_back((stmt, fact));
        self.seg = Some(seg);
        while let Some((s, f)) = self.seg.as_mut().and_then(|seg| seg.queue.pop_front()) {
            self.step(m, s, &f);
        }
        self.seg.take().expect("segment state present").into_summary()
    }

    /// Replays a memoized summary into the global run state.
    fn apply_summary(&mut self, m: MethodId, summary: &Summary) {
        for (s, f) in &summary.nodes {
            let node: Node = (m, *s, f.clone());
            if self.visited.insert(node.clone()) {
                self.report.facts_at.entry((m, *s)).or_default().insert(f.clone());
            }
            self.processed.insert(node);
        }
        for &s in &summary.marks {
            self.report.slice.insert((m, s));
        }
        for &(em, es) in &summary.extern_marks {
            self.report.slice.insert((em, es));
        }
        for k in &summary.statics {
            self.taint_static(k.clone());
        }
        for (xm, xs, xf) in &summary.exits {
            self.enqueue(*xm, *xs, xf.clone());
        }
    }

    // ---- shared helpers ------------------------------------------------------

    /// Does `v` read the root of `fact`?
    fn value_matches(&self, v: &Value, fact: &AccessPath) -> bool {
        matches!(v, Value::Local(l) if fact.rooted_at(*l))
    }

    /// Facts generated on `place` when a tainted value with `extra_fields`
    /// below the matched operand flows into it.
    fn fact_for_place(&self, place: &Place, suffix: &[String]) -> Option<AccessPath> {
        let cap = self.cap();
        match place {
            Place::Local(l) => Some(AccessPath {
                root: Root::Local(*l),
                fields: suffix.iter().take(cap).cloned().collect(),
            }),
            Place::InstanceField { base, field } => {
                let mut fields = vec![field.name.clone()];
                fields.extend(suffix.iter().cloned());
                fields.truncate(cap);
                Some(AccessPath { root: Root::Local(*base), fields })
            }
            Place::StaticField(f) => Some(AccessPath {
                root: Root::Static(format!("{}#{}", f.class, f.name)),
                fields: suffix.iter().take(cap).cloned().collect(),
            }),
            Place::ArrayElem { base, .. } => {
                let mut fields = vec!["[]".to_string()];
                fields.extend(suffix.iter().cloned());
                fields.truncate(cap);
                Some(AccessPath { root: Root::Local(*base), fields })
            }
        }
    }

    /// If `fact` is covered by reading `place`, the remaining field suffix
    /// below the place. `x.f.g` read via `x.f` → suffix `[g]`; read via
    /// `x.f.g` → `[]`; a whole-object fact `x` covers any read of `x.*`.
    fn place_reads_fact(&self, place: &Place, fact: &AccessPath) -> Option<Vec<String>> {
        let (root_local, lead): (Local, Vec<String>) = match place {
            Place::Local(l) => (*l, vec![]),
            Place::InstanceField { base, field } => (*base, vec![field.name.clone()]),
            Place::ArrayElem { base, .. } => (*base, vec!["[]".to_string()]),
            Place::StaticField(f) => {
                let key = format!("{}#{}", f.class, f.name);
                return match &fact.root {
                    Root::Static(k) if *k == key => Some(fact.fields.clone()),
                    _ => None,
                };
            }
        };
        if !fact.rooted_at(root_local) {
            return None;
        }
        // fact.fields vs lead: fact covers the read if lead is a prefix of
        // fact.fields (suffix remains) or fact.fields is a prefix of lead
        // (whole-object taint, suffix empty).
        if fact.fields.len() >= lead.len() {
            if fact.fields[..lead.len()] == lead[..] {
                Some(fact.fields[lead.len()..].to_vec())
            } else {
                None
            }
        } else if lead[..fact.fields.len()] == fact.fields[..] {
            Some(Vec::new())
        } else {
            None
        }
    }

    /// Whether assigning to `place` strongly kills `fact` (exact local
    /// overwrite; field/array stores are weak updates).
    fn place_kills_fact(&self, place: &Place, fact: &AccessPath) -> bool {
        match place {
            Place::Local(l) => fact.rooted_at(*l),
            _ => false,
        }
    }

    fn call_operand_value<'a>(&self, call: &'a Call, src: OperandSource) -> Option<&'a Value> {
        match src {
            OperandSource::Receiver => call.receiver.as_ref(),
            OperandSource::Arg(i) => call.args.get(i),
        }
    }

    // ---- forward ------------------------------------------------------------

    fn step_forward(&mut self, m: MethodId, stmt_idx: usize, fact: &AccessPath) {
        let body = &self.eng.prog.method(m).body;
        let stmt = &body[stmt_idx];
        let mut out: Vec<AccessPath> = Vec::new();
        let mut killed = false;
        let mut touched = false;

        match stmt {
            Stmt::Assign { place, expr } => {
                // gen from expr
                match expr {
                    Expr::Invoke(call) => {
                        touched |= self.forward_call(m, stmt_idx, call, Some(place), fact);
                    }
                    Expr::Use(v) => {
                        if self.value_matches(v, fact) {
                            if let Some(nf) = self.fact_for_place(place, &fact.fields) {
                                out.push(nf);
                                touched = true;
                            }
                        }
                    }
                    Expr::Load(p) => {
                        if let Some(suffix) = self.place_reads_fact(p, fact) {
                            if let Some(nf) = self.fact_for_place(place, &suffix) {
                                out.push(nf);
                                touched = true;
                            }
                        }
                    }
                    Expr::Un(_, v) | Expr::Cast(_, v) | Expr::InstanceOf(_, v) => {
                        if self.value_matches(v, fact) {
                            if let Some(nf) = self.fact_for_place(place, &[]) {
                                out.push(nf);
                                touched = true;
                            }
                        }
                    }
                    Expr::Bin(_, a, b) => {
                        if self.value_matches(a, fact) || self.value_matches(b, fact) {
                            if let Some(nf) = self.fact_for_place(place, &[]) {
                                out.push(nf);
                                touched = true;
                            }
                        }
                    }
                    Expr::New(_) | Expr::NewArray(_, _) => {}
                }
                killed = self.place_kills_fact(place, fact);
                if killed {
                    touched = true;
                }
            }
            Stmt::Invoke(call) => {
                touched |= self.forward_call(m, stmt_idx, call, None, fact);
            }
            Stmt::Return(v) => {
                if let Some(v) = v {
                    if self.value_matches(v, fact) {
                        touched = true;
                        self.forward_return_value(m, fact);
                    }
                }
                // Mutated parameter objects flow back to caller arguments.
                if !fact.fields.is_empty() {
                    self.forward_exit_params(m, fact);
                }
            }
            Stmt::If { cond, .. } => {
                touched |=
                    self.value_matches(&cond.lhs, fact) || self.value_matches(&cond.rhs, fact);
            }
            Stmt::Switch { scrutinee, .. } => {
                touched |= self.value_matches(scrutinee, fact);
            }
            Stmt::Throw(v) => {
                touched |= self.value_matches(v, fact);
            }
            Stmt::Identity { .. } | Stmt::Goto { .. } | Stmt::Nop => {}
        }

        if touched {
            self.mark(m, stmt_idx);
        }
        // propagate to successors
        let succs = self.eng.neighbors(m, stmt_idx, Direction::Forward);
        for nf in out {
            if let Root::Static(k) = &nf.root {
                self.taint_static(k.clone());
            }
            for &s in &succs {
                self.enqueue(m, s, nf.clone());
            }
        }
        if !killed {
            for &s in &succs {
                self.enqueue(m, s, fact.clone());
            }
        }
    }

    /// Forward transfer across a call site; returns whether the statement
    /// touched the fact.
    fn forward_call(
        &mut self,
        m: MethodId,
        stmt_idx: usize,
        call: &Call,
        result: Option<&Place>,
        fact: &AccessPath,
    ) -> bool {
        let mut touched = false;
        let site: CallSite = (m, stmt_idx);
        let succs = self.eng.neighbors(m, stmt_idx, Direction::Forward);

        // 1. Explicit concrete targets (alias-narrowed): map into callee
        //    entry.
        let targets = self.eng.call_targets(site, call);
        for &t in &targets {
            let info = self.eng.info(t);
            // receiver
            if let Some(rv) = &call.receiver {
                if self.value_matches(rv, fact) {
                    if let Some(this) = info.this_local {
                        let nf = fact.rebase(Root::Local(this), &[], self.cap());
                        self.enqueue(t, 0, nf);
                        touched = true;
                    }
                }
            }
            // args
            for (i, av) in call.args.iter().enumerate() {
                if self.value_matches(av, fact) {
                    if let Some(Some(pl)) = info.param_locals.get(i) {
                        let nf = fact.rebase(Root::Local(*pl), &[], self.cap());
                        self.enqueue(t, 0, nf);
                        touched = true;
                    }
                }
            }
        }

        // 2. Implicit callback edges.
        let implicit = self.eng.graph.implicit_of(site).to_vec();
        for e in &implicit {
            let info = self.eng.info(e.target);
            if let Some(src) = e.recv_from {
                if let Some(v) = self.call_operand_value(call, src) {
                    if self.value_matches(v, fact) {
                        if let Some(this) = info.this_local {
                            let nf = fact.rebase(Root::Local(this), &[], self.cap());
                            self.enqueue(e.target, 0, nf);
                            touched = true;
                        }
                    }
                }
            }
            for (pi, src) in e.param_from.iter().enumerate() {
                let Some(src) = src else { continue };
                if let Some(v) = self.call_operand_value(call, *src) {
                    if self.value_matches(v, fact) {
                        if let Some(Some(pl)) = info.param_locals.get(pi) {
                            let nf = fact.rebase(Root::Local(*pl), &[], self.cap());
                            self.enqueue(e.target, 0, nf);
                            touched = true;
                        }
                    }
                }
            }
        }

        // 3. Modelled call (no concrete targets): apply the API flow model.
        if targets.is_empty() && implicit.is_empty() {
            let mut in_slots: Vec<Slot> = Vec::new();
            if let Some(rv) = &call.receiver {
                if self.value_matches(rv, fact) {
                    in_slots.push(Slot::Receiver);
                }
            }
            for (i, av) in call.args.iter().enumerate() {
                if self.value_matches(av, fact) {
                    in_slots.push(Slot::Arg(i));
                }
            }
            if !in_slots.is_empty() {
                touched = true;
                for (from, to) in self.eng.model.flows(&call.callee) {
                    if !in_slots.contains(&from) {
                        continue;
                    }
                    let target_value: Option<AccessPath> = match to {
                        Slot::Return => result.and_then(|p| self.fact_for_place(p, &[])),
                        Slot::Receiver => {
                            call.receiver.as_ref().and_then(Value::as_local).map(AccessPath::local)
                        }
                        Slot::Arg(i) => {
                            call.args.get(i).and_then(Value::as_local).map(AccessPath::local)
                        }
                    };
                    if let Some(nf) = target_value {
                        if let Root::Static(k) = &nf.root {
                            self.taint_static(k.clone());
                        }
                        for &s in &succs {
                            self.enqueue(m, s, nf.clone());
                        }
                    }
                }
            }
        }
        touched
    }

    /// A tainted value is returned from `callee`: taint the result place at
    /// every call site, and follow implicit `chains_to` links.
    fn forward_return_value(&mut self, callee: MethodId, fact: &AccessPath) {
        let callers = match self.eng.graph.callers.get(&callee) {
            Some(c) => c.clone(),
            None => return,
        };
        for (cm, cs) in callers {
            let body = &self.eng.prog.method(cm).body;
            let stmt = &body[cs];
            // Explicit call with an assigned result.
            if let Stmt::Assign { place, expr: Expr::Invoke(call) } = stmt {
                if self.eng.calls_into((cm, cs), call, callee) {
                    if let Some(nf) = self.fact_for_place(place, &fact.fields) {
                        self.mark(cm, cs);
                        if let Root::Static(k) = &nf.root {
                            self.taint_static(k.clone());
                        }
                        for s in self.eng.neighbors(cm, cs, Direction::Forward) {
                            self.enqueue(cm, s, nf.clone());
                        }
                    }
                }
            }
            // Implicit chain: the callback's return feeds the follow-up
            // callback's parameter (e.g. doInBackground → onPostExecute).
            for e in self.eng.graph.implicit_of((cm, cs)).to_vec() {
                if e.target != callee {
                    continue;
                }
                if let Some((chained, pidx)) = e.chains_to {
                    let info = self.eng.info(chained);
                    if let Some(Some(pl)) = info.param_locals.get(pidx as usize) {
                        let nf = fact.rebase(Root::Local(*pl), &[], self.cap());
                        self.enqueue(chained, 0, nf);
                    }
                    // The chained callback runs on the same receiver object:
                    // carry receiver-rooted facts over as well.
                    if let (Some(OperandSource::Receiver), Some(this)) =
                        (e.recv_from, self.eng.info(chained).this_local)
                    {
                        let callee_info = self.eng.info(callee);
                        if let Some(callee_this) = callee_info.this_local {
                            // Any fact rooted at callee's `this` with fields
                            // persists on the object; re-seed in chained cb.
                            if fact.rooted_at(callee_this) && !fact.fields.is_empty() {
                                let nf = fact.rebase(Root::Local(this), &[], self.cap());
                                self.enqueue(chained, 0, nf);
                            }
                        }
                    }
                }
            }
        }
    }

    /// A parameter/receiver object was mutated (`fact` has fields) and the
    /// callee is exiting: propagate the mutation back to caller operands.
    fn forward_exit_params(&mut self, callee: MethodId, fact: &AccessPath) {
        let info = self.eng.info(callee);
        // Which entry binding is the fact rooted at?
        let as_operand: Option<OperandSource> =
            if info.this_local.map(|t| fact.rooted_at(t)).unwrap_or(false) {
                Some(OperandSource::Receiver)
            } else {
                info.param_locals.iter().enumerate().find_map(|(i, pl)| {
                    pl.filter(|pl| fact.rooted_at(*pl)).map(|_| OperandSource::Arg(i))
                })
            };
        let Some(op) = as_operand else { return };
        let callers = match self.eng.graph.callers.get(&callee) {
            Some(c) => c.clone(),
            None => return,
        };
        for (cm, cs) in callers {
            let body = &self.eng.prog.method(cm).body;
            let Some(call) = body[cs].call() else { continue };
            let Some(v) = self.call_operand_value(call, op) else { continue };
            let Some(l) = v.as_local() else { continue };
            let nf = fact.rebase(Root::Local(l), &[], self.cap());
            for s in self.eng.neighbors(cm, cs, Direction::Forward) {
                self.enqueue(cm, s, nf.clone());
            }
        }
    }

    // ---- backward -----------------------------------------------------------

    fn step_backward(&mut self, m: MethodId, stmt_idx: usize, fact: &AccessPath) {
        let body = &self.eng.prog.method(m).body;
        let stmt = &body[stmt_idx];
        let mut out: Vec<AccessPath> = Vec::new();
        let mut killed = false;
        let mut touched = false;

        match stmt {
            Stmt::Assign { place, expr } => {
                // Does this statement define (part of) the fact?
                let defines = self.place_reads_fact(place, fact);
                if let Some(suffix) = defines {
                    touched = true;
                    // "an object is untainted at its definition" — but only
                    // strong definitions (whole locals) kill.
                    killed = self.place_kills_fact(place, fact);
                    match expr {
                        Expr::Invoke(call) => {
                            self.backward_call(m, stmt_idx, call, &suffix, fact);
                        }
                        Expr::Use(v) => {
                            if let Some(l) = v.as_local() {
                                out.push(AccessPath {
                                    root: Root::Local(l),
                                    fields: suffix.clone(),
                                });
                            }
                        }
                        Expr::Load(p) => {
                            // fact came from reading p: taint p (+suffix)
                            if let Some(nf) = self.fact_for_place(p, &suffix) {
                                out.push(nf);
                            }
                        }
                        Expr::Un(_, v) | Expr::Cast(_, v) | Expr::InstanceOf(_, v) => {
                            if let Some(l) = v.as_local() {
                                out.push(AccessPath::local(l));
                            }
                        }
                        Expr::Bin(_, a, b) => {
                            for v in [a, b] {
                                if let Some(l) = v.as_local() {
                                    out.push(AccessPath::local(l));
                                }
                            }
                        }
                        Expr::New(_) | Expr::NewArray(_, _) => {
                            // Allocation: origin reached; nothing upstream.
                        }
                    }
                } else if let Expr::Invoke(call) = expr {
                    // The call may have mutated a tainted operand object.
                    touched |= self.backward_call_mutation(m, stmt_idx, call, fact);
                }
            }
            Stmt::Invoke(call) => {
                touched |= self.backward_call_mutation(m, stmt_idx, call, fact);
            }
            Stmt::Return(_) | Stmt::Goto { .. } | Stmt::Nop | Stmt::Throw(_) => {}
            Stmt::If { cond, .. } => {
                // Conditions do not generate backward facts, but note use.
                let _ = cond;
            }
            Stmt::Switch { .. } => {}
            Stmt::Identity { local, kind } => {
                // Backward flow reaching a parameter binding exits to
                // callers ("the taint information of callee's arguments is
                // propagated to caller's arguments").
                if fact.rooted_at(*local) {
                    touched = true;
                    self.backward_exit_to_callers(m, *kind, fact);
                }
            }
        }

        if touched {
            self.mark(m, stmt_idx);
        }
        let preds = self.eng.neighbors(m, stmt_idx, Direction::Backward);
        for nf in out {
            if let Root::Static(k) = &nf.root {
                self.taint_static(k.clone());
            }
            for &p in &preds {
                self.enqueue(m, p, nf.clone());
            }
        }
        if !killed {
            for &p in &preds {
                self.enqueue(m, p, fact.clone());
            }
        }
        // Entry statement with a parameter-rooted fact and no preds: the
        // identity handler above covers it because identity stmts are at
        // the entry block.
    }

    /// Backward transfer when the fact was defined by this call's result:
    /// enter the callee at its return statements.
    fn backward_call(
        &mut self,
        m: MethodId,
        stmt_idx: usize,
        call: &Call,
        suffix: &[String],
        _fact: &AccessPath,
    ) {
        let site: CallSite = (m, stmt_idx);
        let targets = self.eng.call_targets(site, call);
        let mut modeled = targets.is_empty();
        for &t in &targets {
            let info = self.eng.info(t);
            let body = &self.eng.prog.method(t).body;
            for &ri in &info.returns {
                if let Stmt::Return(Some(v)) = &body[ri] {
                    if let Some(l) = v.as_local() {
                        let mut fields = suffix.to_vec();
                        fields.truncate(self.cap());
                        self.enqueue(t, ri, AccessPath { root: Root::Local(l), fields });
                    }
                }
            }
        }
        if self.eng.graph.implicit_of(site).is_empty() && modeled {
            modeled = true;
        } else if !targets.is_empty() {
            modeled = false;
        }
        if modeled {
            // Reverse the API model: result tainted ⇒ inputs tainted.
            for (from, to) in self.eng.model.flows(&call.callee) {
                if to != Slot::Return {
                    continue;
                }
                let v = match from {
                    Slot::Receiver => call.receiver.as_ref(),
                    Slot::Arg(i) => call.args.get(i),
                    Slot::Return => None,
                };
                if let Some(l) = v.and_then(Value::as_local) {
                    let nf = AccessPath::local(l);
                    for p in self.eng.neighbors(m, stmt_idx, Direction::Backward) {
                        self.enqueue(m, p, nf.clone());
                    }
                }
            }
        }
    }

    /// Backward transfer when a tainted object may have been mutated by
    /// this call (fact rooted at one of its operands): enter the callee
    /// backward from its exits with the fact re-rooted at the matching
    /// parameter, and for modelled calls reverse receiver/arg flows.
    fn backward_call_mutation(
        &mut self,
        m: MethodId,
        stmt_idx: usize,
        call: &Call,
        fact: &AccessPath,
    ) -> bool {
        let mut touched = false;
        let site: CallSite = (m, stmt_idx);
        let op_of_fact: Option<OperandSource> =
            if call.receiver.as_ref().map(|v| self.value_matches(v, fact)).unwrap_or(false) {
                Some(OperandSource::Receiver)
            } else {
                call.args.iter().position(|v| self.value_matches(v, fact)).map(OperandSource::Arg)
            };
        let Some(op) = op_of_fact else { return false };
        let targets = self.eng.call_targets(site, call);
        for &t in &targets {
            let info = self.eng.info(t);
            let entry_local = match op {
                OperandSource::Receiver => info.this_local,
                OperandSource::Arg(i) => info.param_locals.get(i).copied().flatten(),
            };
            if let Some(el) = entry_local {
                let nf = fact.rebase(Root::Local(el), &[], self.cap());
                let body_len = self.eng.prog.method(t).body.len();
                for &ri in &info.returns {
                    self.enqueue(t, ri, nf.clone());
                }
                if info.returns.is_empty() && body_len > 0 {
                    self.enqueue(t, body_len - 1, nf.clone());
                }
                touched = true;
            }
        }
        if targets.is_empty() && self.eng.graph.implicit_of(site).is_empty() {
            // Modelled call: receiver/arg mutated from other inputs — e.g.
            // `sb.append(x)` backward: tainted sb ⇒ taint x.
            let mut any = false;
            for (from, to) in self.eng.model.flows(&call.callee) {
                let to_matches = match to {
                    Slot::Receiver => op == OperandSource::Receiver,
                    Slot::Arg(i) => op == OperandSource::Arg(i),
                    Slot::Return => false,
                };
                if !to_matches {
                    continue;
                }
                any = true;
                let v = match from {
                    Slot::Receiver => call.receiver.as_ref(),
                    Slot::Arg(i) => call.args.get(i),
                    Slot::Return => None,
                };
                if let Some(l) = v.and_then(Value::as_local) {
                    let nf = AccessPath::local(l);
                    for p in self.eng.neighbors(m, stmt_idx, Direction::Backward) {
                        self.enqueue(m, p, nf.clone());
                    }
                }
            }
            touched = any;
        }
        touched
    }

    /// A backward fact reached a parameter/this binding: continue at every
    /// caller, re-rooted at the corresponding operand.
    fn backward_exit_to_callers(&mut self, m: MethodId, kind: IdentityKind, fact: &AccessPath) {
        let callers = match self.eng.graph.callers.get(&m) {
            Some(c) => c.clone(),
            None => return,
        };
        for (cm, cs) in callers {
            let body = &self.eng.prog.method(cm).body;
            let Some(call) = body[cs].call() else { continue };
            // Figure out the operand for this binding, both for explicit
            // calls and implicit callback edges.
            let mut operand: Option<&Value> = None;
            if self.eng.calls_into((cm, cs), call, m) {
                operand = match kind {
                    IdentityKind::This => call.receiver.as_ref(),
                    IdentityKind::Param(i) => call.args.get(i as usize),
                    IdentityKind::CaughtException => None,
                };
            } else {
                for e in self.eng.graph.implicit_of((cm, cs)) {
                    if e.target != m {
                        continue;
                    }
                    operand = match kind {
                        IdentityKind::This => {
                            e.recv_from.and_then(|src| self.call_operand_value(call, src))
                        }
                        IdentityKind::Param(i) => e
                            .param_from
                            .get(i as usize)
                            .copied()
                            .flatten()
                            .and_then(|src| self.call_operand_value(call, src)),
                        IdentityKind::CaughtException => None,
                    };
                    if operand.is_some() {
                        break;
                    }
                }
            }
            if let Some(l) = operand.and_then(Value::as_local) {
                let nf = fact.rebase(Root::Local(l), &[], self.cap());
                self.mark(cm, cs);
                for p in self.eng.neighbors(cm, cs, Direction::Backward) {
                    self.enqueue(cm, p, nf.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callbacks::CallbackRegistry;
    use extractocol_ir::{Apk, ApkBuilder, Type, Value};

    fn analyze(
        apk: &Apk,
        dir: Direction,
        seed_method: (&str, &str, usize),
        seed_builder: impl FnOnce(&ProgramIndex<'_>, MethodId) -> Seed,
    ) -> (TaintReport, Vec<String>) {
        let prog = ProgramIndex::new(apk);
        let graph = CallGraph::build(&prog, &CallbackRegistry::android_defaults());
        let engine = TaintEngine::new(&prog, &graph, &ConservativeModel, TaintOptions::default());
        let mid = prog.resolve_method(seed_method.0, seed_method.1, seed_method.2).unwrap();
        let seed = seed_builder(&prog, mid);
        let report = engine.run(dir, &[seed]);
        let mut methods: Vec<String> =
            report.methods().into_iter().map(|m| prog.method_display(m)).collect();
        methods.sort();
        (report, methods)
    }

    /// Straight-line forward flow through locals and fields.
    #[test]
    fn forward_through_locals_and_fields() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.C", |c| {
            let f = c.field("data", Type::string());
            c.method("m", vec![Type::string()], Type::Void, |m| {
                let this = m.recv("t.C");
                let p = m.arg(0, "p");
                let x = m.temp(Type::string());
                m.copy(x, p); // x = p (tainted)
                m.put_field(this, &f, x); // this.data = x
                let y = m.temp(Type::string());
                m.get_field(y, this, &f); // y = this.data
                let z = m.temp(Type::string());
                m.copy(z, y);
                m.ret_void();
            });
        });
        let apk = b.build();
        let (report, _) = analyze(&apk, Direction::Forward, ("t.C", "m", 1), |prog, mid| {
            // seed: parameter local tainted at entry
            let info_local = prog
                .method(mid)
                .body
                .iter()
                .find_map(|s| match s {
                    Stmt::Identity { local, kind: IdentityKind::Param(0) } => Some(*local),
                    _ => None,
                })
                .unwrap();
            Seed { method: mid, stmt: 0, fact: AccessPath::local(info_local) }
        });
        // The copies, the store, the load, and the final copy are all sliced.
        assert!(report.slice.len() >= 4, "slice: {:?}", report.slice);
    }

    /// Forward flow across a call: argument → parameter → return value.
    #[test]
    fn forward_across_calls_and_returns() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.C", |c| {
            c.static_method("id", vec![Type::string()], Type::string(), |m| {
                let p = m.arg(0, "p");
                m.ret(p);
            });
            c.static_method("main", vec![Type::string()], Type::Void, |m| {
                let p = m.arg(0, "src");
                let r = m.scall("t.C", "id", vec![Value::Local(p)], Type::string());
                let s = m.temp(Type::string());
                m.copy(s, r);
                m.ret_void();
            });
        });
        let apk = b.build();
        let (report, methods) =
            analyze(&apk, Direction::Forward, ("t.C", "main", 1), |prog, mid| {
                let p = prog
                    .method(mid)
                    .body
                    .iter()
                    .find_map(|s| match s {
                        Stmt::Identity { local, kind: IdentityKind::Param(0) } => Some(*local),
                        _ => None,
                    })
                    .unwrap();
                Seed { method: mid, stmt: 0, fact: AccessPath::local(p) }
            });
        assert!(methods.iter().any(|m| m.contains("id(")), "methods: {methods:?}");
        // the copy after the call is reached via return flow
        let prog = ProgramIndex::new(&apk);
        let main = prog.resolve_method("t.C", "main", 1).unwrap();
        let copy_idx = prog.method(main).body.len() - 2;
        assert!(report.facts_at.contains_key(&(main, copy_idx)));
    }

    /// Backward flow: from a sink argument to its string origins.
    #[test]
    fn backward_collects_uri_construction() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.C", |c| {
            c.method("go", vec![], Type::Void, |m| {
                m.recv("t.C");
                let base = m.temp(Type::string());
                m.cstr(base, "http://x/"); // origin
                let u = m.temp(Type::string());
                m.copy(u, base);
                let unrelated = m.temp(Type::string());
                m.cstr(unrelated, "other"); // must NOT be sliced
                m.scall_void("t.Http", "send", vec![Value::Local(u)]);
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let graph = CallGraph::build(&prog, &CallbackRegistry::empty());
        let engine = TaintEngine::new(&prog, &graph, &ConservativeModel, TaintOptions::default());
        let mid = prog.resolve_method("t.C", "go", 0).unwrap();
        // seed: backward from the send() call on its argument local
        let (send_idx, u_local) = prog
            .method(mid)
            .body
            .iter()
            .enumerate()
            .find_map(|(i, s)| {
                s.call()
                    .filter(|c| c.callee.name == "send")
                    .and_then(|c| c.args[0].as_local())
                    .map(|l| (i, l))
            })
            .unwrap();
        let report = engine.run(
            Direction::Backward,
            &[Seed { method: mid, stmt: send_idx, fact: AccessPath::local(u_local) }],
        );
        let sliced = report.stmts_in(mid);
        // body: 0 recv, 1 `base = "http://x/"`, 2 `u = base`, 3 unrelated,
        // 4 send, 5 return. The construction chain is sliced; the
        // unrelated constant is not.
        assert!(sliced.contains(&1), "sliced: {sliced:?}");
        assert!(sliced.contains(&2), "sliced: {sliced:?}");
        assert!(!sliced.contains(&3), "sliced: {sliced:?}");
    }

    /// Backward propagation crosses call boundaries caller←callee.
    #[test]
    fn backward_across_call_boundary() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.C", |c| {
            c.static_method("mk", vec![Type::string()], Type::string(), |m| {
                let p = m.arg(0, "p");
                let r = m.temp(Type::string());
                m.copy(r, p);
                m.ret(r);
            });
            c.static_method("main", vec![], Type::Void, |m| {
                let s = m.temp(Type::string());
                m.cstr(s, "http://api/"); // origin, reached via mk()
                let u = m.scall("t.C", "mk", vec![Value::Local(s)], Type::string());
                m.scall_void("t.Http", "send", vec![Value::Local(u)]);
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let graph = CallGraph::build(&prog, &CallbackRegistry::empty());
        let engine = TaintEngine::new(&prog, &graph, &ConservativeModel, TaintOptions::default());
        let main = prog.resolve_method("t.C", "main", 0).unwrap();
        let (send_idx, u_local) = prog
            .method(main)
            .body
            .iter()
            .enumerate()
            .find_map(|(i, s)| {
                s.call()
                    .filter(|c| c.callee.name == "send")
                    .and_then(|c| c.args[0].as_local())
                    .map(|l| (i, l))
            })
            .unwrap();
        let report = engine.run(
            Direction::Backward,
            &[Seed { method: main, stmt: send_idx, fact: AccessPath::local(u_local) }],
        );
        let mk = prog.resolve_method("t.C", "mk", 1).unwrap();
        assert!(
            report.slice.iter().any(|(m, _)| *m == mk),
            "mk() must appear in the backward slice"
        );
        // The origin constant in main is sliced too.
        assert!(report.stmts_in(main).contains(&0), "slice: {:?}", report.stmts_in(main));
    }

    /// Static fields carry taint across methods (flow-insensitively).
    #[test]
    fn statics_bridge_methods_forward() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.C", |c| {
            let sf = c.static_field("TOKEN", Type::string());
            c.static_method("setter", vec![Type::string()], Type::Void, |m| {
                let p = m.arg(0, "p");
                m.put_static(&sf, p);
                m.ret_void();
            });
            c.static_method("getter", vec![], Type::string(), |m| {
                let v = m.temp(Type::string());
                m.get_static(v, &sf);
                m.ret(v);
            });
        });
        let apk = b.build();
        let (report, methods) =
            analyze(&apk, Direction::Forward, ("t.C", "setter", 1), |prog, mid| {
                let p = prog
                    .method(mid)
                    .body
                    .iter()
                    .find_map(|s| match s {
                        Stmt::Identity { local, kind: IdentityKind::Param(0) } => Some(*local),
                        _ => None,
                    })
                    .unwrap();
                Seed { method: mid, stmt: 0, fact: AccessPath::local(p) }
            });
        assert!(report.statics.contains("t.C#TOKEN"));
        assert!(methods.iter().any(|m| m.contains("getter")), "methods: {methods:?}");
    }

    /// Implicit AsyncTask edges: execute(arg) reaches doInBackground and
    /// its return reaches onPostExecute.
    #[test]
    fn forward_through_asynctask_chain() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("android.os.AsyncTask", |c| {
            c.stub_method("execute", vec![Type::obj_root()], Type::Void);
        });
        b.class("t.Task", |c| {
            c.extends("android.os.AsyncTask");
            c.method("doInBackground", vec![Type::obj_root()], Type::obj_root(), |m| {
                m.recv("t.Task");
                let p = m.arg(0, "p");
                let r = m.temp(Type::obj_root());
                m.copy(r, p);
                m.ret(r);
            });
            c.method("onPostExecute", vec![Type::obj_root()], Type::Void, |m| {
                m.recv("t.Task");
                let r = m.arg(0, "r");
                let sink = m.temp(Type::obj_root());
                m.copy(sink, r);
                m.ret_void();
            });
        });
        b.class("t.Main", |c| {
            c.static_method("go", vec![Type::string()], Type::Void, |m| {
                let p = m.arg(0, "url");
                let task = m.new_obj("t.Task", vec![]);
                m.vcall_void(task, "t.Task", "execute", vec![Value::Local(p)]);
                m.ret_void();
            });
        });
        let apk = b.build();
        let (_, methods) = analyze(&apk, Direction::Forward, ("t.Main", "go", 1), |prog, mid| {
            let p = prog
                .method(mid)
                .body
                .iter()
                .find_map(|s| match s {
                    Stmt::Identity { local, kind: IdentityKind::Param(0) } => Some(*local),
                    _ => None,
                })
                .unwrap();
            Seed { method: mid, stmt: 0, fact: AccessPath::local(p) }
        });
        assert!(methods.iter().any(|m| m.contains("doInBackground")), "methods: {methods:?}");
        assert!(methods.iter().any(|m| m.contains("onPostExecute")), "methods: {methods:?}");
    }

    /// Strong updates kill facts: overwriting a local stops propagation.
    #[test]
    fn forward_strong_update_kills() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.C", |c| {
            c.static_method("m", vec![Type::string()], Type::Void, |m| {
                let p = m.arg(0, "p");
                let x = m.temp(Type::string());
                m.copy(x, p);
                m.cstr(x, "clean"); // kills taint on x
                let y = m.temp(Type::string());
                m.copy(y, x); // should NOT be sliced via x
                m.ret_void();
            });
        });
        let apk = b.build();
        let (report, _) = analyze(&apk, Direction::Forward, ("t.C", "m", 1), |prog, mid| {
            let p = prog
                .method(mid)
                .body
                .iter()
                .find_map(|s| match s {
                    Stmt::Identity { local, kind: IdentityKind::Param(0) } => Some(*local),
                    _ => None,
                })
                .unwrap();
            Seed { method: mid, stmt: 0, fact: AccessPath::local(p) }
        });
        let prog = ProgramIndex::new(&apk);
        let mid = prog.resolve_method("t.C", "m", 1).unwrap();
        let sliced = report.stmts_in(mid);
        // body: ident, x=p (1), x="clean" (2, kill), y=x (3)
        assert!(sliced.contains(&1));
        assert!(sliced.contains(&2), "kill site is part of the slice");
        assert!(!sliced.contains(&3), "flow must stop at the strong update");
    }

    /// Field-depth cap truncates instead of losing facts.
    #[test]
    fn depth_cap_overapproximates() {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.N", |c| {
            c.field("inner", Type::object("t.N"));
            c.field("leaf", Type::string());
        });
        b.class("t.C", |c| {
            c.static_method("m", vec![Type::string()], Type::Void, |m| {
                let p = m.arg(0, "p");
                let n1 = m.new_obj("t.N", vec![]);
                let n2 = m.new_obj("t.N", vec![]);
                let leaf = extractocol_ir::FieldRef::new("t.N", "leaf", Type::string());
                let inner = extractocol_ir::FieldRef::new("t.N", "inner", Type::object("t.N"));
                m.put_field(n2, &leaf, p); // n2.leaf = p
                m.put_field(n1, &inner, n2); // n1.inner = n2
                let out = m.temp(Type::object("t.N"));
                m.get_field(out, n1, &inner); // out = n1.inner (tainted at depth 2)
                let s = m.temp(Type::string());
                m.get_field(s, out, &leaf); // s = out.leaf → tainted
                m.ret_void();
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let graph = CallGraph::build(&prog, &CallbackRegistry::empty());
        // depth 1: n1.inner.leaf truncates to n1.inner — still found.
        let engine = TaintEngine::new(
            &prog,
            &graph,
            &ConservativeModel,
            TaintOptions { max_field_depth: 1, ..TaintOptions::default() },
        );
        let mid = prog.resolve_method("t.C", "m", 1).unwrap();
        let p = prog
            .method(mid)
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Identity { local, kind: IdentityKind::Param(0) } => Some(*local),
                _ => None,
            })
            .unwrap();
        let report = engine
            .run(Direction::Forward, &[Seed { method: mid, stmt: 0, fact: AccessPath::local(p) }]);
        let sliced = report.stmts_in(mid);
        let last_load = prog.method(mid).body.len() - 2;
        assert!(sliced.contains(&last_load), "sliced: {sliced:?}");
    }

    /// Two entry points funnelling into one helper chain — the shape the
    /// method-summary cache exists for.
    fn shared_helper_apk() -> Apk {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.C", |c| {
            for i in 0..3usize {
                let next = format!("h{}", i + 1);
                let last = i == 2;
                c.static_method(&format!("h{i}"), vec![Type::string()], Type::string(), move |m| {
                    let p = m.arg(0, "p");
                    if last {
                        m.ret(p);
                    } else {
                        let r = m.scall("t.C", &next, vec![Value::Local(p)], Type::string());
                        m.ret(r);
                    }
                });
            }
            for entry in ["a", "b"] {
                c.static_method(entry, vec![Type::string()], Type::Void, |m| {
                    let p = m.arg(0, "p");
                    let r = m.scall("t.C", "h0", vec![Value::Local(p)], Type::string());
                    let s = m.temp(Type::string());
                    m.copy(s, r);
                    m.ret_void();
                });
            }
        });
        b.build()
    }

    fn entry_seed(prog: &ProgramIndex<'_>, name: &str) -> Seed {
        let mid = prog.resolve_method("t.C", name, 1).unwrap();
        let p = prog
            .method(mid)
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Identity { local, kind: IdentityKind::Param(0) } => Some(*local),
                _ => None,
            })
            .unwrap();
        Seed { method: mid, stmt: 0, fact: AccessPath::local(p) }
    }

    fn sorted_slice(r: &TaintReport) -> Vec<(MethodId, usize)> {
        let mut v: Vec<_> = r.slice.iter().copied().collect();
        v.sort();
        v
    }

    /// Distinct seeds re-entering shared helpers hit the cache, and the
    /// cached engine's slices equal the uncached engine's.
    #[test]
    fn summary_cache_hits_on_shared_helpers_without_changing_results() {
        let apk = shared_helper_apk();
        let prog = ProgramIndex::new(&apk);
        let graph = CallGraph::build(&prog, &CallbackRegistry::empty());
        let cached = TaintEngine::new(&prog, &graph, &ConservativeModel, TaintOptions::default());
        let plain = TaintEngine::new(
            &prog,
            &graph,
            &ConservativeModel,
            TaintOptions { summary_cache: false, ..TaintOptions::default() },
        );
        for entry in ["a", "b"] {
            let seed = entry_seed(&prog, entry);
            let with = cached.run(Direction::Forward, &[seed.clone()]);
            let without = plain.run(Direction::Forward, &[seed]);
            assert_eq!(sorted_slice(&with), sorted_slice(&without), "entry {entry}");
            assert_eq!(with.statics, without.statics);
        }
        let stats = cached.cache_stats();
        assert!(stats.hits > 0, "helper segments reused: {stats:?}");
        assert!(stats.misses > 0);
        assert_eq!(stats.lookups(), stats.hits + stats.misses);
        assert_eq!(plain.cache_stats(), CacheStats::default());
        assert_eq!(plain.cache_stats().hit_rate(), 0.0);
    }

    /// Re-running identical seeds is answered entirely from the cache.
    #[test]
    fn summary_cache_repeat_run_is_all_hits() {
        let apk = shared_helper_apk();
        let prog = ProgramIndex::new(&apk);
        let graph = CallGraph::build(&prog, &CallbackRegistry::empty());
        let engine = TaintEngine::new(&prog, &graph, &ConservativeModel, TaintOptions::default());
        let seed = entry_seed(&prog, "a");
        let first = engine.run(Direction::Forward, &[seed.clone()]);
        let after_first = engine.cache_stats();
        let second = engine.run(Direction::Forward, &[seed]);
        let after_second = engine.cache_stats();
        assert_eq!(sorted_slice(&first), sorted_slice(&second));
        assert_eq!(after_second.misses, after_first.misses, "no new segments on a repeat run");
        assert!(after_second.hits > after_first.hits);
    }

    /// Concurrency smoke test: one engine, many threads, identical
    /// per-thread results and coherent counters.
    #[test]
    fn summary_cache_is_shareable_across_threads() {
        let apk = shared_helper_apk();
        let prog = ProgramIndex::new(&apk);
        let graph = CallGraph::build(&prog, &CallbackRegistry::empty());
        let engine = TaintEngine::new(&prog, &graph, &ConservativeModel, TaintOptions::default());
        let baseline = sorted_slice(&engine.run(Direction::Forward, &[entry_seed(&prog, "a")]));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let r = engine.run(Direction::Forward, &[entry_seed(&prog, "a")]);
                        sorted_slice(&r)
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), baseline);
            }
        });
        let stats = engine.cache_stats();
        assert!(stats.hits >= 8, "repeat runs served from cache: {stats:?}");
    }
}
