//! Intra-procedural control-flow graphs: basic blocks, reverse post-order,
//! natural loops, and dominators.
//!
//! Signature building (paper §3.2) "processes the statements in basic
//! blocks in topological order of the intra-procedural control flow graph"
//! and treats confluence points differently depending on whether they are
//! "a loop header or latch" — this module computes exactly those
//! ingredients.

use extractocol_ir::{Method, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// A basic block: a maximal straight-line statement range.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Statement index range `[start, end)` into the method body.
    pub start: usize,
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl Block {
    /// Statement indices of this block.
    pub fn stmts(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The control-flow graph of one method.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks in order of starting statement.
    pub blocks: Vec<Block>,
    /// Map statement index → owning block.
    pub block_of_stmt: Vec<usize>,
    /// Blocks in reverse post-order (a topological order when back edges
    /// are ignored).
    pub rpo: Vec<usize>,
    /// Back edges `(from, to)` discovered by DFS: `to` is a loop header.
    pub back_edges: Vec<(usize, usize)>,
    /// Immediate dominator per block (`idom[entry] == entry`);
    /// unreachable blocks map to `usize::MAX`.
    pub idom: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG for a method body. Bodyless methods get an empty CFG.
    pub fn build(method: &Method) -> Cfg {
        let body = &method.body;
        if body.is_empty() {
            return Cfg {
                blocks: Vec::new(),
                block_of_stmt: Vec::new(),
                rpo: Vec::new(),
                back_edges: Vec::new(),
                idom: Vec::new(),
            };
        }
        // Leaders: entry, branch targets, and statements following a
        // branch/terminator.
        let mut leaders = BTreeSet::new();
        leaders.insert(0usize);
        for (i, s) in body.iter().enumerate() {
            for t in s.branch_targets() {
                leaders.insert(t);
            }
            let falls_next = matches!(s, Stmt::If { .. }) || s.is_terminator();
            if falls_next && i + 1 < body.len() {
                leaders.insert(i + 1);
            }
        }
        let leader_list: Vec<usize> = leaders.iter().copied().collect();
        let mut blocks: Vec<Block> = Vec::with_capacity(leader_list.len());
        let mut block_of_stmt = vec![0usize; body.len()];
        let mut start_to_block: BTreeMap<usize, usize> = BTreeMap::new();
        for (bi, &start) in leader_list.iter().enumerate() {
            let end = leader_list.get(bi + 1).copied().unwrap_or(body.len());
            for slot in block_of_stmt.iter_mut().take(end).skip(start) {
                *slot = bi;
            }
            start_to_block.insert(start, bi);
            blocks.push(Block { start, end, succs: Vec::new(), preds: Vec::new() });
        }
        // Edges.
        for bi in 0..blocks.len() {
            let last = blocks[bi].end - 1;
            let stmt = &body[last];
            let mut succs = Vec::new();
            match stmt {
                Stmt::Goto { target } => succs.push(start_to_block[target]),
                Stmt::If { target, .. } => {
                    if blocks[bi].end < body.len() {
                        succs.push(block_of_stmt[blocks[bi].end]);
                    }
                    succs.push(start_to_block[target]);
                }
                Stmt::Switch { arms, default, .. } => {
                    for (_, t) in arms {
                        succs.push(start_to_block[t]);
                    }
                    succs.push(start_to_block[default]);
                }
                Stmt::Return(_) | Stmt::Throw(_) => {}
                _ => {
                    if blocks[bi].end < body.len() {
                        succs.push(block_of_stmt[blocks[bi].end]);
                    }
                }
            }
            succs.dedup();
            blocks[bi].succs = succs;
        }
        for bi in 0..blocks.len() {
            let succs = blocks[bi].succs.clone();
            for s in succs {
                blocks[s].preds.push(bi);
            }
        }
        // DFS for RPO and back edges.
        let n = blocks.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut post = Vec::with_capacity(n);
        let mut back_edges = Vec::new();
        // Iterative DFS with explicit stack.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < blocks[b].succs.len() {
                let s = blocks[b].succs[*next];
                *next += 1;
                match state[s] {
                    0 => {
                        state[s] = 1;
                        stack.push((s, 0));
                    }
                    1 => back_edges.push((b, s)),
                    _ => {}
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = post.iter().rev().copied().collect();
        let idom = dominators(&blocks, &rpo);
        Cfg { blocks, block_of_stmt, rpo, back_edges, idom }
    }

    /// Loop headers: targets of back edges.
    pub fn loop_headers(&self) -> BTreeSet<usize> {
        self.back_edges.iter().map(|&(_, h)| h).collect()
    }

    /// Loop latches: sources of back edges.
    pub fn loop_latches(&self) -> BTreeSet<usize> {
        self.back_edges.iter().map(|&(l, _)| l).collect()
    }

    /// The natural loop body of the back edge `(latch, header)`: all blocks
    /// that can reach the latch without passing through the header,
    /// plus the header.
    pub fn natural_loop(&self, latch: usize, header: usize) -> BTreeSet<usize> {
        let mut body = BTreeSet::new();
        body.insert(header);
        let mut stack = vec![latch];
        while let Some(b) = stack.pop() {
            if body.insert(b) {
                for &p in &self.blocks[b].preds {
                    stack.push(p);
                }
            }
        }
        body
    }

    /// True when block `a` dominates block `b`.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == 0 || self.idom[cur] == usize::MAX {
                return a == 0 && cur == 0;
            }
            let next = self.idom[cur];
            if next == cur {
                return false;
            }
            cur = next;
        }
    }
}

/// Cooper–Harvey–Kennedy iterative dominator computation over RPO.
fn dominators(blocks: &[Block], rpo: &[usize]) -> Vec<usize> {
    let n = blocks.len();
    let mut idom = vec![usize::MAX; n];
    if n == 0 {
        return idom;
    }
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    idom[0] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = usize::MAX;
            for &p in &blocks[b].preds {
                if idom[p] == usize::MAX {
                    continue;
                }
                new_idom = if new_idom == usize::MAX {
                    p
                } else {
                    intersect(&idom, &rpo_index, p, new_idom)
                };
            }
            if new_idom != usize::MAX && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

fn intersect(idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a];
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::{ApkBuilder, CondOp, Type, Value};

    fn method_cfg(f: impl FnOnce(&mut extractocol_ir::MethodBuilder)) -> Cfg {
        let mut b = ApkBuilder::new("t", "t");
        b.class("t.C", |c| {
            c.method("m", vec![Type::Int], Type::Void, f);
        });
        let apk = b.build();
        let m = apk.class("t.C").unwrap().method("m", 1).unwrap();
        Cfg::build(m)
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = method_cfg(|m| {
            let x = m.local("x", Type::Int);
            m.cint(x, 1);
            m.cint(x, 2);
            m.ret_void();
        });
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.back_edges.is_empty());
        assert_eq!(cfg.rpo, vec![0]);
    }

    #[test]
    fn diamond_has_four_blocks_and_dominators() {
        let cfg = method_cfg(|m| {
            let p = m.arg(0, "p");
            m.iff(CondOp::Eq, p, Value::int(0), "else"); // b0
            m.cint(p, 1); // b1 (then)
            m.goto("join");
            m.label("else");
            m.cint(p, 2); // b2
            m.label("join");
            m.ret_void(); // b3
        });
        assert_eq!(cfg.blocks.len(), 4);
        assert!(cfg.back_edges.is_empty());
        // Entry dominates everything; neither branch dominates the join.
        assert!(cfg.dominates(0, 3));
        assert!(!cfg.dominates(1, 3));
        assert!(!cfg.dominates(2, 3));
        assert_eq!(cfg.idom[3], 0);
        // RPO is a topological order: join comes after both branches.
        let pos = |b: usize| cfg.rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn loop_detection() {
        let cfg = method_cfg(|m| {
            let i = m.local("i", Type::Int);
            m.cint(i, 0); // b0
            m.label("head");
            m.iff(CondOp::Ge, i, Value::int(10), "done"); // b1: header
            m.assign(
                i,
                extractocol_ir::Expr::Bin(
                    extractocol_ir::BinOp::Add,
                    Value::Local(i),
                    Value::int(1),
                ),
            ); // b2: body+latch
            m.goto("head");
            m.label("done");
            m.ret_void(); // b3
        });
        assert_eq!(cfg.back_edges.len(), 1);
        let (latch, header) = cfg.back_edges[0];
        assert!(cfg.loop_headers().contains(&header));
        assert!(cfg.loop_latches().contains(&latch));
        let body = cfg.natural_loop(latch, header);
        assert!(body.contains(&header));
        assert!(body.contains(&latch));
        assert!(!body.contains(&0));
        // Header dominates the latch.
        assert!(cfg.dominates(header, latch));
    }

    #[test]
    fn switch_fans_out() {
        let cfg = method_cfg(|m| {
            let p = m.arg(0, "p");
            m.switch(p, vec![(1, "a"), (2, "b")], "c");
            m.label("a");
            m.ret_void();
            m.label("b");
            m.ret_void();
            m.label("c");
            m.ret_void();
        });
        // entry + 3 arms
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[0].succs.len(), 3);
    }

    #[test]
    fn unreachable_code_is_tolerated() {
        let cfg = method_cfg(|m| {
            let d = m.local("d", Type::Int);
            m.ret_void();
            m.cint(d, 1); // dead
        });
        assert_eq!(cfg.blocks.len(), 2);
        // Dead block is not in RPO.
        assert_eq!(cfg.rpo, vec![0]);
        assert_eq!(cfg.idom[1], usize::MAX);
    }
}
