//! # extractocol-analysis
//!
//! The static-analysis substrate Extractocol builds on. In the original
//! system this layer is Soot + FlowDroid \[27, 60, 73\]: control-flow graphs,
//! a call graph, models of Android's implicit control flow, and a
//! flow-sensitive inter-procedural taint engine that the paper extends with
//! *backward* propagation ("we flip the edge direction of the control flow
//! graph … and apply inverted taint propagation rules", §3.1).
//!
//! Modules:
//!
//! * [`mod@cfg`] — basic blocks, reverse post-order, natural-loop detection
//!   (loop headers/latches drive the `rep{..}` parts of signatures, §3.2),
//!   and dominators;
//! * [`callgraph`] — class-hierarchy-analysis call graph over explicit
//!   call sites plus the implicit edges contributed by [`callbacks`];
//! * [`callbacks`] — models of implicit call flow through thread and HTTP
//!   libraries (`AsyncTask`, Volley, retrofit, `Thread`/`Runnable`,
//!   `Handler`, `Timer`, rx-style subscriptions, UI/location listeners),
//!   the issue EDGEMINER \[33\] studies and §3.4 addresses;
//! * [`pointsto`] — Andersen-style, field-sensitive points-to analysis
//!   with allocation-site abstraction and on-the-fly call resolution (the
//!   SPARK \[60\] layer), feeding call-graph devirtualization and alias
//!   queries;
//! * [`diagnostics`] — a static precision-lint pass over the IR and
//!   analysis results: unresolved sites, empty points-to sets, API-model
//!   coverage gaps, reflection, dead blocks;
//! * [`taint`] — the bidirectional taint engine over access paths, used
//!   three ways by the paper: bi-directional slicing, inter-slice
//!   dependency analysis, and asynchronous-event handling (§3 footnote 1).
//!
//! ## Faithfulness note
//!
//! The engine is flow-sensitive and field-sensitive (access paths with a
//! configurable depth cap, like FlowDroid's) but *context-insensitive*:
//! facts returning from a callee flow to every call site. This is a
//! deliberate simplification — the paper's request/response pairing
//! problem (Fig. 5) arises even under FlowDroid's context sensitivity
//! because slices share demarcation points through code reuse, and the
//! paper's remedy (disjoint sub-slice preprocessing, implemented in
//! `extractocol-core::pairing`) is what restores precision. The
//! access-path-depth ablation bench quantifies the field-sensitivity
//! trade-off.

pub mod callbacks;
pub mod callgraph;
pub mod cfg;
pub mod diagnostics;
pub mod pointsto;
pub mod taint;

pub use callbacks::{CallbackRegistry, ImplicitEdge, OperandSource};
pub use callgraph::{CallGraph, CallSite};
pub use cfg::Cfg;
pub use diagnostics::{Lint, LintCategory, LintReport};
pub use pointsto::{AllocId, AllocSite, PointsTo, PtsStats};
pub use taint::{
    AccessPath, ApiFlowModel, CacheStats, ConservativeModel, Direction, Root, Seed, Slot,
    SummaryExport, TaintEngine, TaintOptions, TaintReport,
};
