//! The `.exsm` persistent summary-cache archive.
//!
//! Same header discipline as the serving side's `.exsv` signature-index
//! archives: an 8-byte magic, a little-endian version, a reserved word, the
//! payload length, and a FNV-1a 64 checksum over the payload — 32 bytes of
//! header, then the payload. Loads are hostile-input safe: the checksum is
//! verified before any decoding, every read is bounds-checked, counts are
//! validated against the remaining payload, strings must be UTF-8, and all
//! cross-references (summary → method-table indices) are range-checked.
//! Anything off refuses the whole archive with a typed error — a cache
//! must never be able to corrupt an analysis, only to miss.
//!
//! Methods are named by stable key (`class#name#arity#occurrence`), never
//! by positional [`MethodId`], so archives survive renumbering; each
//! method record carries the content hash and validity fingerprint its
//! summaries were computed under, which the loader compares against the
//! current program before admitting an entry.

use extractocol_analysis::{AccessPath, Direction, Root};
use extractocol_ir::hash::fnv1a64;
use extractocol_ir::Local;
use std::fmt;
use std::path::Path;

/// `.exsm` file magic.
pub const ARCHIVE_MAGIC: &[u8; 8] = b"EXSUMMRY";
/// Current format version. Bumped on any layout change; readers refuse
/// other versions rather than guessing.
pub const ARCHIVE_VERSION: u32 = 1;

/// Everything that can go wrong reading (or writing) a `.exsm` archive.
#[derive(Debug)]
pub enum SummaryArchiveError {
    /// Filesystem error, with context.
    Io(String),
    /// The first 8 bytes are not [`ARCHIVE_MAGIC`].
    BadMagic,
    /// The archive declares a version this build cannot read.
    VersionMismatch { found: u32, supported: u32 },
    /// The input ended before a read completed.
    Truncated { context: &'static str, needed: usize, available: usize },
    /// The payload checksum does not match the header.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// A declared element count cannot fit in the remaining payload.
    BadCount { context: &'static str, count: u64 },
    /// An enum tag byte is out of range.
    BadTag { context: &'static str, tag: u8 },
    /// A string is not valid UTF-8.
    BadUtf8 { context: &'static str },
    /// Bytes remain after the last section.
    TrailingBytes { count: usize },
    /// Structurally well-formed but semantically inconsistent (e.g. a
    /// summary referencing a method index past the method table).
    Invalid(String),
}

impl fmt::Display for SummaryArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryArchiveError::Io(msg) => write!(f, "io error: {msg}"),
            SummaryArchiveError::BadMagic => write!(f, "not a .exsm summary archive (bad magic)"),
            SummaryArchiveError::VersionMismatch { found, supported } => {
                write!(f, "archive version {found} unsupported (reader supports {supported})")
            }
            SummaryArchiveError::Truncated { context, needed, available } => {
                write!(f, "truncated reading {context}: needed {needed}, had {available}")
            }
            SummaryArchiveError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "payload checksum mismatch: header {expected:#018x}, actual {actual:#018x}"
                )
            }
            SummaryArchiveError::BadCount { context, count } => {
                write!(f, "{context} count {count} exceeds remaining payload")
            }
            SummaryArchiveError::BadTag { context, tag } => {
                write!(f, "bad {context} tag {tag:#04x}")
            }
            SummaryArchiveError::BadUtf8 { context } => write!(f, "{context} is not UTF-8"),
            SummaryArchiveError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after the last section")
            }
            SummaryArchiveError::Invalid(msg) => write!(f, "invalid archive: {msg}"),
        }
    }
}

impl std::error::Error for SummaryArchiveError {}

/// The cache's compatibility epoch: analyses under different options (or
/// of a different app) produce incomparable summaries, so a mismatch
/// invalidates the whole archive without looking at any entry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Epoch {
    /// The APK name the summaries were computed from.
    pub app: String,
    /// `TaintOptions::max_field_depth` (access-path shapes depend on it).
    pub max_field_depth: u32,
    /// Whether alias narrowing (points-to) was enabled.
    pub pointsto: bool,
    /// Whether the run was targeted (cone-scoped) — scoped and
    /// whole-program engines agree on results but not on which summaries
    /// exist, so the epochs are kept apart.
    pub targeted: bool,
}

/// One method-table entry: stable identity plus the fingerprints its
/// summaries were computed under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodRecord {
    /// Stable key, `class#name#arity#occurrence`.
    pub key: String,
    /// Content hash (FNV-1a over the canonical printed form).
    pub content: u64,
    /// Validity fingerprint (zero for methods that only appear as
    /// cross-references, whose own validity is never consulted).
    pub validity: u64,
}

/// A persisted summary. Method references are indices into the archive's
/// method table, remapped to live [`extractocol_ir::MethodId`]s on load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryRecord {
    pub direction: Direction,
    /// Root method (method-table index).
    pub method: u32,
    /// Entry statement.
    pub stmt: u32,
    /// Entry fact.
    pub fact: AccessPath,
    /// Intra-method nodes visited, `(stmt, fact)`.
    pub nodes: Vec<(u32, AccessPath)>,
    /// Sliced statements inside the root method.
    pub marks: Vec<u32>,
    /// Statements marked in other methods, `(method-table index, stmt)`.
    pub extern_marks: Vec<(u32, u32)>,
    /// Facts leaving the method, `(method-table index, stmt, fact)`.
    pub exits: Vec<(u32, u32, AccessPath)>,
    /// Static-field keys tainted inside the segment.
    pub statics: Vec<String>,
}

/// A decoded `.exsm` archive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SummaryArchive {
    pub epoch: Epoch,
    pub methods: Vec<MethodRecord>,
    pub summaries: Vec<SummaryRecord>,
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_path(out: &mut Vec<u8>, p: &AccessPath) {
    match &p.root {
        Root::Local(l) => {
            out.push(0);
            put_u32(out, l.0);
        }
        Root::Static(k) => {
            out.push(1);
            put_str(out, k);
        }
    }
    put_u64(out, p.fields.len() as u64);
    for f in &p.fields {
        put_str(out, f);
    }
}

/// Serializes an archive: 32-byte header (magic, version, reserved,
/// payload length, FNV-1a checksum), then the payload.
pub fn write_archive(a: &SummaryArchive) -> Vec<u8> {
    let mut payload = Vec::new();
    // META
    put_str(&mut payload, &a.epoch.app);
    put_u32(&mut payload, a.epoch.max_field_depth);
    payload.push((a.epoch.pointsto as u8) | ((a.epoch.targeted as u8) << 1));
    // METH
    put_u64(&mut payload, a.methods.len() as u64);
    for m in &a.methods {
        put_str(&mut payload, &m.key);
        put_u64(&mut payload, m.content);
        put_u64(&mut payload, m.validity);
    }
    // SUMS
    put_u64(&mut payload, a.summaries.len() as u64);
    for s in &a.summaries {
        payload.push(match s.direction {
            Direction::Forward => 0,
            Direction::Backward => 1,
        });
        put_u32(&mut payload, s.method);
        put_u32(&mut payload, s.stmt);
        put_path(&mut payload, &s.fact);
        put_u64(&mut payload, s.nodes.len() as u64);
        for (st, p) in &s.nodes {
            put_u32(&mut payload, *st);
            put_path(&mut payload, p);
        }
        put_u64(&mut payload, s.marks.len() as u64);
        for st in &s.marks {
            put_u32(&mut payload, *st);
        }
        put_u64(&mut payload, s.extern_marks.len() as u64);
        for (m, st) in &s.extern_marks {
            put_u32(&mut payload, *m);
            put_u32(&mut payload, *st);
        }
        put_u64(&mut payload, s.exits.len() as u64);
        for (m, st, p) in &s.exits {
            put_u32(&mut payload, *m);
            put_u32(&mut payload, *st);
            put_path(&mut payload, p);
        }
        put_u64(&mut payload, s.statics.len() as u64);
        for k in &s.statics {
            put_str(&mut payload, k);
        }
    }

    let mut out = Vec::with_capacity(32 + payload.len());
    out.extend_from_slice(ARCHIVE_MAGIC);
    put_u32(&mut out, ARCHIVE_VERSION);
    put_u32(&mut out, 0); // reserved
    put_u64(&mut out, payload.len() as u64);
    put_u64(&mut out, fnv1a64(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Writes an archive to disk.
pub fn write_file(path: &Path, a: &SummaryArchive) -> Result<(), SummaryArchiveError> {
    std::fs::write(path, write_archive(a))
        .map_err(|e| SummaryArchiveError::Io(format!("{}: {e}", path.display())))
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Bounds-checked payload cursor.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SummaryArchiveError> {
        let available = self.buf.len() - self.pos;
        if n > available {
            return Err(SummaryArchiveError::Truncated { context, needed: n, available });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, SummaryArchiveError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, SummaryArchiveError> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().unwrap()))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, SummaryArchiveError> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().unwrap()))
    }

    /// A declared element count, sanity-checked against the remaining
    /// payload (`min_size` bytes per element) so hostile counts cannot
    /// trigger huge allocations.
    fn count(
        &mut self,
        min_size: usize,
        context: &'static str,
    ) -> Result<usize, SummaryArchiveError> {
        let n = self.u64(context)?;
        let available = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(min_size as u64).is_none_or(|bytes| bytes > available) {
            return Err(SummaryArchiveError::BadCount { context, count: n });
        }
        Ok(n as usize)
    }

    fn str(&mut self, context: &'static str) -> Result<String, SummaryArchiveError> {
        let n = self.count(1, context)?;
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SummaryArchiveError::BadUtf8 { context })
    }

    fn path(&mut self, context: &'static str) -> Result<AccessPath, SummaryArchiveError> {
        let root = match self.u8(context)? {
            0 => Root::Local(Local(self.u32(context)?)),
            1 => Root::Static(self.str(context)?),
            tag => return Err(SummaryArchiveError::BadTag { context, tag }),
        };
        let n = self.count(1, context)?;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            fields.push(self.str(context)?);
        }
        Ok(AccessPath { root, fields })
    }
}

/// Decodes a `.exsm` archive. Checksum first, then bounds-checked decode;
/// any inconsistency refuses the whole archive.
pub fn read_archive(bytes: &[u8]) -> Result<SummaryArchive, SummaryArchiveError> {
    if bytes.len() < 32 {
        return Err(SummaryArchiveError::Truncated {
            context: "header",
            needed: 32,
            available: bytes.len(),
        });
    }
    if &bytes[0..8] != ARCHIVE_MAGIC {
        return Err(SummaryArchiveError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != ARCHIVE_VERSION {
        return Err(SummaryArchiveError::VersionMismatch {
            found: version,
            supported: ARCHIVE_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let expected = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let available = bytes.len() - 32;
    if payload_len > available as u64 {
        return Err(SummaryArchiveError::Truncated {
            context: "payload",
            needed: payload_len.min(usize::MAX as u64) as usize,
            available,
        });
    }
    if (available as u64) > payload_len {
        return Err(SummaryArchiveError::TrailingBytes { count: available - payload_len as usize });
    }
    let payload = &bytes[32..];
    let actual = fnv1a64(payload);
    if actual != expected {
        return Err(SummaryArchiveError::ChecksumMismatch { expected, actual });
    }

    let mut cur = Cur { buf: payload, pos: 0 };
    // META
    let app = cur.str("epoch app name")?;
    let max_field_depth = cur.u32("epoch max_field_depth")?;
    let flags = cur.u8("epoch flags")?;
    if flags & !0b11 != 0 {
        return Err(SummaryArchiveError::BadTag { context: "epoch flags", tag: flags });
    }
    let epoch = Epoch { app, max_field_depth, pointsto: flags & 1 != 0, targeted: flags & 2 != 0 };
    // METH
    let n_methods = cur.count(24, "method table")?;
    let mut methods = Vec::with_capacity(n_methods);
    for _ in 0..n_methods {
        let key = cur.str("method key")?;
        let content = cur.u64("method content hash")?;
        let validity = cur.u64("method validity")?;
        methods.push(MethodRecord { key, content, validity });
    }
    // SUMS
    let n_sums = cur.count(17, "summary table")?;
    let mut summaries = Vec::with_capacity(n_sums);
    for _ in 0..n_sums {
        let direction = match cur.u8("summary direction")? {
            0 => Direction::Forward,
            1 => Direction::Backward,
            tag => return Err(SummaryArchiveError::BadTag { context: "summary direction", tag }),
        };
        let method = cur.u32("summary method")?;
        let stmt = cur.u32("summary stmt")?;
        let fact = cur.path("summary fact")?;
        let n = cur.count(5, "summary nodes")?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let st = cur.u32("node stmt")?;
            nodes.push((st, cur.path("node fact")?));
        }
        let n = cur.count(4, "summary marks")?;
        let mut marks = Vec::with_capacity(n);
        for _ in 0..n {
            marks.push(cur.u32("mark stmt")?);
        }
        let n = cur.count(8, "summary extern marks")?;
        let mut extern_marks = Vec::with_capacity(n);
        for _ in 0..n {
            let m = cur.u32("extern mark method")?;
            extern_marks.push((m, cur.u32("extern mark stmt")?));
        }
        let n = cur.count(9, "summary exits")?;
        let mut exits = Vec::with_capacity(n);
        for _ in 0..n {
            let m = cur.u32("exit method")?;
            let st = cur.u32("exit stmt")?;
            exits.push((m, st, cur.path("exit fact")?));
        }
        let n = cur.count(1, "summary statics")?;
        let mut statics = Vec::with_capacity(n);
        for _ in 0..n {
            statics.push(cur.str("static key")?);
        }
        // Cross-reference validation: every method index must land in the
        // method table.
        let bound = methods.len() as u32;
        let refs = std::iter::once(method)
            .chain(extern_marks.iter().map(|&(m, _)| m))
            .chain(exits.iter().map(|&(m, _, _)| m));
        for r in refs {
            if r >= bound {
                return Err(SummaryArchiveError::Invalid(format!(
                    "summary references method index {r} but the table has {bound} entries"
                )));
            }
        }
        summaries.push(SummaryRecord {
            direction,
            method,
            stmt,
            fact,
            nodes,
            marks,
            extern_marks,
            exits,
            statics,
        });
    }
    if cur.pos != payload.len() {
        return Err(SummaryArchiveError::TrailingBytes { count: payload.len() - cur.pos });
    }
    Ok(SummaryArchive { epoch, methods, summaries })
}

/// Reads an archive from disk. A missing file is an [`SummaryArchiveError::Io`].
pub fn read_file(path: &Path) -> Result<SummaryArchive, SummaryArchiveError> {
    let bytes = std::fs::read(path)
        .map_err(|e| SummaryArchiveError::Io(format!("{}: {e}", path.display())))?;
    read_archive(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SummaryArchive {
        SummaryArchive {
            epoch: Epoch { app: "app".into(), max_field_depth: 2, pointsto: true, targeted: false },
            methods: vec![
                MethodRecord { key: "com.app.A#f#0#0".into(), content: 11, validity: 21 },
                MethodRecord { key: "com.app.A#g#1#0".into(), content: 12, validity: 22 },
            ],
            summaries: vec![SummaryRecord {
                direction: Direction::Backward,
                method: 0,
                stmt: 3,
                fact: AccessPath { root: Root::Local(Local(2)), fields: vec!["url".into()] },
                nodes: vec![(1, AccessPath { root: Root::Local(Local(0)), fields: vec![] })],
                marks: vec![1, 3],
                extern_marks: vec![(1, 7)],
                exits: vec![(
                    1,
                    0,
                    AccessPath { root: Root::Static("com.app.C#K".into()), fields: vec![] },
                )],
                statics: vec!["com.app.C#K".into()],
            }],
        }
    }

    #[test]
    fn round_trip_is_lossless_and_idempotent() {
        let a = sample();
        let bytes = write_archive(&a);
        let back = read_archive(&bytes).unwrap();
        assert_eq!(back, a);
        // write(read(write(x))) == write(x)
        assert_eq!(write_archive(&back), bytes);
    }

    #[test]
    fn corruption_and_skew_are_refused_with_typed_errors() {
        let bytes = write_archive(&sample());
        // Bad magic.
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert!(matches!(read_archive(&b), Err(SummaryArchiveError::BadMagic)));
        // Version skew.
        let mut b = bytes.clone();
        b[8] = 99;
        assert!(matches!(
            read_archive(&b),
            Err(SummaryArchiveError::VersionMismatch { found: 99, supported: 1 })
        ));
        // Payload corruption → checksum.
        let mut b = bytes.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        assert!(matches!(read_archive(&b), Err(SummaryArchiveError::ChecksumMismatch { .. })));
        // Truncation.
        assert!(matches!(
            read_archive(&bytes[..bytes.len() - 3]),
            Err(SummaryArchiveError::Truncated { .. })
        ));
        assert!(matches!(read_archive(&bytes[..16]), Err(SummaryArchiveError::Truncated { .. })));
        // Appended garbage → trailing bytes, not "truncated".
        let mut b = bytes.clone();
        b.extend_from_slice(b"garbage");
        assert!(matches!(read_archive(&b), Err(SummaryArchiveError::TrailingBytes { count: 7 })));
    }

    #[test]
    fn out_of_range_method_index_is_refused() {
        let mut a = sample();
        a.summaries[0].method = 9; // past the 2-entry table
        let bytes = write_archive(&a); // checksum is valid — semantic check must catch it
        assert!(matches!(read_archive(&bytes), Err(SummaryArchiveError::Invalid(_))));
    }
}
