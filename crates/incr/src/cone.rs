//! Demand-driven reachability cones.
//!
//! Targeted mode analyzes only the methods that can influence (or be
//! influenced by) a demarcation point. The cone of a DP-site set is the
//! least fixpoint closed under every inter-method coupling the downstream
//! analyses traverse:
//!
//! * **explicit calls**, both directions (the CHA graph over-approximates
//!   any devirtualized graph, so closing over CHA edges is conservative);
//! * **implicit callback edges** and their `chains_to` follow-ups, both
//!   directions (taint steps across them, and `callers` entries include
//!   the triggering sites);
//! * **static-field coupling**: methods touching the same `class#field`
//!   key (taint re-seeds at every load/store of a tainted static; the
//!   points-to solver flows through the same global cells);
//! * **instance-field / array coupling on field *name***: the points-to
//!   solver's field cells are keyed `(allocation, field name)` and the
//!   slicer's async-augmentation matches store/load pairs by field — a
//!   name-level coupling over-approximates both. Array elements couple
//!   through the `"[]"` pseudo-field.
//!
//! Because every cross-method move of taint propagation, points-to
//! resolution, and slice augmentation travels along one of these
//! couplings, running the whole pipeline restricted to the cone produces
//! byte-identical reports to the whole-program run — the only difference
//! is the work skipped outside it.

use extractocol_analysis::CallGraph;
use extractocol_ir::{Expr, MethodId, Place, ProgramIndex, Stmt};
use std::collections::{HashMap, HashSet, VecDeque};

/// What targeted mode skipped, sized for the metrics export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TargetedStats {
    /// Methods inside the union of all DP cones.
    pub cone_methods: usize,
    /// All concrete methods in the program.
    pub total_methods: usize,
    /// Classes with at least one concrete method, none of which is in any
    /// cone — never visited by taint, points-to, or slicing.
    pub skipped_classes: usize,
    /// All classes with at least one concrete method.
    pub total_classes: usize,
}

/// Per-method coupling facts harvested in one body scan.
#[derive(Default)]
struct Couplings {
    /// `class#field` static keys loaded or stored.
    statics: Vec<String>,
    /// Instance-field names loaded or stored (`"[]"` for array elements).
    fields: Vec<String>,
}

fn scan_couplings(prog: &ProgramIndex<'_>, m: MethodId) -> Couplings {
    let mut c = Couplings::default();
    let add_place = |place: &Place, c: &mut Couplings| match place {
        Place::StaticField(f) => c.statics.push(format!("{}#{}", f.class, f.name)),
        Place::InstanceField { field, .. } => c.fields.push(field.name.clone()),
        Place::ArrayElem { .. } => c.fields.push("[]".to_string()),
        Place::Local(_) => {}
    };
    for stmt in &prog.method(m).body {
        if let Stmt::Assign { place, expr } = stmt {
            add_place(place, &mut c);
            if let Expr::Load(loaded) = expr {
                add_place(loaded, &mut c);
            }
        }
    }
    c.statics.sort_unstable();
    c.statics.dedup();
    c.fields.sort_unstable();
    c.fields.dedup();
    c
}

/// Computes the union cone of `roots` (deduplicated DP-site methods).
///
/// The result always contains every root that is a concrete method, and is
/// closed under the couplings documented at module level.
pub fn compute(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    roots: &[MethodId],
) -> HashSet<MethodId> {
    // Coupling indexes over the whole program (one linear scan).
    let mut by_static: HashMap<String, Vec<MethodId>> = HashMap::new();
    let mut by_field: HashMap<String, Vec<MethodId>> = HashMap::new();
    let mut couplings: HashMap<MethodId, Couplings> = HashMap::new();
    for m in prog.concrete_methods() {
        let c = scan_couplings(prog, m);
        for k in &c.statics {
            by_static.entry(k.clone()).or_default().push(m);
        }
        for f in &c.fields {
            by_field.entry(f.clone()).or_default().push(m);
        }
        couplings.insert(m, c);
    }

    let mut cone: HashSet<MethodId> = HashSet::new();
    let mut queue: VecDeque<MethodId> = VecDeque::new();
    let push = |m: MethodId, cone: &mut HashSet<MethodId>, queue: &mut VecDeque<MethodId>| {
        if prog.method(m).has_body && cone.insert(m) {
            queue.push_back(m);
        }
    };
    for &r in roots {
        push(r, &mut cone, &mut queue);
    }
    while let Some(m) = queue.pop_front() {
        // Explicit + implicit call edges out of `m`.
        for (si, stmt) in prog.method(m).body.iter().enumerate() {
            if stmt.call().is_none() {
                continue;
            }
            let site = (m, si);
            for &t in graph.targets_of(site) {
                push(t, &mut cone, &mut queue);
            }
            for e in graph.implicit_of(site) {
                push(e.target, &mut cone, &mut queue);
                if let Some((chained, _)) = e.chains_to {
                    push(chained, &mut cone, &mut queue);
                }
            }
        }
        // Call edges into `m` (covers explicit callers and the sites that
        // trigger `m` as an implicit callback — both are in `callers`).
        if let Some(callers) = graph.callers.get(&m) {
            for &(cm, cs) in callers {
                push(cm, &mut cone, &mut queue);
                // A chained partner at the triggering site shares state
                // with `m` (the chain passes m's return value into it).
                for e in graph.implicit_of((cm, cs)) {
                    if e.target == m || e.chains_to.map(|(c, _)| c) == Some(m) {
                        push(e.target, &mut cone, &mut queue);
                        if let Some((chained, _)) = e.chains_to {
                            push(chained, &mut cone, &mut queue);
                        }
                    }
                }
            }
        }
        // Shared-state couplings.
        if let Some(c) = couplings.get(&m) {
            for k in &c.statics {
                for &o in by_static.get(k).map(Vec::as_slice).unwrap_or(&[]) {
                    push(o, &mut cone, &mut queue);
                }
            }
            for f in &c.fields {
                for &o in by_field.get(f).map(Vec::as_slice).unwrap_or(&[]) {
                    push(o, &mut cone, &mut queue);
                }
            }
        }
    }
    cone
}

/// Sizes the cone against the program for the metrics export.
pub fn stats(prog: &ProgramIndex<'_>, cone: &HashSet<MethodId>) -> TargetedStats {
    let total_methods = prog.concrete_methods().count();
    let mut total_classes = 0usize;
    let mut skipped_classes = 0usize;
    for (cid, class) in prog.classes() {
        let concrete: Vec<u32> = class
            .methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.has_body)
            .map(|(i, _)| i as u32)
            .collect();
        if concrete.is_empty() {
            continue;
        }
        total_classes += 1;
        if concrete.iter().all(|&mi| !cone.contains(&MethodId { class: cid, method: mi })) {
            skipped_classes += 1;
        }
    }
    TargetedStats { cone_methods: cone.len(), total_methods, skipped_classes, total_classes }
}
