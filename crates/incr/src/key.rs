//! Stable method identity and content hashing.
//!
//! [`MethodId`]s are positional (`(class index, method index)`) and shift
//! whenever a class or method is added or removed — they must never be
//! persisted. The incremental engine instead names methods by a *stable
//! key* derived from declaration structure
//! (`class#name#arity#occurrence`), and fingerprints bodies with FNV-1a
//! over the canonical [`extractocol_ir::printer`] form. Two programs agree
//! on a method exactly when both the key and the content hash agree.

use extractocol_ir::hash::{fnv1a64, fnv1a64_update};
use extractocol_ir::{printer, MethodId, ProgramIndex};
use std::collections::HashMap;

/// The stable (renumbering-proof) identity of a method:
/// `class#name#arity#occurrence`, where `occurrence` disambiguates
/// same-name/same-arity overloads by declaration order within the class.
pub fn stable_key(prog: &ProgramIndex<'_>, m: MethodId) -> String {
    let class = prog.class(m.class);
    let method = prog.method(m);
    let occ = class.methods[..m.method as usize]
        .iter()
        .filter(|o| o.name == method.name && o.params.len() == method.params.len())
        .count();
    format!("{}#{}#{}#{}", class.name, method.name, method.params.len(), occ)
}

/// Stable keys for every concrete method.
pub fn stable_keys(prog: &ProgramIndex<'_>) -> HashMap<MethodId, String> {
    prog.concrete_methods().map(|m| (m, stable_key(prog, m))).collect()
}

/// FNV-1a over the canonical printed form of a method, prefixed with its
/// class name (so a verbatim method moved between classes hashes
/// differently — dispatch and field resolution depend on the owner).
pub fn content_hash(prog: &ProgramIndex<'_>, m: MethodId) -> u64 {
    let mut h = fnv1a64(prog.class(m.class).name.as_bytes());
    h = fnv1a64_update(h, b"\0");
    fnv1a64_update(h, printer::method_text(prog.method(m)).as_bytes())
}

/// Content hashes for every concrete method.
pub fn content_hashes(prog: &ProgramIndex<'_>) -> HashMap<MethodId, u64> {
    prog.concrete_methods().map(|m| (m, content_hash(prog, m))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::builder::ApkBuilder;
    use extractocol_ir::Type;

    #[test]
    fn overloads_get_distinct_keys_and_bodies_distinct_hashes() {
        let mut b = ApkBuilder::new("app", "com.app");
        b.class("com.app.A", |c| {
            c.method("f", vec![], Type::Void, |m| {
                m.ret_void();
            });
            c.method("f", vec![Type::Int], Type::Void, |m| {
                m.ret_void();
            });
            c.method("f", vec![], Type::Int, |m| {
                let l = m.local("x", Type::Int);
                m.cint(l, 7);
                m.ret(l);
            });
        });
        let apk = b.build();
        let prog = ProgramIndex::new(&apk);
        let mids: Vec<MethodId> = prog.concrete_methods().collect();
        let keys: Vec<String> = mids.iter().map(|&m| stable_key(&prog, m)).collect();
        assert_eq!(keys[0], "com.app.A#f#0#0");
        assert_eq!(keys[1], "com.app.A#f#1#0");
        assert_eq!(keys[2], "com.app.A#f#0#1", "same name+arity → occurrence bump");
        // Same signature, different body → different content hash.
        assert_ne!(content_hash(&prog, mids[0]), content_hash(&prog, mids[2]));
    }
}
