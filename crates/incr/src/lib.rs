//! # extractocol-incr
//!
//! Targeted + incremental analysis: the demand-driven half of the
//! pipeline. BackDroid-style targeted analysis observes that when the
//! question is "what reaches these sinks?", whole-program analysis is
//! wasted work — and Extractocol's demarcation points are exactly such
//! sinks. This crate supplies the two pieces the pipeline composes:
//!
//! * **[`cone`]** — reachability cones over the call graph (plus
//!   static-field, instance-field, and implicit-callback couplings), so
//!   targeted mode runs points-to, taint, and slicing only over code that
//!   can influence a demarcation point;
//! * **[`key`] / [`validity`] / [`archive`]** — content-hashed method
//!   identity, one-hop validity fingerprints, and the versioned `.exsm`
//!   persistent summary-cache archive, so re-analysis after an edit
//!   recomputes only summaries whose dependency cone contains a changed
//!   method.
//!
//! Both halves are *transparent*: reports stay byte-identical to a cold
//! whole-program run at any worker count. The crate is deliberately
//! report-free — it knows methods, graphs, and summaries, not
//! transactions — so it sits between `extractocol-analysis` and
//! `extractocol-core` in the crate DAG.

pub mod archive;
pub mod cone;
pub mod key;
pub mod validity;

pub use archive::{Epoch, SummaryArchive, SummaryArchiveError};
pub use cone::TargetedStats;
pub use validity::Fingerprints;

use extractocol_analysis::{AccessPath, Direction, Root, SummaryExport, TaintEngine};
use extractocol_ir::{MethodId, ProgramIndex};
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// The cache key of one summary, in live-id form.
pub type SummaryKey = (Direction, MethodId, usize, AccessPath);

/// Persistent summary-cache counters for one run. All deterministic:
/// preload acceptance is a pure function of the archive and the current
/// program, and the recompute counts are derived from the (sorted) final
/// export rather than racy per-thread counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IncrStats {
    /// Summaries present in the loaded archive.
    pub preloaded: usize,
    /// Archive summaries accepted after fingerprint validation.
    pub valid: usize,
    /// Archive summaries rejected (stale fingerprint, vanished method,
    /// or epoch mismatch).
    pub invalidated: usize,
    /// The whole archive was discarded because its epoch (app, options)
    /// did not match this run.
    pub epoch_mismatch: bool,
    /// The archive could not be read at all (missing files are *not*
    /// errors — this records corruption/version skew, and the run falls
    /// back to a cold start).
    pub load_error: Option<String>,
    /// Summaries answered by the persistent cache this run.
    pub reused_summaries: usize,
    /// Summaries computed fresh this run.
    pub recomputed_summaries: usize,
    /// Distinct root methods among the recomputed summaries.
    pub recomputed_methods: usize,
    /// Methods in the analysis scope (denominator for the recompute
    /// ratio).
    pub total_methods: usize,
    /// Summaries written back to the archive.
    pub saved: usize,
    /// The archive could not be written back (the analysis itself is
    /// unaffected — the next run just starts cold).
    pub save_error: Option<String>,
}

impl IncrStats {
    /// Fraction of this run's summaries answered by the persistent cache
    /// (0.0 when no summaries were needed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.reused_summaries + self.recomputed_summaries;
        if total == 0 {
            0.0
        } else {
            self.reused_summaries as f64 / total as f64
        }
    }

    /// One-line rendering for CLI output and CI gates.
    pub fn to_line(&self) -> String {
        format!(
            "preloaded={} valid={} invalidated={} reused={} recomputed={} \
             recomputed_methods={}/{} saved={} hit_rate={:.1}%",
            self.preloaded,
            self.valid,
            self.invalidated,
            self.reused_summaries,
            self.recomputed_summaries,
            self.recomputed_methods,
            self.total_methods,
            self.saved,
            self.hit_rate() * 100.0
        )
    }
}

/// The result of [`load_into_engine`]: acceptance counters plus the keys
/// that were preloaded (so the post-run diff can tell reuse from
/// recomputation).
#[derive(Default)]
pub struct LoadOutcome {
    pub stats: IncrStats,
    pub preloaded_keys: HashSet<SummaryKey>,
}

/// Validates a summary's structural references against the live program.
/// Only called once fingerprints matched — at that point any violation
/// means a crafted or hash-colliding archive, so the caller refuses the
/// whole file.
fn structurally_sound(
    prog: &ProgramIndex<'_>,
    root: MethodId,
    rec: &archive::SummaryRecord,
    resolve: &[Option<MethodId>],
) -> bool {
    let body_len = prog.method(root).body.len();
    let local_ok = |m: MethodId, p: &AccessPath| match &p.root {
        Root::Local(l) => (l.0 as usize) < prog.method(m).locals.len(),
        Root::Static(_) => true,
    };
    if rec.stmt as usize >= body_len || !local_ok(root, &rec.fact) {
        return false;
    }
    if rec.nodes.iter().any(|(s, p)| *s as usize >= body_len || !local_ok(root, p)) {
        return false;
    }
    if rec.marks.iter().any(|&s| s as usize >= body_len) {
        return false;
    }
    let ref_ok = |idx: u32, stmt: u32| {
        resolve[idx as usize].is_some_and(|m| (stmt as usize) < prog.method(m).body.len())
    };
    if rec.extern_marks.iter().any(|&(m, s)| !ref_ok(m, s)) {
        return false;
    }
    rec.exits
        .iter()
        .all(|(m, s, p)| ref_ok(*m, *s) && resolve[*m as usize].is_some_and(|mid| local_ok(mid, p)))
}

/// Loads a `.exsm` archive and preloads every still-valid summary into the
/// engine. Never fails the run: a missing file is a cold start, a corrupt
/// or mismatched file is recorded in [`IncrStats::load_error`] /
/// [`IncrStats::epoch_mismatch`] and treated as cold.
pub fn load_into_engine(
    path: &Path,
    epoch: &Epoch,
    prog: &ProgramIndex<'_>,
    fp: &Fingerprints,
    engine: &TaintEngine<'_, '_, '_>,
) -> LoadOutcome {
    let mut out = LoadOutcome::default();
    if !path.exists() {
        return out;
    }
    let arch = match archive::read_file(path) {
        Ok(a) => a,
        Err(e) => {
            out.stats.load_error = Some(e.to_string());
            return out;
        }
    };
    out.stats.preloaded = arch.summaries.len();
    if &arch.epoch != epoch {
        out.stats.epoch_mismatch = true;
        out.stats.invalidated = arch.summaries.len();
        return out;
    }
    // Remap the method table onto the live program by stable key; vanished
    // methods stay `None` and invalidate the entries referencing them.
    let resolve: Vec<Option<MethodId>> =
        arch.methods.iter().map(|m| fp.by_key.get(&m.key).copied()).collect();

    let mut entries: Vec<SummaryExport> = Vec::new();
    for rec in &arch.summaries {
        let meth = &arch.methods[rec.method as usize];
        let Some(root) = resolve[rec.method as usize] else {
            out.stats.invalidated += 1;
            continue;
        };
        let current_content = fp.content.get(&root).copied().unwrap_or_default();
        let current_validity = fp.validity.get(&root).copied();
        if meth.content != current_content || current_validity != Some(meth.validity) {
            out.stats.invalidated += 1;
            continue;
        }
        if !structurally_sound(prog, root, rec, &resolve)
            || rec.extern_marks.iter().any(|&(m, _)| resolve[m as usize].is_none())
        {
            // Fingerprints matched but the shape doesn't fit the live
            // program: crafted input (or an FNV collision). Trust nothing.
            out.stats = IncrStats {
                preloaded: arch.summaries.len(),
                invalidated: arch.summaries.len(),
                load_error: Some(
                    "archive refused: summary structure inconsistent with fingerprinted program"
                        .to_string(),
                ),
                ..IncrStats::default()
            };
            return LoadOutcome { stats: out.stats, preloaded_keys: HashSet::new() };
        }
        let remap = |idx: u32| resolve[idx as usize].expect("checked above");
        let entry = SummaryExport {
            direction: rec.direction,
            method: root,
            stmt: rec.stmt as usize,
            fact: rec.fact.clone(),
            nodes: rec.nodes.iter().map(|(s, p)| (*s as usize, p.clone())).collect(),
            marks: rec.marks.iter().map(|&s| s as usize).collect(),
            extern_marks: rec.extern_marks.iter().map(|&(m, s)| (remap(m), s as usize)).collect(),
            exits: rec.exits.iter().map(|(m, s, p)| (remap(*m), *s as usize, p.clone())).collect(),
            statics: rec.statics.clone(),
        };
        out.preloaded_keys.insert((entry.direction, entry.method, entry.stmt, entry.fact.clone()));
        entries.push(entry);
    }
    out.stats.valid = entries.len();
    engine.preload_summaries(entries);
    out
}

/// Builds a `.exsm` archive from the engine's final summary export.
/// Deterministic: the export is key-sorted and the method table is sorted
/// by stable key, so equal program states produce byte-equal archives at
/// any worker count.
pub fn build_archive(
    epoch: &Epoch,
    fp: &Fingerprints,
    exports: &[SummaryExport],
) -> SummaryArchive {
    let mut referenced: HashSet<MethodId> = HashSet::new();
    for e in exports {
        referenced.insert(e.method);
        referenced.extend(e.extern_marks.iter().map(|&(m, _)| m));
        referenced.extend(e.exits.iter().map(|&(m, _, _)| m));
    }
    let mut table: Vec<(String, MethodId)> =
        referenced.into_iter().filter_map(|m| fp.keys.get(&m).map(|k| (k.clone(), m))).collect();
    table.sort();
    let index: HashMap<MethodId, u32> =
        table.iter().enumerate().map(|(i, &(_, m))| (m, i as u32)).collect();
    let methods = table
        .iter()
        .map(|(k, m)| archive::MethodRecord {
            key: k.clone(),
            content: fp.content.get(m).copied().unwrap_or_default(),
            validity: fp.validity.get(m).copied().unwrap_or_default(),
        })
        .collect();
    let summaries = exports
        .iter()
        .filter(|e| index.contains_key(&e.method))
        .map(|e| archive::SummaryRecord {
            direction: e.direction,
            method: index[&e.method],
            stmt: e.stmt as u32,
            fact: e.fact.clone(),
            nodes: e.nodes.iter().map(|(s, p)| (*s as u32, p.clone())).collect(),
            marks: e.marks.iter().map(|&s| s as u32).collect(),
            extern_marks: e
                .extern_marks
                .iter()
                .filter_map(|(m, s)| index.get(m).map(|&i| (i, *s as u32)))
                .collect(),
            exits: e
                .exits
                .iter()
                .filter_map(|(m, s, p)| index.get(m).map(|&i| (i, *s as u32, p.clone())))
                .collect(),
            statics: e.statics.clone(),
        })
        .collect();
    SummaryArchive { epoch: epoch.clone(), methods, summaries }
}

/// Fills the post-run diff counters: which of the final summaries came
/// from the persistent cache, and how many methods had to be recomputed.
pub fn finish_stats(
    stats: &mut IncrStats,
    exports: &[SummaryExport],
    preloaded_keys: &HashSet<SummaryKey>,
    total_methods: usize,
) {
    let mut recomputed_roots: HashSet<MethodId> = HashSet::new();
    let mut reused = 0usize;
    for e in exports {
        let key: SummaryKey = (e.direction, e.method, e.stmt, e.fact.clone());
        if preloaded_keys.contains(&key) {
            reused += 1;
        } else {
            recomputed_roots.insert(e.method);
        }
    }
    stats.reused_summaries = reused;
    stats.recomputed_summaries = exports.len() - reused;
    stats.recomputed_methods = recomputed_roots.len();
    stats.total_methods = total_methods;
}
