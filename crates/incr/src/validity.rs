//! Summary validity fingerprints.
//!
//! A memoized taint summary rooted at method `M` reads, beyond `M`'s own
//! body, exactly a *one-hop neighborhood*: the narrowed dispatch targets
//! and implicit edges at `M`'s call sites (plus the bodies of those
//! callees), and `M`'s callers (their bodies, whether their sites still
//! dispatch into `M` after alias narrowing, and any implicit edges at
//! those sites involving `M`). The validity fingerprint `V(M)` folds all
//! of that — content hashes included — into a single FNV-1a value, so a
//! persisted summary is safe to replay iff the stored `V(M)` equals the
//! one recomputed against the current program: equality means every input
//! the summary's computation ever observed is unchanged.
//!
//! Alias narrowing is folded in by *result*, not by cause: `V(M)` encodes
//! the narrowed target lists themselves, so a far-away edit that changes a
//! points-to set (and therefore dispatch at one of `M`'s sites) changes
//! `V(M)` even though the edit is outside the one-hop neighborhood.

use crate::key;
use extractocol_analysis::{CallGraph, OperandSource, TaintEngine};
use extractocol_ir::hash::fnv1a64;
use extractocol_ir::{MethodId, ProgramIndex};
use std::collections::HashMap;

/// Everything the archive layer needs to name and validate methods:
/// stable keys, content hashes, and validity fingerprints.
pub struct Fingerprints {
    /// Stable key per concrete method.
    pub keys: HashMap<MethodId, String>,
    /// Reverse lookup: stable key → current [`MethodId`].
    pub by_key: HashMap<String, MethodId>,
    /// Content hash per concrete method.
    pub content: HashMap<MethodId, u64>,
    /// Validity fingerprint per in-scope concrete method.
    pub validity: HashMap<MethodId, u64>,
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_operand(buf: &mut Vec<u8>, o: &Option<OperandSource>) {
    match o {
        None => buf.push(0),
        Some(OperandSource::Receiver) => buf.push(1),
        Some(OperandSource::Arg(i)) => {
            buf.push(2);
            put_u64(buf, *i as u64);
        }
    }
}

/// Computes fingerprints for every concrete method (keys, content) and
/// every in-scope method (validity). `scope` is the targeted cone, or
/// `None` for whole-program runs. The engine supplies the per-site alias
/// narrowing; it must be the same engine (same scope, same points-to
/// input) that will consume or produce the summaries.
pub fn fingerprints(
    prog: &ProgramIndex<'_>,
    graph: &CallGraph,
    engine: &TaintEngine<'_, '_, '_>,
    scope: Option<&std::collections::HashSet<MethodId>>,
) -> Fingerprints {
    let keys = key::stable_keys(prog);
    let content = key::content_hashes(prog);
    // Keys and content hashes cover concrete methods; a (defensive) zero
    // stands in for bodyless edge endpoints, which carry no content.
    let key_hash = |m: MethodId| keys.get(&m).map(|k| fnv1a64(k.as_bytes())).unwrap_or_default();
    let chash = |m: MethodId| content.get(&m).copied().unwrap_or_default();

    let mut validity = HashMap::new();
    for m in prog.concrete_methods() {
        if let Some(scope) = scope {
            if !scope.contains(&m) {
                continue;
            }
        }
        let mut buf: Vec<u8> = Vec::new();
        put_u64(&mut buf, chash(m));

        // Outgoing sites: narrowed dispatch + implicit edges.
        for (si, stmt) in prog.method(m).body.iter().enumerate() {
            let Some(call) = stmt.call() else { continue };
            let site = (m, si);
            buf.push(0xC1);
            put_u64(&mut buf, si as u64);
            let targets = engine.narrowed_targets(site, call);
            put_u64(&mut buf, targets.len() as u64);
            for t in targets {
                put_u64(&mut buf, key_hash(t));
                put_u64(&mut buf, chash(t));
            }
            let implicit = graph.implicit_of(site);
            put_u64(&mut buf, implicit.len() as u64);
            for e in implicit {
                put_u64(&mut buf, key_hash(e.target));
                put_u64(&mut buf, chash(e.target));
                put_operand(&mut buf, &e.recv_from);
                put_u64(&mut buf, e.param_from.len() as u64);
                for p in &e.param_from {
                    put_operand(&mut buf, p);
                }
                match e.chains_to {
                    None => buf.push(0),
                    Some((chained, pidx)) => {
                        buf.push(1);
                        put_u64(&mut buf, key_hash(chained));
                        put_u64(&mut buf, chash(chained));
                        put_u64(&mut buf, pidx as u64);
                    }
                }
            }
        }

        // Incoming sites: caller bodies, whether they still dispatch into
        // `m`, and implicit edges at those sites involving `m`.
        let mut callers: Vec<(MethodId, usize)> =
            graph.callers.get(&m).cloned().unwrap_or_default();
        callers.sort_by(|a, b| (keys.get(&a.0), a.1).cmp(&(keys.get(&b.0), b.1)));
        callers.dedup();
        buf.push(0xCA);
        put_u64(&mut buf, callers.len() as u64);
        for (cm, cs) in callers {
            put_u64(&mut buf, key_hash(cm));
            put_u64(&mut buf, cs as u64);
            put_u64(&mut buf, chash(cm));
            let call = prog.method(cm).body.get(cs).and_then(|s| s.call());
            let dispatches =
                call.is_some_and(|c| engine.narrowed_targets((cm, cs), c).contains(&m));
            buf.push(dispatches as u8);
            for e in graph.implicit_of((cm, cs)) {
                let chained = e.chains_to.map(|(c, _)| c);
                if e.target != m && chained != Some(m) {
                    continue;
                }
                buf.push(0xCB);
                put_u64(&mut buf, key_hash(e.target));
                put_u64(&mut buf, chash(e.target));
                put_operand(&mut buf, &e.recv_from);
                put_u64(&mut buf, e.param_from.len() as u64);
                for p in &e.param_from {
                    put_operand(&mut buf, p);
                }
                match e.chains_to {
                    None => buf.push(0),
                    Some((c, pidx)) => {
                        buf.push(1);
                        put_u64(&mut buf, key_hash(c));
                        put_u64(&mut buf, chash(c));
                        put_u64(&mut buf, pidx as u64);
                    }
                }
            }
        }
        validity.insert(m, fnv1a64(&buf));
    }

    let by_key = keys.iter().map(|(m, k)| (k.clone(), *m)).collect();
    Fingerprints { keys, by_key, content, validity }
}
