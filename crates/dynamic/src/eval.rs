//! Per-app and corpus-wide evaluation (the data behind Tables 1–2 and
//! Figs. 6–7).

use crate::fuzz::{run_auto_fuzzer, run_manual_fuzzer};
use crate::trace::{
    request_byte_fractions, response_byte_fractions, validate, ByteFractions, TrafficTrace,
    Validity,
};
use extractocol_core::report::AnalysisReport;
use extractocol_core::{Extractocol, Options};
use extractocol_corpus::{AppSpec, RowCounts};
use extractocol_http::HttpMethod;
use std::collections::BTreeSet;

/// Everything measured for one app.
pub struct AppEval {
    pub name: String,
    pub open_source: bool,
    /// Static analysis output.
    pub report: AnalysisReport,
    /// Manual-fuzzing trace.
    pub manual: TrafficTrace,
    /// Automatic-fuzzing trace.
    pub auto: TrafficTrace,
    /// Signature validity against the manual trace.
    pub validity: Validity,
}

impl AppEval {
    /// Runs the full evaluation for one app: analyze statically (the
    /// paper disables the async heuristic for open-source apps, §5.1),
    /// fuzz dynamically, validate.
    pub fn run(app: &AppSpec) -> AppEval {
        let opts = Options {
            slice: extractocol_core::slicing::SliceOptions {
                async_heuristic: !app.truth.open_source,
                ..Default::default()
            },
            ..Options::default()
        };
        let report = Extractocol::with_options(opts).analyze(&app.apk);
        let manual = run_manual_fuzzer(app);
        let auto = run_auto_fuzzer(app);
        let mut validity = validate(&report, &manual);
        // Orphan trace lines produced by transactions the ground truth
        // says are statically invisible (raw-socket ad/analytics traffic)
        // are expected — the §5.1 "manual fuzzing found more" rows.
        validity.orphan_lines.retain(|(_, uri)| {
            !app.truth.txns.iter().any(|t| {
                (!t.static_visible || t.body_requires_async)
                    && t.uri_examples.iter().any(|e| e == uri)
            })
        });
        AppEval {
            name: app.truth.name.clone(),
            open_source: app.truth.open_source,
            report,
            manual,
            auto,
            validity,
        }
    }

    /// The measured Extractocol row (Table 1 left numbers).
    pub fn extractocol_counts(&self) -> RowCounts {
        RowCounts {
            get: self.report.method_count(HttpMethod::Get),
            post: self.report.method_count(HttpMethod::Post),
            put: self.report.method_count(HttpMethod::Put),
            delete: self.report.method_count(HttpMethod::Delete),
            query: self.report.transactions.iter().filter(|t| t.has_query_string()).count(),
            json: self
                .report
                .transactions
                .iter()
                .filter(|t| t.uses_json())
                .map(|t| {
                    usize::from(matches!(
                        t.request_body,
                        Some(extractocol_core::sigbuild::BodySig::Json(_))
                    )) + usize::from(matches!(
                        t.response,
                        Some(extractocol_core::sigbuild::ResponseSig::Json(_))
                    ))
                })
                .sum(),
            xml: self.report.transactions.iter().filter(|t| t.uses_xml()).count(),
            pairs: self.report.pair_count(),
        }
    }

    /// The measured fuzzing row (middle/right numbers): unique request
    /// *signatures* observed in a trace. The paper groups raw trace URIs
    /// into unique patterns before counting ("first we manually group the
    /// request URIs into unique patterns", §5.2); the corpus ground truth
    /// provides that grouping — a transaction counts when any of its
    /// variant URIs shows up in the trace.
    pub fn trace_counts(
        trace: &TrafficTrace,
        truth: &extractocol_corpus::GroundTruth,
    ) -> RowCounts {
        let observed: BTreeSet<String> = trace.unique_uris();
        truth.counts_where(|t| t.uri_examples.iter().any(|e| observed.contains(e)))
    }

    /// Fig. 7 request-side keyword count from the static signatures.
    pub fn static_request_keywords(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for t in &self.report.transactions {
            out.extend(t.request_keywords());
        }
        out
    }

    /// Fig. 7 response-side keyword count from the static signatures.
    pub fn static_response_keywords(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for t in &self.report.transactions {
            out.extend(t.response_keywords());
        }
        out
    }

    /// Table 2 byte fractions on the manual trace.
    pub fn byte_fractions(&self) -> (ByteFractions, ByteFractions) {
        (
            request_byte_fractions(&self.report, &self.manual),
            response_byte_fractions(&self.report, &self.manual),
        )
    }
}

/// Evaluates a set of apps (sequentially; analysis dominates).
pub fn run_all(apps: &[AppSpec]) -> Vec<AppEval> {
    apps.iter().map(AppEval::run).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_radio_reddit_end_to_end() {
        let app = extractocol_corpus::app("radio reddit").unwrap();
        let eval = AppEval::run(&app);
        let c = eval.extractocol_counts();
        assert_eq!(c.get + c.post, 6, "six transactions: {:#?}", eval.report.to_table());
        // Signatures match the manual trace (§5.1 validity).
        assert!(
            eval.validity.orphan_lines.is_empty(),
            "validity: {:?}\n{}",
            eval.validity,
            eval.report.to_table()
        );
        // The login→vote dependency is discovered.
        assert!(!eval.report.dependencies.is_empty());
    }
}
