//! Captured traffic and the paper's trace-level metrics.
//!
//! * **Signature validity** (§5.1): every static signature with a
//!   corresponding trace must match it (URI regex + method + body
//!   signature).
//! * **Constant keywords** (Fig. 7): query keys, form keys, JSON keys, and
//!   XML tags/attributes found in requests/responses.
//! * **Byte attribution** (Table 2): what fraction of message bytes is
//!   covered by constant keywords (Rk), by the values of identified
//!   key/value pairs (Rv), and by fully-wildcard content (Rn).

use extractocol_core::report::{AnalysisReport, TxnReport};
use extractocol_core::sigbuild::{BodySig, ResponseSig};
use extractocol_http::{Body, HttpMethod, Regex, Transaction};
use std::collections::BTreeSet;
use std::fmt;

/// A captured traffic trace for one app.
#[derive(Clone, Debug)]
pub struct TrafficTrace {
    pub app: String,
    pub transactions: Vec<Transaction>,
}

impl TrafficTrace {
    /// Unique request URIs observed.
    pub fn unique_uris(&self) -> BTreeSet<String> {
        self.transactions.iter().map(|t| t.request.uri.to_uri_string()).collect()
    }

    /// Count of unique requests per method.
    pub fn method_count(&self, m: HttpMethod) -> usize {
        self.transactions
            .iter()
            .filter(|t| t.request.method == m)
            .map(|t| t.request.uri.to_uri_string())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Constant keywords in request query strings and bodies (Fig. 7,
    /// left bars): query keys, form keys, JSON body keys.
    pub fn request_keywords(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for t in &self.transactions {
            for (k, _) in &t.request.uri.query {
                out.insert(k.clone());
            }
            match &t.request.body {
                Body::Form(pairs) => {
                    for (k, _) in pairs {
                        out.insert(k.clone());
                    }
                }
                Body::Json(j) => {
                    for k in j.all_keys() {
                        out.insert(k.to_string());
                    }
                }
                Body::Xml(x) => {
                    for k in x.all_keywords() {
                        out.insert(k.to_string());
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Constant keywords in response bodies (Fig. 7, right bars).
    pub fn response_keywords(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for t in &self.transactions {
            match &t.response.body {
                Body::Json(j) => {
                    for k in j.all_keys() {
                        out.insert(k.to_string());
                    }
                }
                Body::Xml(x) => {
                    for k in x.all_keywords() {
                        out.insert(k.to_string());
                    }
                }
                _ => {}
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Line-based request serialization (the serving subsystem's wire format)
// ---------------------------------------------------------------------------

/// Hard cap on one wire-format line. Anything longer is an attack or a
/// corrupted file, never legitimate traffic: the body-parse limits
/// ([`extractocol_http::JsonLimits`]) stop at 8 MiB, so 16 MiB leaves
/// room for the URI and framing around the largest legal body.
pub const MAX_LINE_BYTES: usize = 16 << 20;

/// Hard cap on the byte length a `application/octet-stream` body may
/// declare. The length is *modelled*, not allocated, but an absurd value
/// (or a u64-overflow probe) is still a malformed line, not a request.
pub const MAX_BINARY_BYTES: usize = 1 << 30;

/// A structured, line-anchored wire-format parse error. The parser is
/// total: every input — including adversarial bytes — yields either a
/// trace or one of these, never a panic and never a silently dropped
/// field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number the error is anchored to.
    pub line: usize,
    pub kind: TraceParseErrorKind,
}

/// What exactly was wrong with the line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceParseErrorKind {
    /// Line exceeds [`MAX_LINE_BYTES`].
    LineTooLong { len: usize, max: usize },
    /// First field is not a known HTTP method.
    UnknownMethod(String),
    /// No URI field, or an empty one.
    MissingUri,
    /// A MIME field with no body field after it.
    MimeWithoutBody(String),
    /// More than the four `METHOD URI MIME BODY` fields. Rejected rather
    /// than ignored: silent truncation would hide framing corruption.
    TrailingFields { extra: usize },
    /// Unknown MIME tag in the third field.
    UnknownMime(String),
    /// Body field failed to decode under its MIME tag (with parse limits).
    BadBody(String),
    /// Dangling or unknown `\` escape inside a field.
    BadEscape(String),
    /// `application/octet-stream` length is not a number within
    /// [`MAX_BINARY_BYTES`].
    BadBinaryLength(String),
    /// Input is not valid UTF-8 (from [`TrafficTrace::parse_request_bytes`]).
    InvalidUtf8 { byte_offset: usize },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TraceParseErrorKind as K;
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            K::LineTooLong { len, max } => write!(f, "line too long ({len} bytes > max {max})"),
            K::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            K::MissingUri => write!(f, "missing URI"),
            K::MimeWithoutBody(m) => write!(f, "MIME {m:?} without a body field"),
            K::TrailingFields { extra } => {
                write!(f, "{extra} trailing field(s) after the body")
            }
            K::UnknownMime(m) => write!(f, "unknown MIME {m:?}"),
            K::BadBody(e) => write!(f, "bad body: {e}"),
            K::BadEscape(e) => write!(f, "bad escape: {e}"),
            K::BadBinaryLength(raw) => write!(f, "bad binary length {raw:?}"),
            K::InvalidUtf8 { byte_offset } => {
                write!(f, "invalid UTF-8 at byte offset {byte_offset}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Escapes a wire-format field so the framing bytes (tab, newline, CR)
/// and the escape character itself survive one tab-separated line.
/// JSON/XML writers already never emit control characters, but free-text
/// bodies, form values, and hostile URIs can contain anything.
fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_field`]. Unknown or dangling escapes are errors —
/// passing them through silently would un-anchor the round-trip property.
fn unescape_field(s: &str) -> Result<String, TraceParseErrorKind> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                return Err(TraceParseErrorKind::BadEscape(format!("\\{other}")));
            }
            None => return Err(TraceParseErrorKind::BadEscape("dangling \\".into())),
        }
    }
    Ok(out)
}

impl TrafficTrace {
    /// Serializes the trace's *requests* as one tab-separated line each:
    ///
    /// ```text
    /// METHOD<TAB>URI[<TAB>MIME<TAB>BODY]
    /// ```
    ///
    /// Blank lines and `#` comments are permitted in files. This is the
    /// traffic source format of `extractocol-serve classify --traffic`;
    /// responses are deliberately not serialized — classification is a
    /// request-side workload. The URI and body fields are escaped
    /// ([`escape_field`]) so tabs/newlines/CRs in free-text bodies or
    /// hostile URIs cannot break the framing; binary bodies serialize as
    /// their byte length.
    pub fn to_request_text(&self) -> String {
        let mut out = String::new();
        for t in &self.transactions {
            let req = &t.request;
            out.push_str(req.method.as_str());
            out.push('\t');
            out.push_str(&escape_field(&req.uri.to_uri_string()));
            match &req.body {
                Body::Empty => {}
                Body::Binary(n) => {
                    out.push('\t');
                    out.push_str(req.body.mime());
                    out.push('\t');
                    out.push_str(&n.to_string());
                }
                other => {
                    out.push('\t');
                    out.push_str(other.mime());
                    out.push('\t');
                    out.push_str(&escape_field(&other.to_bytes_string()));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses the [`TrafficTrace::to_request_text`] format back into a
    /// trace. Responses come back empty (`200`, no body): the format
    /// carries exactly what a classifier consumes.
    ///
    /// The parser is **total**: malformed input yields a structured,
    /// line-anchored [`TraceParseError`] — never a panic, never a silently
    /// ignored field — and per-line/body byte caps bound the work done on
    /// any input.
    pub fn parse_request_text(app: &str, text: &str) -> Result<TrafficTrace, TraceParseError> {
        let mut transactions = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let err = |kind: TraceParseErrorKind| TraceParseError { line: lineno, kind };
            if line.len() > MAX_LINE_BYTES {
                return Err(err(TraceParseErrorKind::LineTooLong {
                    len: line.len(),
                    max: MAX_LINE_BYTES,
                }));
            }
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split('\t');
            let method_str = fields.next().unwrap_or("");
            let method = HttpMethod::parse(method_str)
                .ok_or_else(|| err(TraceParseErrorKind::UnknownMethod(method_str.into())))?;
            let uri = fields
                .next()
                .filter(|u| !u.is_empty())
                .ok_or_else(|| err(TraceParseErrorKind::MissingUri))?;
            let uri = unescape_field(uri).map_err(&err)?;
            let body = match (fields.next(), fields.next()) {
                (None, _) => Body::Empty,
                (Some(mime), Some(raw)) => parse_body(mime, raw).map_err(&err)?,
                (Some(mime), None) => {
                    return Err(err(TraceParseErrorKind::MimeWithoutBody(mime.into())))
                }
            };
            let extra = fields.count();
            if extra > 0 {
                return Err(err(TraceParseErrorKind::TrailingFields { extra }));
            }
            transactions.push(Transaction {
                request: extractocol_http::Request {
                    method,
                    uri: extractocol_http::Uri::parse(&uri),
                    headers: Default::default(),
                    body,
                },
                response: extractocol_http::Response::ok(Body::Empty),
            });
        }
        Ok(TrafficTrace { app: app.to_string(), transactions })
    }

    /// Byte-level entry point for untrusted input: validates UTF-8 first
    /// and reports a structured, line-anchored error instead of forcing
    /// callers through a lossy conversion (or a panic on `from_utf8`).
    pub fn parse_request_bytes(app: &str, bytes: &[u8]) -> Result<TrafficTrace, TraceParseError> {
        match std::str::from_utf8(bytes) {
            Ok(text) => Self::parse_request_text(app, text),
            Err(e) => {
                let byte_offset = e.valid_up_to();
                let line = bytes[..byte_offset].iter().filter(|&&b| b == b'\n').count() + 1;
                Err(TraceParseError {
                    line,
                    kind: TraceParseErrorKind::InvalidUtf8 { byte_offset },
                })
            }
        }
    }
}

/// Parses a single wire-format line into a request. The streaming
/// counterpart of [`TrafficTrace::parse_request_text`] for line-at-a-time
/// consumers (the serve daemon): same grammar, same total-parser
/// guarantees, but no trace allocation per line. Blank lines and `#`
/// comments yield `Ok(None)`. Errors are anchored to line 1.
pub fn parse_request_line(
    line: &str,
) -> Result<Option<extractocol_http::Request>, TraceParseError> {
    let trimmed = line.trim_end_matches(['\r', '\n']);
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut trace = TrafficTrace::parse_request_text("line", trimmed)?;
    Ok(trace.transactions.pop().map(|t| t.request))
}

/// Decodes one serialized body field by its MIME tag, under the HTTP
/// layer's parse limits (depth/node/byte budgets for JSON and XML).
fn parse_body(mime: &str, raw: &str) -> Result<Body, TraceParseErrorKind> {
    use TraceParseErrorKind as K;
    match mime {
        "application/x-www-form-urlencoded" => {
            Ok(Body::Form(extractocol_http::uri::parse_query(&unescape_field(raw)?)))
        }
        "application/json" => extractocol_http::JsonValue::parse(&unescape_field(raw)?)
            .map(Body::Json)
            .map_err(|e| K::BadBody(format!("JSON: {e}"))),
        "application/xml" => extractocol_http::XmlElement::parse(&unescape_field(raw)?)
            .map(Body::Xml)
            .map_err(|e| K::BadBody(format!("XML: {e}"))),
        "text/plain" => Ok(Body::Text(unescape_field(raw)?)),
        "application/octet-stream" => match raw.parse::<usize>() {
            Ok(n) if n <= MAX_BINARY_BYTES => Ok(Body::Binary(n)),
            _ => Err(K::BadBinaryLength(raw.into())),
        },
        other => Err(K::UnknownMime(other.into())),
    }
}

/// Which trace transactions a static transaction signature matches.
pub fn matching_transactions<'t>(txn: &TxnReport, trace: &'t TrafficTrace) -> Vec<&'t Transaction> {
    let Ok(re) = Regex::new(&txn.uri_regex) else { return Vec::new() };
    trace
        .transactions
        .iter()
        .filter(|t| t.request.method == txn.method && re.is_match(&t.request.uri.to_uri_string()))
        .collect()
}

/// Signature-validity result for one app (§5.1: "All such signatures
/// generated a valid match with the actual traffic trace").
#[derive(Debug, Default, Clone)]
pub struct Validity {
    /// Signatures with at least one matching trace transaction.
    pub matched: usize,
    /// Signatures with no corresponding traffic (untriggered messages —
    /// the coverage advantage of static analysis).
    pub no_traffic: usize,
    /// Trace lines no signature matched. On a calibrated corpus these are
    /// exactly the messages static analysis cannot see (raw-socket
    /// ad/analytics traffic); anything else is a signature bug.
    pub orphan_lines: Vec<(HttpMethod, String)>,
}

/// Validates every reconstructed transaction against a trace.
pub fn validate(report: &AnalysisReport, trace: &TrafficTrace) -> Validity {
    let mut v = Validity::default();
    for txn in &report.transactions {
        if matching_transactions(txn, trace).is_empty() {
            v.no_traffic += 1;
        } else {
            v.matched += 1;
        }
    }
    for t in &trace.transactions {
        let uri = t.request.uri.to_uri_string();
        let matched = report.transactions.iter().any(|txn| {
            txn.method == t.request.method
                && Regex::new(&txn.uri_regex).map(|re| re.is_match(&uri)).unwrap_or(false)
        });
        if !matched {
            v.orphan_lines.push((t.request.method, uri));
        }
    }
    v
}

/// Byte-attribution fractions (Table 2): `Rk` = bytes matching constant
/// keywords, `Rv` = bytes of values whose keys were identified, `Rn` =
/// bytes covered only by wildcards.
#[derive(Debug, Default, Clone, Copy)]
pub struct ByteFractions {
    pub keyword_bytes: usize,
    pub value_bytes: usize,
    pub wildcard_bytes: usize,
}

impl ByteFractions {
    fn total(&self) -> usize {
        self.keyword_bytes + self.value_bytes + self.wildcard_bytes
    }

    /// `(Rk, Rv, Rn)` percentages.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.keyword_bytes as f64 / t as f64,
            100.0 * self.value_bytes as f64 / t as f64,
            100.0 * self.wildcard_bytes as f64 / t as f64,
        )
    }

    fn add(&mut self, other: ByteFractions) {
        self.keyword_bytes += other.keyword_bytes;
        self.value_bytes += other.value_bytes;
        self.wildcard_bytes += other.wildcard_bytes;
    }
}

/// Attributes the bytes of key/value pairs against a set of known keys.
fn attribute_pairs(pairs: &[(String, String)], known: &BTreeSet<String>) -> ByteFractions {
    let mut f = ByteFractions::default();
    for (k, v) in pairs {
        if known.contains(k) {
            f.keyword_bytes += k.len();
            f.value_bytes += v.len();
        } else {
            f.wildcard_bytes += k.len() + v.len();
        }
    }
    f
}

fn attribute_json(j: &extractocol_http::JsonValue, known: &BTreeSet<String>) -> ByteFractions {
    use extractocol_http::JsonValue as J;
    let mut f = ByteFractions::default();
    match j {
        J::Object(m) => {
            for (k, v) in m {
                if known.contains(k) {
                    f.keyword_bytes += k.len();
                    match v {
                        J::Object(_) | J::Array(_) => f.add(attribute_json(v, known)),
                        leaf => f.value_bytes += leaf.to_json().len(),
                    }
                } else {
                    f.wildcard_bytes += k.len() + v.to_json().len();
                }
            }
        }
        J::Array(items) => {
            for it in items {
                f.add(attribute_json(it, known));
            }
        }
        leaf => f.wildcard_bytes += leaf.to_json().len(),
    }
    f
}

/// Table 2 byte attribution for request bodies/query strings: matches each
/// trace transaction against its signature and classifies the bytes.
pub fn request_byte_fractions(report: &AnalysisReport, trace: &TrafficTrace) -> ByteFractions {
    let mut total = ByteFractions::default();
    for txn in &report.transactions {
        let known: BTreeSet<String> = txn.request_keywords().into_iter().collect();
        for t in matching_transactions(txn, trace) {
            total.add(attribute_pairs(
                &t.request
                    .uri
                    .query
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                &known,
            ));
            match &t.request.body {
                Body::Form(pairs) => total.add(attribute_pairs(pairs, &known)),
                Body::Json(j) => total.add(attribute_json(j, &known)),
                Body::Text(s) => total.wildcard_bytes += s.len(),
                _ => {}
            }
        }
    }
    total
}

/// Table 2 byte attribution for response bodies.
pub fn response_byte_fractions(report: &AnalysisReport, trace: &TrafficTrace) -> ByteFractions {
    let mut total = ByteFractions::default();
    for txn in &report.transactions {
        let known: BTreeSet<String> = match &txn.response {
            Some(ResponseSig::Json(j)) => j.keys().into_iter().map(str::to_string).collect(),
            Some(ResponseSig::Xml(x)) => x.keywords().into_iter().map(str::to_string).collect(),
            _ => BTreeSet::new(),
        };
        for t in matching_transactions(txn, trace) {
            match &t.response.body {
                Body::Json(j) => total.add(attribute_json(j, &known)),
                Body::Xml(x) => {
                    // Tags/attrs as keywords; text content as values.
                    let mut stack = vec![x.clone()];
                    while let Some(e) = stack.pop() {
                        if known.contains(&e.name) {
                            total.keyword_bytes += e.name.len();
                            total.value_bytes += e.text_content().len();
                        } else {
                            total.wildcard_bytes += e.name.len() + e.text_content().len();
                        }
                        for (k, v) in &e.attrs {
                            if known.contains(k) {
                                total.keyword_bytes += k.len();
                                total.value_bytes += v.len();
                            } else {
                                total.wildcard_bytes += k.len() + v.len();
                            }
                        }
                        for c in &e.children {
                            if let extractocol_http::XmlNode::Element(ce) = c {
                                stack.push(ce.clone());
                            }
                        }
                    }
                }
                Body::Text(s) => total.wildcard_bytes += s.len(),
                _ => {}
            }
        }
    }
    total
}

/// Validates a request body against its static body signature (used by
/// integration tests for the logical-equivalence check).
pub fn body_matches(sig: &BodySig, body: &Body) -> bool {
    match (sig, body) {
        (BodySig::Form(pairs), Body::Form(concrete)) => pairs.iter().all(|(k, _)| {
            let key_re = Regex::new(&k.to_regex());
            key_re.map(|re| concrete.iter().any(|(ck, _)| re.is_match(ck))).unwrap_or(false)
        }),
        (BodySig::Json(js), Body::Json(j)) => js.matches(j),
        (BodySig::Xml(xs), Body::Xml(x)) => xs.matches(x),
        (BodySig::Text(_), _) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_http::{Request, Response};

    fn trace_with(uri: &str, body: Body, resp_body: Body) -> TrafficTrace {
        TrafficTrace {
            app: "t".into(),
            transactions: vec![Transaction {
                request: Request {
                    method: HttpMethod::Post,
                    uri: extractocol_http::Uri::parse(uri),
                    headers: Default::default(),
                    body,
                },
                response: Response::ok(resp_body),
            }],
        }
    }

    #[test]
    fn keywords_extracted_from_trace() {
        let t = trace_with(
            "https://h/api/login?user=bob&passwd=x",
            Body::Form(vec![("api_type".into(), "json".into())]),
            Body::Json(
                extractocol_http::JsonValue::parse(r#"{"modhash":"m","cookie":"c"}"#).unwrap(),
            ),
        );
        let req = t.request_keywords();
        assert!(req.contains("user") && req.contains("passwd") && req.contains("api_type"));
        let resp = t.response_keywords();
        assert!(resp.contains("modhash") && resp.contains("cookie"));
    }

    #[test]
    fn request_text_round_trips_every_body_kind() {
        let mk = |body: Body| Transaction {
            request: Request {
                method: HttpMethod::Post,
                uri: extractocol_http::Uri::parse("https://h/api?x=1"),
                headers: Default::default(),
                body,
            },
            response: Response::ok(Body::Json(
                extractocol_http::JsonValue::parse(r#"{"ignored":1}"#).unwrap(),
            )),
        };
        let trace = TrafficTrace {
            app: "rt".into(),
            transactions: vec![
                Transaction {
                    request: Request::get("https://h/plain"),
                    response: Response::ok(Body::Empty),
                },
                mk(Body::Form(vec![("user".into(), "bob".into()), ("uh".into(), "h".into())])),
                mk(Body::Json(extractocol_http::JsonValue::parse(r#"{"id":"42"}"#).unwrap())),
                mk(Body::Xml(extractocol_http::XmlElement::parse("<q><a>1</a></q>").unwrap())),
                mk(Body::Text("raw payload".into())),
                mk(Body::Binary(16)),
            ],
        };
        let text = trace.to_request_text();
        let parsed = TrafficTrace::parse_request_text("rt", &text).unwrap();
        assert_eq!(parsed.transactions.len(), trace.transactions.len());
        for (orig, back) in trace.transactions.iter().zip(&parsed.transactions) {
            assert_eq!(orig.request.method, back.request.method);
            assert_eq!(orig.request.uri.to_uri_string(), back.request.uri.to_uri_string());
            assert_eq!(orig.request.body, back.request.body);
            // Responses are intentionally not carried.
            assert_eq!(back.response.body, Body::Empty);
        }
        // Comments and blank lines are tolerated; garbage is anchored.
        let commented = format!("# header\n\n{text}");
        assert_eq!(
            TrafficTrace::parse_request_text("rt", &commented).unwrap().transactions.len(),
            trace.transactions.len()
        );
        let err = TrafficTrace::parse_request_text("rt", "FETCH https://h/x").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, TraceParseErrorKind::UnknownMethod(_)), "{err}");
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn wire_format_parse_errors_are_structured_and_total() {
        use TraceParseErrorKind as K;
        let parse = |s: &str| TrafficTrace::parse_request_text("adv", s);

        // Regression: trailing fields used to be silently dropped —
        // framing corruption must surface, not truncate.
        let err = parse("GET\thttps://h/a\ttext/plain\tbody\textra").unwrap_err();
        assert_eq!(err.kind, K::TrailingFields { extra: 1 });

        // Regression: a MIME tag with no body field.
        let err = parse("POST\thttps://h/a\tapplication/json").unwrap_err();
        assert!(matches!(err.kind, K::MimeWithoutBody(_)));

        // Regression: u64-overflow and absurd binary lengths are
        // structured errors, not panics or silent acceptance.
        let overflow = format!("POST\thttps://h/a\tapplication/octet-stream\t{}", u128::MAX);
        assert!(matches!(parse(&overflow).unwrap_err().kind, K::BadBinaryLength(_)));
        let absurd = format!("POST\thttps://h/a\tapplication/octet-stream\t{}", u64::MAX);
        assert!(matches!(parse(&absurd).unwrap_err().kind, K::BadBinaryLength(_)));
        assert!(parse("POST\thttps://h/a\tapplication/octet-stream\t1024").is_ok());

        // Regression: lone CR lines and empty lines are skipped, not
        // misparsed as a request with an empty method.
        assert_eq!(parse("\r\n\n# c\r\n").unwrap().transactions.len(), 0);

        // Regression: an oversized line is rejected up front with its
        // length, before any body parsing happens.
        let giant = format!("GET\thttps://h/{}", "a".repeat(MAX_LINE_BYTES));
        assert!(matches!(parse(&giant).unwrap_err().kind, K::LineTooLong { .. }));

        // Unknown escapes and dangling backslashes are anchored errors.
        let err = parse("GET\thttps://h/a\ttext/plain\tbad\\q").unwrap_err();
        assert!(matches!(err.kind, K::BadEscape(_)));
        let err = parse("GET\thttps://h/a\ttext/plain\tdangling\\").unwrap_err();
        assert!(matches!(err.kind, K::BadEscape(_)));

        // Non-UTF-8 bytes get a line-anchored structured error.
        let err =
            TrafficTrace::parse_request_bytes("adv", b"GET\thttps://h/a\n\xff\xfe").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, K::InvalidUtf8 { byte_offset: 16 }));
    }

    #[test]
    fn control_characters_in_text_bodies_round_trip() {
        // Regression: free-text bodies (and hostile URIs) containing the
        // framing bytes used to corrupt the wire format — a tab in a text
        // body silently became a trailing field.
        let trace = trace_with(
            "https://h/api?x=1",
            Body::Text("line1\nline2\ttabbed\rcr and \\backslash".into()),
            Body::Empty,
        );
        let text = trace.to_request_text();
        assert_eq!(text.lines().count(), 1, "framing broken: {text:?}");
        let back = TrafficTrace::parse_request_text("t", &text).unwrap();
        assert_eq!(back.transactions[0].request.body, trace.transactions[0].request.body);

        // Form values with embedded control characters survive too.
        let trace = trace_with(
            "https://h/api",
            Body::Form(vec![("k".into(), "v1\tv2\nv3".into())]),
            Body::Empty,
        );
        let text = trace.to_request_text();
        assert_eq!(text.lines().count(), 1);
        let back = TrafficTrace::parse_request_text("t", &text).unwrap();
        assert_eq!(back.transactions[0].request.body, trace.transactions[0].request.body);
    }

    #[test]
    fn byte_attribution_splits_known_and_unknown() {
        let known: BTreeSet<String> = ["user".to_string()].into_iter().collect();
        let f = attribute_pairs(
            &[("user".into(), "bob".into()), ("mystery".into(), "zz".into())],
            &known,
        );
        assert_eq!(f.keyword_bytes, 4);
        assert_eq!(f.value_bytes, 3);
        assert_eq!(f.wildcard_bytes, 9);
        let (rk, rv, rn) = f.percentages();
        assert!((rk + rv + rn - 100.0).abs() < 1e-9);
    }
}
