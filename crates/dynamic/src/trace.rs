//! Captured traffic and the paper's trace-level metrics.
//!
//! * **Signature validity** (§5.1): every static signature with a
//!   corresponding trace must match it (URI regex + method + body
//!   signature).
//! * **Constant keywords** (Fig. 7): query keys, form keys, JSON keys, and
//!   XML tags/attributes found in requests/responses.
//! * **Byte attribution** (Table 2): what fraction of message bytes is
//!   covered by constant keywords (Rk), by the values of identified
//!   key/value pairs (Rv), and by fully-wildcard content (Rn).

use extractocol_core::report::{AnalysisReport, TxnReport};
use extractocol_core::sigbuild::{BodySig, ResponseSig};
use extractocol_http::{Body, HttpMethod, Regex, Transaction};
use std::collections::BTreeSet;

/// A captured traffic trace for one app.
#[derive(Clone, Debug)]
pub struct TrafficTrace {
    pub app: String,
    pub transactions: Vec<Transaction>,
}

impl TrafficTrace {
    /// Unique request URIs observed.
    pub fn unique_uris(&self) -> BTreeSet<String> {
        self.transactions.iter().map(|t| t.request.uri.to_uri_string()).collect()
    }

    /// Count of unique requests per method.
    pub fn method_count(&self, m: HttpMethod) -> usize {
        self.transactions
            .iter()
            .filter(|t| t.request.method == m)
            .map(|t| t.request.uri.to_uri_string())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Constant keywords in request query strings and bodies (Fig. 7,
    /// left bars): query keys, form keys, JSON body keys.
    pub fn request_keywords(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for t in &self.transactions {
            for (k, _) in &t.request.uri.query {
                out.insert(k.clone());
            }
            match &t.request.body {
                Body::Form(pairs) => {
                    for (k, _) in pairs {
                        out.insert(k.clone());
                    }
                }
                Body::Json(j) => {
                    for k in j.all_keys() {
                        out.insert(k.to_string());
                    }
                }
                Body::Xml(x) => {
                    for k in x.all_keywords() {
                        out.insert(k.to_string());
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Constant keywords in response bodies (Fig. 7, right bars).
    pub fn response_keywords(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for t in &self.transactions {
            match &t.response.body {
                Body::Json(j) => {
                    for k in j.all_keys() {
                        out.insert(k.to_string());
                    }
                }
                Body::Xml(x) => {
                    for k in x.all_keywords() {
                        out.insert(k.to_string());
                    }
                }
                _ => {}
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Line-based request serialization (the serving subsystem's wire format)
// ---------------------------------------------------------------------------

impl TrafficTrace {
    /// Serializes the trace's *requests* as one tab-separated line each:
    ///
    /// ```text
    /// METHOD<TAB>URI[<TAB>MIME<TAB>BODY]
    /// ```
    ///
    /// Blank lines and `#` comments are permitted in files. This is the
    /// traffic source format of `extractocol-serve classify --traffic`;
    /// responses are deliberately not serialized — classification is a
    /// request-side workload. Bodies are rendered on one line (our JSON and
    /// XML writers never emit newlines; binary bodies serialize as their
    /// byte length).
    pub fn to_request_text(&self) -> String {
        let mut out = String::new();
        for t in &self.transactions {
            let req = &t.request;
            out.push_str(req.method.as_str());
            out.push('\t');
            out.push_str(&req.uri.to_uri_string());
            match &req.body {
                Body::Empty => {}
                Body::Binary(n) => {
                    out.push('\t');
                    out.push_str(req.body.mime());
                    out.push('\t');
                    out.push_str(&n.to_string());
                }
                other => {
                    out.push('\t');
                    out.push_str(other.mime());
                    out.push('\t');
                    out.push_str(&other.to_bytes_string());
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses the [`TrafficTrace::to_request_text`] format back into a
    /// trace. Responses come back empty (`200`, no body): the format
    /// carries exactly what a classifier consumes. Returns a line-anchored
    /// error on malformed input.
    pub fn parse_request_text(app: &str, text: &str) -> Result<TrafficTrace, String> {
        let mut transactions = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split('\t');
            let method_str = fields.next().unwrap_or("");
            let method = HttpMethod::parse(method_str)
                .ok_or_else(|| format!("line {}: unknown method {:?}", lineno + 1, method_str))?;
            let uri = fields
                .next()
                .filter(|u| !u.is_empty())
                .ok_or_else(|| format!("line {}: missing URI", lineno + 1))?;
            let body = match (fields.next(), fields.next()) {
                (None, _) => Body::Empty,
                (Some(mime), Some(raw)) => {
                    parse_body(mime, raw).map_err(|e| format!("line {}: {e}", lineno + 1))?
                }
                (Some(_), None) => {
                    return Err(format!("line {}: MIME without a body field", lineno + 1))
                }
            };
            transactions.push(Transaction {
                request: extractocol_http::Request {
                    method,
                    uri: extractocol_http::Uri::parse(uri),
                    headers: Default::default(),
                    body,
                },
                response: extractocol_http::Response::ok(Body::Empty),
            });
        }
        Ok(TrafficTrace { app: app.to_string(), transactions })
    }
}

/// Decodes one serialized body field by its MIME tag.
fn parse_body(mime: &str, raw: &str) -> Result<Body, String> {
    match mime {
        "application/x-www-form-urlencoded" => {
            Ok(Body::Form(extractocol_http::uri::parse_query(raw)))
        }
        "application/json" => extractocol_http::JsonValue::parse(raw)
            .map(Body::Json)
            .map_err(|e| format!("bad JSON body: {e:?}")),
        "application/xml" => extractocol_http::XmlElement::parse(raw)
            .map(Body::Xml)
            .map_err(|e| format!("bad XML body: {e:?}")),
        "text/plain" => Ok(Body::Text(raw.to_string())),
        "application/octet-stream" => {
            raw.parse::<usize>().map(Body::Binary).map_err(|_| format!("bad binary length {raw:?}"))
        }
        other => Err(format!("unknown MIME {other:?}")),
    }
}

/// Which trace transactions a static transaction signature matches.
pub fn matching_transactions<'t>(txn: &TxnReport, trace: &'t TrafficTrace) -> Vec<&'t Transaction> {
    let Ok(re) = Regex::new(&txn.uri_regex) else { return Vec::new() };
    trace
        .transactions
        .iter()
        .filter(|t| t.request.method == txn.method && re.is_match(&t.request.uri.to_uri_string()))
        .collect()
}

/// Signature-validity result for one app (§5.1: "All such signatures
/// generated a valid match with the actual traffic trace").
#[derive(Debug, Default, Clone)]
pub struct Validity {
    /// Signatures with at least one matching trace transaction.
    pub matched: usize,
    /// Signatures with no corresponding traffic (untriggered messages —
    /// the coverage advantage of static analysis).
    pub no_traffic: usize,
    /// Trace lines no signature matched. On a calibrated corpus these are
    /// exactly the messages static analysis cannot see (raw-socket
    /// ad/analytics traffic); anything else is a signature bug.
    pub orphan_lines: Vec<(HttpMethod, String)>,
}

/// Validates every reconstructed transaction against a trace.
pub fn validate(report: &AnalysisReport, trace: &TrafficTrace) -> Validity {
    let mut v = Validity::default();
    for txn in &report.transactions {
        if matching_transactions(txn, trace).is_empty() {
            v.no_traffic += 1;
        } else {
            v.matched += 1;
        }
    }
    for t in &trace.transactions {
        let uri = t.request.uri.to_uri_string();
        let matched = report.transactions.iter().any(|txn| {
            txn.method == t.request.method
                && Regex::new(&txn.uri_regex).map(|re| re.is_match(&uri)).unwrap_or(false)
        });
        if !matched {
            v.orphan_lines.push((t.request.method, uri));
        }
    }
    v
}

/// Byte-attribution fractions (Table 2): `Rk` = bytes matching constant
/// keywords, `Rv` = bytes of values whose keys were identified, `Rn` =
/// bytes covered only by wildcards.
#[derive(Debug, Default, Clone, Copy)]
pub struct ByteFractions {
    pub keyword_bytes: usize,
    pub value_bytes: usize,
    pub wildcard_bytes: usize,
}

impl ByteFractions {
    fn total(&self) -> usize {
        self.keyword_bytes + self.value_bytes + self.wildcard_bytes
    }

    /// `(Rk, Rv, Rn)` percentages.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.keyword_bytes as f64 / t as f64,
            100.0 * self.value_bytes as f64 / t as f64,
            100.0 * self.wildcard_bytes as f64 / t as f64,
        )
    }

    fn add(&mut self, other: ByteFractions) {
        self.keyword_bytes += other.keyword_bytes;
        self.value_bytes += other.value_bytes;
        self.wildcard_bytes += other.wildcard_bytes;
    }
}

/// Attributes the bytes of key/value pairs against a set of known keys.
fn attribute_pairs(pairs: &[(String, String)], known: &BTreeSet<String>) -> ByteFractions {
    let mut f = ByteFractions::default();
    for (k, v) in pairs {
        if known.contains(k) {
            f.keyword_bytes += k.len();
            f.value_bytes += v.len();
        } else {
            f.wildcard_bytes += k.len() + v.len();
        }
    }
    f
}

fn attribute_json(j: &extractocol_http::JsonValue, known: &BTreeSet<String>) -> ByteFractions {
    use extractocol_http::JsonValue as J;
    let mut f = ByteFractions::default();
    match j {
        J::Object(m) => {
            for (k, v) in m {
                if known.contains(k) {
                    f.keyword_bytes += k.len();
                    match v {
                        J::Object(_) | J::Array(_) => f.add(attribute_json(v, known)),
                        leaf => f.value_bytes += leaf.to_json().len(),
                    }
                } else {
                    f.wildcard_bytes += k.len() + v.to_json().len();
                }
            }
        }
        J::Array(items) => {
            for it in items {
                f.add(attribute_json(it, known));
            }
        }
        leaf => f.wildcard_bytes += leaf.to_json().len(),
    }
    f
}

/// Table 2 byte attribution for request bodies/query strings: matches each
/// trace transaction against its signature and classifies the bytes.
pub fn request_byte_fractions(report: &AnalysisReport, trace: &TrafficTrace) -> ByteFractions {
    let mut total = ByteFractions::default();
    for txn in &report.transactions {
        let known: BTreeSet<String> = txn.request_keywords().into_iter().collect();
        for t in matching_transactions(txn, trace) {
            total.add(attribute_pairs(
                &t.request
                    .uri
                    .query
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                &known,
            ));
            match &t.request.body {
                Body::Form(pairs) => total.add(attribute_pairs(pairs, &known)),
                Body::Json(j) => total.add(attribute_json(j, &known)),
                Body::Text(s) => total.wildcard_bytes += s.len(),
                _ => {}
            }
        }
    }
    total
}

/// Table 2 byte attribution for response bodies.
pub fn response_byte_fractions(report: &AnalysisReport, trace: &TrafficTrace) -> ByteFractions {
    let mut total = ByteFractions::default();
    for txn in &report.transactions {
        let known: BTreeSet<String> = match &txn.response {
            Some(ResponseSig::Json(j)) => j.keys().into_iter().map(str::to_string).collect(),
            Some(ResponseSig::Xml(x)) => x.keywords().into_iter().map(str::to_string).collect(),
            _ => BTreeSet::new(),
        };
        for t in matching_transactions(txn, trace) {
            match &t.response.body {
                Body::Json(j) => total.add(attribute_json(j, &known)),
                Body::Xml(x) => {
                    // Tags/attrs as keywords; text content as values.
                    let mut stack = vec![x.clone()];
                    while let Some(e) = stack.pop() {
                        if known.contains(&e.name) {
                            total.keyword_bytes += e.name.len();
                            total.value_bytes += e.text_content().len();
                        } else {
                            total.wildcard_bytes += e.name.len() + e.text_content().len();
                        }
                        for (k, v) in &e.attrs {
                            if known.contains(k) {
                                total.keyword_bytes += k.len();
                                total.value_bytes += v.len();
                            } else {
                                total.wildcard_bytes += k.len() + v.len();
                            }
                        }
                        for c in &e.children {
                            if let extractocol_http::XmlNode::Element(ce) = c {
                                stack.push(ce.clone());
                            }
                        }
                    }
                }
                Body::Text(s) => total.wildcard_bytes += s.len(),
                _ => {}
            }
        }
    }
    total
}

/// Validates a request body against its static body signature (used by
/// integration tests for the logical-equivalence check).
pub fn body_matches(sig: &BodySig, body: &Body) -> bool {
    match (sig, body) {
        (BodySig::Form(pairs), Body::Form(concrete)) => pairs.iter().all(|(k, _)| {
            let key_re = Regex::new(&k.to_regex());
            key_re.map(|re| concrete.iter().any(|(ck, _)| re.is_match(ck))).unwrap_or(false)
        }),
        (BodySig::Json(js), Body::Json(j)) => js.matches(j),
        (BodySig::Xml(xs), Body::Xml(x)) => xs.matches(x),
        (BodySig::Text(_), _) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_http::{Request, Response};

    fn trace_with(uri: &str, body: Body, resp_body: Body) -> TrafficTrace {
        TrafficTrace {
            app: "t".into(),
            transactions: vec![Transaction {
                request: Request {
                    method: HttpMethod::Post,
                    uri: extractocol_http::Uri::parse(uri),
                    headers: Default::default(),
                    body,
                },
                response: Response::ok(resp_body),
            }],
        }
    }

    #[test]
    fn keywords_extracted_from_trace() {
        let t = trace_with(
            "https://h/api/login?user=bob&passwd=x",
            Body::Form(vec![("api_type".into(), "json".into())]),
            Body::Json(
                extractocol_http::JsonValue::parse(r#"{"modhash":"m","cookie":"c"}"#).unwrap(),
            ),
        );
        let req = t.request_keywords();
        assert!(req.contains("user") && req.contains("passwd") && req.contains("api_type"));
        let resp = t.response_keywords();
        assert!(resp.contains("modhash") && resp.contains("cookie"));
    }

    #[test]
    fn request_text_round_trips_every_body_kind() {
        let mk = |body: Body| Transaction {
            request: Request {
                method: HttpMethod::Post,
                uri: extractocol_http::Uri::parse("https://h/api?x=1"),
                headers: Default::default(),
                body,
            },
            response: Response::ok(Body::Json(
                extractocol_http::JsonValue::parse(r#"{"ignored":1}"#).unwrap(),
            )),
        };
        let trace = TrafficTrace {
            app: "rt".into(),
            transactions: vec![
                Transaction {
                    request: Request::get("https://h/plain"),
                    response: Response::ok(Body::Empty),
                },
                mk(Body::Form(vec![("user".into(), "bob".into()), ("uh".into(), "h".into())])),
                mk(Body::Json(extractocol_http::JsonValue::parse(r#"{"id":"42"}"#).unwrap())),
                mk(Body::Xml(extractocol_http::XmlElement::parse("<q><a>1</a></q>").unwrap())),
                mk(Body::Text("raw payload".into())),
                mk(Body::Binary(16)),
            ],
        };
        let text = trace.to_request_text();
        let parsed = TrafficTrace::parse_request_text("rt", &text).unwrap();
        assert_eq!(parsed.transactions.len(), trace.transactions.len());
        for (orig, back) in trace.transactions.iter().zip(&parsed.transactions) {
            assert_eq!(orig.request.method, back.request.method);
            assert_eq!(orig.request.uri.to_uri_string(), back.request.uri.to_uri_string());
            assert_eq!(orig.request.body, back.request.body);
            // Responses are intentionally not carried.
            assert_eq!(back.response.body, Body::Empty);
        }
        // Comments and blank lines are tolerated; garbage is anchored.
        let commented = format!("# header\n\n{text}");
        assert_eq!(
            TrafficTrace::parse_request_text("rt", &commented).unwrap().transactions.len(),
            trace.transactions.len()
        );
        let err = TrafficTrace::parse_request_text("rt", "FETCH https://h/x").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn byte_attribution_splits_known_and_unknown() {
        let known: BTreeSet<String> = ["user".to_string()].into_iter().collect();
        let f = attribute_pairs(
            &[("user".into(), "bob".into()), ("mystery".into(), "zz".into())],
            &known,
        );
        assert_eq!(f.keyword_bytes, 4);
        assert_eq!(f.value_bytes, 3);
        assert_eq!(f.wildcard_bytes, 9);
        let (rk, rv, rn) = f.percentages();
        assert!((rk + rv + rn - 100.0).abs() < 1e-9);
    }
}
