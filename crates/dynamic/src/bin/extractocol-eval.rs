//! The `extractocol-eval` command-line tool: corpus-wide validation of the
//! static pipeline against the dynamic interpreter.
//!
//! ```bash
//! extractocol-eval --conformance                # oracle over every corpus app
//! extractocol-eval --conformance --app "TED"    # one app only
//! extractocol-eval --conformance --jobs 0       # one worker per core
//! extractocol-eval --conformance-mutate         # seeded mutation self-test
//! extractocol-eval --conformance-mutate --seed 7 --sites 3
//! ```
//!
//! `--conformance` exits non-zero when any app yields a diagnostic;
//! `--conformance-mutate` exits non-zero when the oracle detects < 90% of
//! the seeded perturbations.

use extractocol_dynamic::conformance::{conformance_check, mutation_self_test};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: extractocol-eval (--conformance | --conformance-mutate) \
         [--app <name>] [--jobs <n>] [--seed <n>] [--sites <n>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut conformance = false;
    let mut mutate = false;
    let mut app_filter: Option<String> = None;
    let mut jobs = 1usize;
    let mut seed = 0xE7_AC_0C_01u64;
    let mut sites = 2usize;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--conformance" => conformance = true,
            "--conformance-mutate" => mutate = true,
            "--app" => match it.next() {
                Some(n) => app_filter = Some(n),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--sites" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => sites = n,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if conformance == mutate {
        return usage();
    }

    let mut apps = extractocol_corpus::all_apps();
    if let Some(name) = &app_filter {
        apps.retain(|a| &a.truth.name == name);
        if apps.is_empty() {
            eprintln!("extractocol-eval: no corpus app named {name:?}");
            return ExitCode::FAILURE;
        }
    }

    if conformance {
        let mut dirty = 0usize;
        for app in &apps {
            let (_, conf) = conformance_check(app, jobs);
            print!("{}", conf.to_text());
            if !conf.is_clean() {
                dirty += 1;
            }
        }
        if dirty > 0 {
            eprintln!("extractocol-eval: {dirty} app(s) with conformance diagnostics");
            return ExitCode::FAILURE;
        }
        println!("conformance: all {} app(s) clean", apps.len());
        return ExitCode::SUCCESS;
    }

    let summary = mutation_self_test(&apps, seed, sites, jobs);
    print!("{}", summary.to_text());
    if summary.total() == 0 {
        eprintln!("extractocol-eval: no mutation sites found");
        return ExitCode::FAILURE;
    }
    if summary.rate() < 0.9 {
        eprintln!(
            "extractocol-eval: detection rate {:.1}% below the 90% gate",
            100.0 * summary.rate()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
