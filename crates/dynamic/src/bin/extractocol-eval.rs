//! The `extractocol-eval` command-line tool: corpus-wide validation of the
//! static pipeline against the dynamic interpreter.
//!
//! ```bash
//! extractocol-eval --conformance                # oracle over every corpus app
//! extractocol-eval --conformance --app "TED"    # one app only
//! extractocol-eval --conformance --jobs 0       # one worker per core
//! extractocol-eval --conformance --timings      # per-phase breakdown per app
//! extractocol-eval --conformance --trace-out trace.json --trace-summary
//! extractocol-eval --conformance --metrics-out metrics.txt
//! extractocol-eval --conformance --log-out events.log --log-level debug
//! extractocol-eval --conformance --targeted     # demand-driven cone analysis
//! extractocol-eval --conformance --summary-cache-dir cache/  # persistent summaries
//! extractocol-eval --conformance --report-out reports.txt    # canonical JSON per app
//! extractocol-eval --conformance-mutate         # seeded mutation self-test
//! extractocol-eval --conformance-mutate --seed 7 --sites 3
//! ```
//!
//! `--conformance` exits non-zero when any app yields a diagnostic;
//! `--conformance-mutate` exits non-zero when the oracle detects < 90% of
//! the seeded perturbations. `--trace-out` records the whole run as one
//! span tree (per app → per phase → per DP) in Chrome-trace JSON;
//! `--timings` prints the `PhaseTimings` table — including the
//! conformance slot, so the total matches the end-to-end run.

use extractocol_core::{EventLog, Level, SinkFormat, TraceCollector};
use extractocol_dynamic::conformance::{conformance_check_with, mutation_self_test, EvalConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: extractocol-eval (--conformance | --conformance-mutate) \
         [--app <name>] [--jobs <n>] [--seed <n>] [--sites <n>] [--timings] \
         [--targeted] [--summary-cache-dir <dir>] [--no-incremental] \
         [--report-out <file>] [--trace-out <file>] [--trace-summary] \
         [--metrics-out <file>] [--log-out <file>] [--log-level <level>]"
    );
    ExitCode::from(2)
}

/// A per-app `.exsm` filename inside the cache dir: the app name with
/// anything outside `[A-Za-z0-9._-]` mapped to `_`.
fn cache_file(dir: &str, app: &str) -> std::path::PathBuf {
    let safe: String = app
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || ".-_".contains(c) { c } else { '_' })
        .collect();
    std::path::Path::new(dir).join(format!("{safe}.exsm"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut conformance = false;
    let mut mutate = false;
    let mut app_filter: Option<String> = None;
    let mut jobs = 1usize;
    let mut seed = 0xE7_AC_0C_01u64;
    let mut sites = 2usize;
    let mut timings = false;
    let mut trace_summary = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut log_out: Option<String> = None;
    let mut log_level = Level::Info;
    let mut report_out: Option<String> = None;
    let mut targeted = false;
    let mut incremental = true;
    let mut cache_dir: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--conformance" => conformance = true,
            "--conformance-mutate" => mutate = true,
            "--timings" => timings = true,
            "--targeted" => targeted = true,
            "--no-incremental" => incremental = false,
            "--summary-cache-dir" => match it.next() {
                Some(d) => cache_dir = Some(d),
                None => return usage(),
            },
            "--report-out" => match it.next() {
                Some(p) => report_out = Some(p),
                None => return usage(),
            },
            "--trace-summary" => trace_summary = true,
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            "--log-out" => match it.next() {
                Some(p) => log_out = Some(p),
                None => return usage(),
            },
            "--log-level" => match it.next().and_then(|l| Level::parse(&l)) {
                Some(l) => log_level = l,
                None => return usage(),
            },
            "--app" => match it.next() {
                Some(n) => app_filter = Some(n),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--sites" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => sites = n,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if conformance == mutate {
        return usage();
    }

    let mut apps = extractocol_corpus::all_apps();
    if let Some(name) = &app_filter {
        apps.retain(|a| &a.truth.name == name);
        if apps.is_empty() {
            eprintln!("extractocol-eval: no corpus app named {name:?}");
            return ExitCode::FAILURE;
        }
    }

    // Driver-level structured events: one record per app plus run
    // start/finish milestones (the per-phase pipeline events live behind
    // `extractocol --log-out`; the eval driver reports outcomes).
    let events = if let Some(out) = &log_out {
        let log = EventLog::enabled(log_level);
        match std::fs::File::create(out) {
            Ok(file) => log.set_sink(Box::new(file), SinkFormat::Text),
            Err(e) => {
                eprintln!("extractocol-eval: cannot create {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
        log
    } else {
        EventLog::disabled()
    };

    if conformance {
        let trace = if trace_out.is_some() || trace_summary {
            TraceCollector::enabled()
        } else {
            TraceCollector::disabled()
        };
        events
            .info("eval", "conformance run started")
            .field("apps", apps.len() as u64)
            .field("jobs", jobs as u64)
            .field("targeted", targeted)
            .emit();
        if let Some(dir) = &cache_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("extractocol-eval: cannot create {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
        let mut dirty = 0usize;
        let mut report_lines = String::new();
        for app in &apps {
            let cfg = EvalConfig {
                jobs,
                targeted,
                incremental,
                summary_cache_path: cache_dir.as_ref().map(|d| cache_file(d, &app.truth.name)),
            };
            let (report, conf) = conformance_check_with(app, &cfg, &trace);
            print!("{}", conf.to_text());
            if let Some(incr) = &report.metrics.incr {
                println!("incr[{}]: {}", app.truth.name, incr.to_line());
                if let Some(e) = &incr.load_error {
                    println!("incr[{}]: cache load failed ({e}); ran cold", app.truth.name);
                }
                if let Some(e) = &incr.save_error {
                    println!("incr[{}]: cache save failed ({e})", app.truth.name);
                }
            }
            if let Some(tg) = &report.metrics.targeted {
                println!(
                    "targeted[{}]: cone {}/{} methods; skipped {}/{} classes",
                    app.truth.name,
                    tg.cone_methods,
                    tg.total_methods,
                    tg.skipped_classes,
                    tg.total_classes
                );
            }
            if report_out.is_some() {
                report_lines.push_str(&format!(
                    "{}\t{}\n",
                    app.truth.name,
                    report.to_json().to_json()
                ));
            }
            if timings {
                println!("{} phase timings:", app.truth.name);
                print!("{}", report.metrics.phases.to_text());
            }
            if let Some(path) = &metrics_out {
                // One exposition file per run; last app wins per-app
                // instruments, aggregate files belong to serve's batch path.
                let text = report.metrics.export_registry().render();
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("extractocol-eval: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if !conf.is_clean() {
                dirty += 1;
            }
            let level = if conf.is_clean() { Level::Info } else { Level::Warn };
            events
                .event(level, "eval", "app analyzed")
                .field("app", app.truth.name.as_str())
                .field("transactions", report.transactions.len() as u64)
                .field("diagnostics", conf.diags.len() as u64)
                .field("duration_us", report.stats.duration.as_micros() as u64)
                .emit();
        }
        if let Some(path) = &report_out {
            if let Err(e) = std::fs::write(path, report_lines) {
                eprintln!("extractocol-eval: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        let spans = trace.drain();
        if let Some(path) = &trace_out {
            let json = extractocol_obs::chrome_trace_json(&spans);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("extractocol-eval: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} span(s) to {path} ({} dropped)", spans.len(), trace.dropped());
        }
        if trace_summary {
            print!("{}", extractocol_obs::summary_table(&spans, 20));
        }
        events
            .info("eval", "conformance run finished")
            .field("apps", apps.len() as u64)
            .field("dirty", dirty as u64)
            .emit();
        if dirty > 0 {
            eprintln!("extractocol-eval: {dirty} app(s) with conformance diagnostics");
            return ExitCode::FAILURE;
        }
        println!("conformance: all {} app(s) clean", apps.len());
        return ExitCode::SUCCESS;
    }

    let summary = mutation_self_test(&apps, seed, sites, jobs);
    print!("{}", summary.to_text());
    if summary.total() == 0 {
        eprintln!("extractocol-eval: no mutation sites found");
        return ExitCode::FAILURE;
    }
    if summary.rate() < 0.9 {
        eprintln!(
            "extractocol-eval: detection rate {:.1}% below the 90% gate",
            100.0 * summary.rate()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
