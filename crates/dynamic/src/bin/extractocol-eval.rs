//! The `extractocol-eval` command-line tool: corpus-wide validation of the
//! static pipeline against the dynamic interpreter.
//!
//! ```bash
//! extractocol-eval --conformance                # oracle over every corpus app
//! extractocol-eval --conformance --app "TED"    # one app only
//! extractocol-eval --conformance --jobs 0       # one worker per core
//! extractocol-eval --conformance --timings      # per-phase breakdown per app
//! extractocol-eval --conformance --trace-out trace.json --trace-summary
//! extractocol-eval --conformance --metrics-out metrics.txt
//! extractocol-eval --conformance-mutate         # seeded mutation self-test
//! extractocol-eval --conformance-mutate --seed 7 --sites 3
//! ```
//!
//! `--conformance` exits non-zero when any app yields a diagnostic;
//! `--conformance-mutate` exits non-zero when the oracle detects < 90% of
//! the seeded perturbations. `--trace-out` records the whole run as one
//! span tree (per app → per phase → per DP) in Chrome-trace JSON;
//! `--timings` prints the `PhaseTimings` table — including the
//! conformance slot, so the total matches the end-to-end run.

use extractocol_core::TraceCollector;
use extractocol_dynamic::conformance::{conformance_check_traced, mutation_self_test};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: extractocol-eval (--conformance | --conformance-mutate) \
         [--app <name>] [--jobs <n>] [--seed <n>] [--sites <n>] [--timings] \
         [--trace-out <file>] [--trace-summary] [--metrics-out <file>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut conformance = false;
    let mut mutate = false;
    let mut app_filter: Option<String> = None;
    let mut jobs = 1usize;
    let mut seed = 0xE7_AC_0C_01u64;
    let mut sites = 2usize;
    let mut timings = false;
    let mut trace_summary = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--conformance" => conformance = true,
            "--conformance-mutate" => mutate = true,
            "--timings" => timings = true,
            "--trace-summary" => trace_summary = true,
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => return usage(),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p),
                None => return usage(),
            },
            "--app" => match it.next() {
                Some(n) => app_filter = Some(n),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--sites" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => sites = n,
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if conformance == mutate {
        return usage();
    }

    let mut apps = extractocol_corpus::all_apps();
    if let Some(name) = &app_filter {
        apps.retain(|a| &a.truth.name == name);
        if apps.is_empty() {
            eprintln!("extractocol-eval: no corpus app named {name:?}");
            return ExitCode::FAILURE;
        }
    }

    if conformance {
        let trace = if trace_out.is_some() || trace_summary {
            TraceCollector::enabled()
        } else {
            TraceCollector::disabled()
        };
        let mut dirty = 0usize;
        for app in &apps {
            let (report, conf) = conformance_check_traced(app, jobs, &trace);
            print!("{}", conf.to_text());
            if timings {
                println!("{} phase timings:", app.truth.name);
                print!("{}", report.metrics.phases.to_text());
            }
            if let Some(path) = &metrics_out {
                // One exposition file per run; last app wins per-app
                // instruments, aggregate files belong to serve's batch path.
                let text = report.metrics.export_registry().render();
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("extractocol-eval: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if !conf.is_clean() {
                dirty += 1;
            }
        }
        let spans = trace.drain();
        if let Some(path) = &trace_out {
            let json = extractocol_obs::chrome_trace_json(&spans);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("extractocol-eval: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} span(s) to {path} ({} dropped)", spans.len(), trace.dropped());
        }
        if trace_summary {
            print!("{}", extractocol_obs::summary_table(&spans, 20));
        }
        if dirty > 0 {
            eprintln!("extractocol-eval: {dirty} app(s) with conformance diagnostics");
            return ExitCode::FAILURE;
        }
        println!("conformance: all {} app(s) clean", apps.len());
        return ExitCode::SUCCESS;
    }

    let summary = mutation_self_test(&apps, seed, sites, jobs);
    print!("{}", summary.to_text());
    if summary.total() == 0 {
        eprintln!("extractocol-eval: no mutation sites found");
        return ExitCode::FAILURE;
    }
    if summary.rate() < 0.9 {
        eprintln!(
            "extractocol-eval: detection rate {:.1}% below the 90% gate",
            100.0 * summary.rate()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
