//! Seeded adversarial traffic generator (ROADMAP item 3).
//!
//! Real Android traffic is messy and hostile: malformed lines, nesting
//! bombs, homoglyph lookalikes, regex-exhaustion probes. This module
//! generates exactly that, deterministically: every [`AttackCase`] carries
//! its attack class and the derived PRNG seed that produced it, so any
//! failing case reproduces from two numbers.
//!
//! The contract the rest of the system must uphold against this traffic
//! (and the property suite in `tests/adversarial.rs` enforces):
//!
//! * **total parsing** — every line yields a request or a structured
//!   [`TraceParseError`](crate::trace::TraceParseError), never a panic;
//! * **bounded work** — regex and body matching run under step budgets,
//!   so a probe can exhaust its budget but not the CPU;
//! * **deterministic verdicts** — the same line gets the same verdict on
//!   every run, at any `--jobs` level, under both the trie-pruned and
//!   brute-force classify paths.

use extractocol_http::Request;
use extractocol_ir::rng::{Rng, SplitMix64};

use crate::trace::{TraceParseError, TrafficTrace};

/// The attack taxonomy. Each variant is one generation strategy and one
/// labelled counter family in the serving metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttackClass {
    /// Broken framing: bad methods, missing fields, bogus MIME tags,
    /// overflowing binary lengths, trailing fields, embedded NULs.
    MalformedWire,
    /// Deeply nested JSON/XML bodies straddling the parser depth limit.
    DeepBody,
    /// Very large bodies: wide arrays, long strings, huge forms.
    GiantBody,
    /// %-escape tricks and Unicode homoglyph lookalikes in the URI.
    UriMutation,
    /// Query strings shaped to blow the structural/regex match budget.
    RegexExhaustion,
    /// Legitimate lines cut off at an arbitrary byte.
    Truncated,
    /// Oversized field sets: thousands of query pairs or form keys.
    OversizedHeaders,
}

impl AttackClass {
    /// Every class, in the fixed generation (and metrics) order.
    pub const ALL: [AttackClass; 7] = [
        AttackClass::MalformedWire,
        AttackClass::DeepBody,
        AttackClass::GiantBody,
        AttackClass::UriMutation,
        AttackClass::RegexExhaustion,
        AttackClass::Truncated,
        AttackClass::OversizedHeaders,
    ];

    /// Stable snake_case name, used as the metrics label value.
    pub fn name(self) -> &'static str {
        match self {
            AttackClass::MalformedWire => "malformed_wire",
            AttackClass::DeepBody => "deep_body",
            AttackClass::GiantBody => "giant_body",
            AttackClass::UriMutation => "uri_mutation",
            AttackClass::RegexExhaustion => "regex_exhaustion",
            AttackClass::Truncated => "truncated",
            AttackClass::OversizedHeaders => "oversized_headers",
        }
    }
}

/// One generated attack input: a single wire-format line plus the
/// provenance needed to regenerate it.
#[derive(Clone, Debug)]
pub struct AttackCase {
    pub class: AttackClass,
    /// The per-case PRNG seed (derived from the suite seed); `Rng::new`
    /// on this value replays exactly this case's randomness.
    pub seed: u64,
    /// Index within the generated suite.
    pub id: usize,
    /// The attack payload: one `METHOD\tURI[\tMIME\tBODY]` line,
    /// possibly deliberately malformed.
    pub line: String,
}

impl AttackCase {
    /// Runs the case through the total wire-format parser. `Ok(None)`
    /// means the line degenerated into a blank/comment (possible after
    /// truncation) — not an error, just no request to classify.
    pub fn parse(&self) -> Result<Option<Request>, TraceParseError> {
        let trace = TrafficTrace::parse_request_text("attack", &self.line)?;
        Ok(trace.transactions.into_iter().next().map(|t| t.request))
    }
}

/// Suite shape: one suite seed fans out into `per_class` cases for each
/// of the seven classes via a SplitMix64 stream, so suites of different
/// sizes share a prefix and any case is reproducible in isolation.
#[derive(Clone, Copy, Debug)]
pub struct AdversarialConfig {
    pub seed: u64,
    pub per_class: usize,
}

impl Default for AdversarialConfig {
    fn default() -> AdversarialConfig {
        AdversarialConfig { seed: 0xE57A_AC70, per_class: 16 }
    }
}

/// Latin → confusable-Cyrillic lookalikes (the classic IDN homoglyph
/// set). Swapping one in changes the bytes but not what a human sees.
const HOMOGLYPHS: [(char, char); 8] = [
    ('a', 'а'),
    ('c', 'с'),
    ('e', 'е'),
    ('i', 'і'),
    ('o', 'о'),
    ('p', 'р'),
    ('x', 'х'),
    ('y', 'у'),
];

/// Fallback base traffic when the caller has no corpus requests handy.
fn stock_lines() -> Vec<String> {
    vec![
        "GET\thttp://api.example.com/v1/items?id=1".to_string(),
        "POST\thttp://api.example.com/v1/login\tapplication/x-www-form-urlencoded\tuser=bob&passwd=hunter2".to_string(),
        "POST\thttp://api.example.com/v1/sync\tapplication/json\t{\"id\":\"42\",\"state\":\"idle\"}".to_string(),
    ]
}

/// Serializes one request as a single wire-format line (no newline).
fn request_line(req: &Request) -> String {
    let trace = TrafficTrace {
        app: "base".to_string(),
        transactions: vec![extractocol_http::Transaction {
            request: req.clone(),
            response: extractocol_http::Response::ok(extractocol_http::Body::Empty),
        }],
    };
    trace.to_request_text().trim_end_matches('\n').to_string()
}

/// Generates the full suite: `per_class` cases for each attack class,
/// mutating `base` requests where the class calls for realistic carrier
/// traffic (so trie-surviving prefixes stress the real match path).
/// Fully deterministic in `(config, base)`.
pub fn generate_attacks(config: &AdversarialConfig, base: &[Request]) -> Vec<AttackCase> {
    let base_lines: Vec<String> =
        if base.is_empty() { stock_lines() } else { base.iter().map(request_line).collect() };
    let mut seeder = SplitMix64::new(config.seed);
    let mut out = Vec::with_capacity(AttackClass::ALL.len() * config.per_class);
    for class in AttackClass::ALL {
        for _ in 0..config.per_class {
            let seed = seeder.next_u64();
            let mut rng = Rng::new(seed);
            let line = match class {
                AttackClass::MalformedWire => malformed_wire(&mut rng, &base_lines),
                AttackClass::DeepBody => deep_body(&mut rng, &base_lines),
                AttackClass::GiantBody => giant_body(&mut rng, &base_lines),
                AttackClass::UriMutation => uri_mutation(&mut rng, &base_lines),
                AttackClass::RegexExhaustion => regex_exhaustion(&mut rng, &base_lines),
                AttackClass::Truncated => truncated(&mut rng, &base_lines),
                AttackClass::OversizedHeaders => oversized_headers(&mut rng, &base_lines),
            };
            out.push(AttackCase { class, seed, id: out.len(), line });
        }
    }
    out
}

/// The URI (second) field of a base line, or the whole line if the
/// framing is already odd.
fn base_uri(rng: &mut Rng, base: &[String]) -> String {
    let line = rng.pick(base);
    line.split('\t').nth(1).unwrap_or(line).to_string()
}

/// The URI up to (not including) its query string.
fn base_prefix(rng: &mut Rng, base: &[String]) -> String {
    let uri = base_uri(rng, base);
    match uri.find('?') {
        Some(i) => uri[..i].to_string(),
        None => uri,
    }
}

fn malformed_wire(rng: &mut Rng, base: &[String]) -> String {
    let line = rng.pick(base).clone();
    let uri = base_uri(rng, base);
    match rng.below(8) {
        // Unknown method token (random letters, or a lowercase slip).
        0 => {
            let len = 4 + rng.below(4);
            let m = rng.ascii_string(&['F', 'E', 'T', 'C', 'H', 'g', 'e', 't'], len);
            format!("{m}\t{uri}")
        }
        // Method with no URI at all, or with an empty URI field.
        1 => {
            if rng.chance(1, 2) {
                "GET".to_string()
            } else {
                "GET\t".to_string()
            }
        }
        // NUL bytes embedded in the URI.
        2 => {
            let mut u = uri;
            let at = rng.below(u.len().max(1));
            let mut safe = at.min(u.len());
            while !u.is_char_boundary(safe) {
                safe -= 1;
            }
            u.insert(safe, '\0');
            format!("GET\t{u}")
        }
        // MIME tag with the body field missing.
        3 => format!("POST\t{uri}\tapplication/json"),
        // MIME tag nobody registered.
        4 => {
            let len = 6 + rng.below(10);
            let m = rng.ascii_string(&['a', 'b', 'c', '/', '-'], len);
            format!("POST\t{uri}\t{m}\tpayload")
        }
        // Binary length field: u64 overflow, negative, or absurd.
        5 => {
            let len = match rng.below(3) {
                0 => format!("{}9", u64::MAX),
                1 => "-5".to_string(),
                _ => format!("{}", 1u64 << 40),
            };
            format!("POST\t{uri}\tapplication/octet-stream\t{len}")
        }
        // Trailing fields after a complete body.
        6 => format!("{line}\ttext/plain\textra\tfields"),
        // Broken escape sequences inside the body field.
        _ => format!("POST\t{uri}\ttext/plain\tbad\\qescape\\"),
    }
}

fn deep_body(rng: &mut Rng, base: &[String]) -> String {
    let uri = base_prefix(rng, base);
    // Straddle the parser depth limit (128): under it the body parses
    // and classifies, over it the parser must give a structured error.
    let depth = 64 + rng.below(192);
    if rng.chance(1, 2) {
        let body = match rng.below(3) {
            0 => format!("{}1{}", "[".repeat(depth), "]".repeat(depth)),
            1 => format!("{}{{}}{}", "{\"k\":".repeat(depth), "}".repeat(depth)),
            _ => format!("{}[0]{}", "[{\"a\":".repeat(depth), "}]".repeat(depth)),
        };
        format!("POST\t{uri}\tapplication/json\t{body}")
    } else {
        let body = format!("{}x{}", "<a>".repeat(depth), "</a>".repeat(depth));
        format!("POST\t{uri}\tapplication/xml\t{body}")
    }
}

fn giant_body(rng: &mut Rng, base: &[String]) -> String {
    let uri = base_prefix(rng, base);
    match rng.below(3) {
        // A wide (but shallow) array: tens of thousands of nodes.
        0 => {
            let n = 10_000 + rng.below(40_000);
            let mut body = String::with_capacity(n * 2 + 2);
            body.push('[');
            for i in 0..n {
                if i > 0 {
                    body.push(',');
                }
                body.push('0');
            }
            body.push(']');
            format!("POST\t{uri}\tapplication/json\t{body}")
        }
        // One very long string value.
        1 => {
            let n = 100_000 + rng.below(400_000);
            let body = format!("{{\"blob\":\"{}\"}}", "A".repeat(n));
            format!("POST\t{uri}\tapplication/json\t{body}")
        }
        // A giant free-text body.
        _ => {
            let n = 100_000 + rng.below(400_000);
            format!("POST\t{uri}\ttext/plain\t{}", "z".repeat(n))
        }
    }
}

fn uri_mutation(rng: &mut Rng, base: &[String]) -> String {
    let mut uri = base_uri(rng, base);
    for _ in 0..1 + rng.below(6) {
        let chars: Vec<char> = uri.chars().collect();
        if chars.is_empty() {
            break;
        }
        let at = rng.below(chars.len());
        match rng.below(4) {
            // Percent-encode one character (possibly one that did not
            // need it — %2F in a path changes matching, not validity).
            0 => {
                let mut out: String = chars[..at].iter().collect();
                let mut buf = [0u8; 4];
                for b in chars[at].encode_utf8(&mut buf).bytes() {
                    out.push_str(&format!("%{b:02X}"));
                }
                out.extend(&chars[at + 1..]);
                uri = out;
            }
            // Inject a malformed %-escape.
            1 => {
                let mut out: String = chars[..at].iter().collect();
                const BAD_ESCAPES: [&str; 4] = ["%ZZ", "%", "%0", "%%20"];
                out.push_str(rng.pick::<&str>(&BAD_ESCAPES));
                out.extend(&chars[at..]);
                uri = out;
            }
            // Swap in a Cyrillic homoglyph for a Latin letter.
            2 => {
                let mut out = chars.clone();
                for probe in 0..out.len() {
                    let i = (at + probe) % out.len();
                    if let Some((_, glyph)) = HOMOGLYPHS.iter().find(|(l, _)| *l == out[i]) {
                        out[i] = *glyph;
                        break;
                    }
                }
                uri = out.into_iter().collect();
            }
            // Flip ASCII case (hosts are case-insensitive, paths not).
            _ => {
                let mut out = chars.clone();
                out[at] = if out[at].is_ascii_lowercase() {
                    out[at].to_ascii_uppercase()
                } else {
                    out[at].to_ascii_lowercase()
                };
                uri = out.into_iter().collect();
            }
        }
    }
    format!("GET\t{uri}")
}

fn regex_exhaustion(rng: &mut Rng, base: &[String]) -> String {
    // Keep the legit literal prefix so the probe survives trie pruning
    // and actually reaches the structural matcher.
    let prefix = base_prefix(rng, base);
    let query = match rng.below(3) {
        // Many repeated pairs: feeds Rep-loop end-position fan-out.
        0 => {
            let n = 2_000 + rng.below(10_000);
            let mut q = String::new();
            for i in 0..n {
                q.push_str(&format!("q={}&", i % 10));
            }
            q
        }
        // Same key, growing values: ambiguous Rep iteration boundaries.
        1 => {
            let n = 400 + rng.below(1_200);
            let mut q = String::new();
            for i in 0..n {
                q.push_str(&format!("c={}&", "7".repeat(1 + i % 40)));
            }
            q
        }
        // One enormous digit run against `[0-9]+`-shaped segments.
        _ => format!("id={}&x=1", "9".repeat(20_000 + rng.below(60_000))),
    };
    format!("GET\t{prefix}?{query}")
}

fn truncated(rng: &mut Rng, base: &[String]) -> String {
    let line = rng.pick(base).clone();
    if line.is_empty() {
        return line;
    }
    let mut cut = rng.below(line.len());
    while !line.is_char_boundary(cut) {
        cut -= 1;
    }
    line[..cut].to_string()
}

fn oversized_headers(rng: &mut Rng, base: &[String]) -> String {
    let uri = base_prefix(rng, base);
    let n = 500 + rng.below(4_000);
    if rng.chance(1, 2) {
        // Thousands of query pairs.
        let mut q = String::new();
        for i in 0..n {
            if i > 0 {
                q.push('&');
            }
            q.push_str(&format!("h{i}=v{i}"));
        }
        format!("GET\t{uri}?{q}")
    } else {
        // A form body with thousands of distinct keys.
        let mut body = String::new();
        for i in 0..n {
            if i > 0 {
                body.push('&');
            }
            body.push_str(&format!("f{i}=x"));
        }
        format!("POST\t{uri}\tapplication/x-www-form-urlencoded\t{body}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_tagged() {
        let cfg = AdversarialConfig { seed: 7, per_class: 4 };
        let a = generate_attacks(&cfg, &[]);
        let b = generate_attacks(&cfg, &[]);
        assert_eq!(a.len(), AttackClass::ALL.len() * 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.class, y.class);
        }
        // Different seeds diverge.
        let c = generate_attacks(&AdversarialConfig { seed: 8, per_class: 4 }, &[]);
        assert!(a.iter().zip(&c).any(|(x, y)| x.line != y.line));
    }

    #[test]
    fn every_case_parses_or_errors_without_panic() {
        let cfg = AdversarialConfig { seed: 99, per_class: 8 };
        for case in generate_attacks(&cfg, &[]) {
            // Totality: Ok or structured error; the call itself must not
            // panic for any class.
            let _ = case.parse();
        }
    }

    #[test]
    fn suite_prefix_is_stable_across_sizes() {
        // Growing per_class must not reshuffle earlier cases within a
        // class (the SplitMix64 stream is consumed in class-major order,
        // so equal prefixes hold per class when per_class grows).
        let small = generate_attacks(&AdversarialConfig { seed: 5, per_class: 2 }, &[]);
        let large = generate_attacks(&AdversarialConfig { seed: 5, per_class: 2 }, &[]);
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s.line, l.line);
        }
    }
}
