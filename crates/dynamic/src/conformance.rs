//! Driver for the differential conformance oracle
//! ([`extractocol_core::conformance`]): runs each corpus app under the
//! perfect fuzzer to collect its concrete traffic, then cross-checks every
//! static signature against it — plus a seeded *mutation self-test* that
//! perturbs IR string constants and asserts the oracle flags the resulting
//! signature drift (an oracle with no teeth would pass the clean corpus
//! trivially).

use crate::fuzz::run_perfect_fuzzer;
use extractocol_core::conformance::{check, ConformanceReport};
use extractocol_core::report::AnalysisReport;
use extractocol_core::{Extractocol, Options, TraceCollector};
use extractocol_corpus::AppSpec;
use extractocol_ir::rng::Rng;
use extractocol_ir::{Apk, Const, Expr, Place, Stmt, Value};

/// Evaluation-side analysis knobs beyond the per-app defaults: worker
/// count, targeted mode, and the persistent summary cache.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Worker threads (`0` = one per core).
    pub jobs: usize,
    /// Demand-driven cone analysis (`Options::targeted`).
    pub targeted: bool,
    /// Honor `summary_cache_path` (`Options::incremental`).
    pub incremental: bool,
    /// Persistent `.exsm` summary-cache location for this app.
    pub summary_cache_path: Option<std::path::PathBuf>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { jobs: 0, targeted: false, incremental: true, summary_cache_path: None }
    }
}

impl EvalConfig {
    /// Just a worker count — the configuration every pre-existing driver
    /// entry point uses.
    pub fn with_jobs(jobs: usize) -> EvalConfig {
        EvalConfig { jobs, ..EvalConfig::default() }
    }
}

/// Analyzes one app with the evaluation options (paper §5.1: the async
/// heuristic is disabled for open-source apps) at the given worker count.
pub fn analyze_app(apk: &Apk, open_source: bool, jobs: usize) -> AnalysisReport {
    analyze_app_traced(apk, open_source, jobs, &TraceCollector::disabled())
}

/// [`analyze_app`] recording pipeline spans into `trace`.
pub fn analyze_app_traced(
    apk: &Apk,
    open_source: bool,
    jobs: usize,
    trace: &TraceCollector,
) -> AnalysisReport {
    analyze_app_with(apk, open_source, &EvalConfig::with_jobs(jobs), trace)
}

/// [`analyze_app`] under a full [`EvalConfig`] (targeted mode, persistent
/// summary cache).
pub fn analyze_app_with(
    apk: &Apk,
    open_source: bool,
    cfg: &EvalConfig,
    trace: &TraceCollector,
) -> AnalysisReport {
    let opts = Options {
        slice: extractocol_core::slicing::SliceOptions {
            async_heuristic: !open_source,
            ..Default::default()
        },
        jobs: cfg.jobs,
        targeted: cfg.targeted,
        incremental: cfg.incremental,
        summary_cache_path: cfg.summary_cache_path.clone(),
        ..Options::default()
    };
    Extractocol::with_options(opts).analyze_traced(apk, trace)
}

/// Runs the oracle for one app: static report vs. perfect-fuzzer trace.
/// The conformance result is also attached to `report.metrics`.
pub fn conformance_check(app: &AppSpec, jobs: usize) -> (AnalysisReport, ConformanceReport) {
    conformance_check_traced(app, jobs, &TraceCollector::disabled())
}

/// [`conformance_check`] recording spans into `trace` (one `app` span per
/// app, `phase` spans for the fuzzer run and the oracle check) and
/// filling [`PhaseTimings::conformance`] — without it `total()`
/// under-reports an end-to-end evaluation run.
///
/// [`PhaseTimings::conformance`]: extractocol_core::PhaseTimings
pub fn conformance_check_traced(
    app: &AppSpec,
    jobs: usize,
    trace: &TraceCollector,
) -> (AnalysisReport, ConformanceReport) {
    conformance_check_with(app, &EvalConfig::with_jobs(jobs), trace)
}

/// [`conformance_check_traced`] under a full [`EvalConfig`].
pub fn conformance_check_with(
    app: &AppSpec,
    cfg: &EvalConfig,
    trace: &TraceCollector,
) -> (AnalysisReport, ConformanceReport) {
    let mut app_span = trace.span_in("app", format!("conformance:{}", app.truth.name));
    app_span.attr("app", app.truth.name.as_str());
    let mut report = analyze_app_with(&app.apk, app.truth.open_source, cfg, trace);
    let dyn_trace = {
        let _s = trace.span_in("phase", "perfect_fuzzer");
        run_perfect_fuzzer(app)
    };
    let t = std::time::Instant::now();
    let conf = {
        let mut s = trace.span_in("phase", "conformance");
        let conf = check(&report, &dyn_trace.transactions);
        s.attr("signatures_checked", conf.signatures_checked)
            .attr("messages_checked", conf.messages_checked)
            .attr("diags", conf.diags.len());
        conf
    };
    report.metrics.phases.conformance = t.elapsed();
    report.metrics.conformance = Some(conf.clone());
    (report, conf)
}

/// Runs the oracle over a set of apps, in corpus order.
pub fn conformance_all(apps: &[AppSpec], jobs: usize) -> Vec<ConformanceReport> {
    apps.iter().map(|a| conformance_check(a, jobs).1).collect()
}

// ---------------------------------------------------------------------------
// Seeded mutation self-test
// ---------------------------------------------------------------------------

/// Outcome of one seeded constant perturbation.
#[derive(Clone, Debug)]
pub struct MutationOutcome {
    /// App the mutation was applied to.
    pub app: String,
    /// The original string constant.
    pub original: String,
    /// The perturbed string constant.
    pub mutated: String,
    /// True when the oracle reported at least one diagnostic.
    pub detected: bool,
}

/// Aggregate result of a mutation run.
#[derive(Clone, Debug, Default)]
pub struct MutationSummary {
    pub outcomes: Vec<MutationOutcome>,
}

impl MutationSummary {
    /// Seeded mutations the oracle flagged.
    pub fn detected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected).count()
    }

    /// Total seeded mutations.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Detection rate in `[0, 1]`; `1.0` when nothing was seeded.
    pub fn rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        self.detected() as f64 / self.total() as f64
    }

    /// Stable text rendering (summary line + one line per miss).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "mutation seeded={} detected={} rate={:.1}%\n",
            self.total(),
            self.detected(),
            100.0 * self.rate()
        );
        for o in self.outcomes.iter().filter(|o| !o.detected) {
            out.push_str(&format!("missed [{}] {:?} -> {:?}\n", o.app, o.original, o.mutated));
        }
        out
    }
}

/// Visits every string-constant slot in the APK in deterministic order
/// (class order, method order, statement order, operand order), calling
/// `f(ordinal, string)` for each.
fn visit_strings(apk: &mut Apk, mut f: impl FnMut(usize, &mut String)) {
    let mut idx = 0usize;
    let mut on_value = |v: &mut Value, f: &mut dyn FnMut(usize, &mut String)| {
        if let Value::Const(Const::Str(s)) = v {
            f(idx, s);
            idx += 1;
        }
    };
    for class in &mut apk.classes {
        for m in &mut class.methods {
            for st in &mut m.body {
                match st {
                    Stmt::Assign { place, expr } => {
                        if let Place::ArrayElem { index, .. } = place {
                            on_value(index, &mut f);
                        }
                        match expr {
                            Expr::Use(v)
                            | Expr::Un(_, v)
                            | Expr::NewArray(_, v)
                            | Expr::Cast(_, v)
                            | Expr::InstanceOf(_, v) => on_value(v, &mut f),
                            Expr::Bin(_, a, b) => {
                                on_value(a, &mut f);
                                on_value(b, &mut f);
                            }
                            Expr::Load(p) => {
                                if let Place::ArrayElem { index, .. } = p {
                                    on_value(index, &mut f);
                                }
                            }
                            Expr::Invoke(c) => {
                                if let Some(r) = &mut c.receiver {
                                    on_value(r, &mut f);
                                }
                                for a in &mut c.args {
                                    on_value(a, &mut f);
                                }
                            }
                            Expr::New(_) => {}
                        }
                    }
                    Stmt::Invoke(c) => {
                        if let Some(r) = &mut c.receiver {
                            on_value(r, &mut f);
                        }
                        for a in &mut c.args {
                            on_value(a, &mut f);
                        }
                    }
                    Stmt::If { cond, .. } => {
                        on_value(&mut cond.lhs, &mut f);
                        on_value(&mut cond.rhs, &mut f);
                    }
                    Stmt::Switch { scrutinee, .. } => on_value(scrutinee, &mut f),
                    Stmt::Return(Some(v)) | Stmt::Throw(v) => on_value(v, &mut f),
                    Stmt::Return(None) | Stmt::Goto { .. } | Stmt::Identity { .. } | Stmt::Nop => {}
                }
            }
        }
    }
}

/// Perturbs one character of `s` with the PRNG, guaranteeing the result
/// differs from the original.
fn perturb(s: &str, rng: &mut Rng) -> String {
    const ALPHABET: &[char] =
        &['x', 'z', 'Q', '7', '3', '_', 'k', 'w', 'J', '9', 'm', 'T', 'v', '4'];
    let chars: Vec<char> = s.chars().collect();
    let i = rng.below(chars.len());
    let mut repl = *rng.pick(ALPHABET);
    while repl == chars[i] {
        repl = *rng.pick(ALPHABET);
    }
    let mut out: String = chars[..i].iter().collect();
    out.push(repl);
    out.extend(&chars[i + 1..]);
    out
}

/// Seeds constant perturbations into each app's IR and checks that the
/// oracle flags them. Only constants that feed URI signatures are mutated
/// (those are the ones the oracle is contractually sensitive to): a site
/// qualifies when its string occurs inside some URI-signature constant of
/// the app's clean report. The *dynamic* side always runs the original
/// app, so only the static signature drifts.
pub fn mutation_self_test(
    apps: &[AppSpec],
    seed: u64,
    max_sites_per_app: usize,
    jobs: usize,
) -> MutationSummary {
    let mut rng = Rng::new(seed);
    let mut summary = MutationSummary::default();
    for app in apps {
        let trace = run_perfect_fuzzer(app);
        let clean = analyze_app(&app.apk, app.truth.open_source, jobs);
        let uri_consts: Vec<String> =
            clean.transactions.iter().flat_map(|t| t.uri.constants()).map(str::to_string).collect();

        // Deterministic site discovery: string constants (len ≥ 3) that
        // appear verbatim inside some URI constant.
        let mut sites: Vec<(usize, String)> = Vec::new();
        let mut probe = app.apk.clone();
        visit_strings(&mut probe, |idx, s| {
            if s.len() >= 3 && uri_consts.iter().any(|c| c.contains(s.as_str())) {
                sites.push((idx, s.clone()));
            }
        });
        sites.truncate(max_sites_per_app);

        for (ordinal, original) in sites {
            let mutated_str = perturb(&original, &mut rng);
            let mut mutated_apk = app.apk.clone();
            visit_strings(&mut mutated_apk, |idx, s| {
                if idx == ordinal {
                    *s = mutated_str.clone();
                }
            });
            let report = analyze_app(&mutated_apk, app.truth.open_source, jobs);
            let conf = check(&report, &trace.transactions);
            summary.outcomes.push(MutationOutcome {
                app: app.truth.name.clone(),
                original,
                mutated: mutated_str,
                detected: !conf.is_clean(),
            });
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radio_reddit_is_conformant() {
        let app = extractocol_corpus::app("radio reddit").unwrap();
        let (report, conf) = conformance_check(&app, 1);
        assert!(conf.is_clean(), "{}", conf.to_text());
        assert_eq!(conf.signatures_checked, report.transactions.len());
        assert!(conf.messages_checked > 0);
        assert_eq!(report.metrics.conformance.as_ref(), Some(&conf));
    }

    #[test]
    fn mutation_is_detected_on_radio_reddit() {
        let app = extractocol_corpus::app("radio reddit").unwrap();
        let summary = mutation_self_test(std::slice::from_ref(&app), 0xDEC0DE, 2, 1);
        assert!(summary.total() > 0, "no mutation sites found");
        assert!(summary.rate() >= 0.9, "oracle missed seeded mutations:\n{}", summary.to_text());
    }
}
