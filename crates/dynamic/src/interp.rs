//! A concrete interpreter for the corpus IR.
//!
//! Executes methods with real values against the app's [`ServerSpec`],
//! recording every network interaction. This is the stand-in for running
//! the real app on a device behind a decrypting proxy (§5.1): the traces
//! it produces are the ground truth signatures are validated against.
//!
//! The interpreter implements concrete semantics for exactly the API
//! surface the semantic model covers (plus the deliberately-unmodeled
//! `com.adlib.Tracker`, whose traffic static analysis misses). App-level
//! methods are interpreted from their IR.

use extractocol_corpus::ServerSpec;
use extractocol_http::uri::url_encode;
use extractocol_http::{
    Body, Headers, HttpMethod, JsonValue, Request, Transaction, Uri, XmlElement, XmlNode,
};
use extractocol_ir::{
    Apk, Call, CallKind, Cond, CondOp, Const, Expr, IdentityKind, Local, MethodId, Place,
    ProgramIndex, Stmt, Value,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Interpreter errors (budget exhaustion, malformed programs).
#[derive(Debug, Clone, PartialEq)]
pub struct RtError(pub String);

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl std::error::Error for RtError {}

type RtResult<T> = Result<T, RtError>;

/// A runtime value.
#[derive(Clone, Debug)]
pub enum RtValue {
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
    Object(Rc<RefCell<RtObject>>),
}

impl RtValue {
    fn obj(class: &str, native: Native) -> RtValue {
        RtValue::Object(Rc::new(RefCell::new(RtObject {
            class: class.to_string(),
            fields: HashMap::new(),
            native,
        })))
    }

    /// Stringification matching Java's implicit conversions.
    fn to_str_lossy(&self) -> String {
        match self {
            RtValue::Null => "null".to_string(),
            RtValue::Int(i) => i.to_string(),
            RtValue::Float(f) => f.to_string(),
            RtValue::Bool(b) => b.to_string(),
            RtValue::Str(s) => s.clone(),
            RtValue::Object(o) => match &o.borrow().native {
                Native::StringBuilder(s) => s.clone(),
                Native::Json(j) => j.to_json(),
                Native::Xml(x) => x.to_xml(),
                Native::Stream(s) => s.clone(),
                _ => format!("<{}>", o.borrow().class),
            },
        }
    }

    fn as_int(&self) -> i64 {
        match self {
            RtValue::Int(i) => *i,
            RtValue::Bool(b) => i64::from(*b),
            RtValue::Float(f) => *f as i64,
            RtValue::Str(s) => s.parse().unwrap_or(0),
            _ => 0,
        }
    }
}

/// A heap object: class, fields, and an optional native payload for
/// platform types.
#[derive(Debug)]
pub struct RtObject {
    pub class: String,
    pub fields: HashMap<String, RtValue>,
    pub native: Native,
}

/// Native payloads of platform/library objects.
#[derive(Debug, Clone)]
pub enum Native {
    None,
    StringBuilder(String),
    List(Vec<RtValue>),
    Map(Vec<(String, RtValue)>),
    Json(JsonValue),
    /// A request under construction.
    Request(RequestBuild),
    /// A received response with its body rendered to text.
    Response {
        status: u16,
        body_text: String,
        body: Body,
    },
    /// An input stream / entity wrapping body text.
    Stream(String),
    Xml(XmlElement),
    NodeList(Vec<XmlElement>),
    Element(XmlElement),
    /// A DB cursor positioned on requested column values.
    Cursor(Vec<String>),
    Pair(String, String),
}

/// A request being assembled by HTTP-library calls.
#[derive(Debug, Clone, Default)]
pub struct RequestBuild {
    pub method: Option<HttpMethod>,
    pub url: String,
    pub headers: Vec<(String, String)>,
    pub body: Option<Body>,
}

/// The interpreter: owns mutable app/world state across trigger
/// invocations (heap singletons, statics, SQLite tables, prefs) and the
/// captured trace.
pub struct Interpreter<'a> {
    apk: &'a Apk,
    prog: ProgramIndex<'a>,
    server: &'a ServerSpec,
    /// Captured network interactions, in order.
    pub trace: Vec<Transaction>,
    statics: HashMap<String, RtValue>,
    /// Per-class singleton instances: triggers on the same class share
    /// state (the login-then-vote pattern).
    singletons: HashMap<String, RtValue>,
    /// SQLite stand-in: table → column → last value.
    db: HashMap<String, HashMap<String, String>>,
    prefs: HashMap<String, String>,
    steps: usize,
}

const STEP_BUDGET: usize = 2_000_000;

impl<'a> Interpreter<'a> {
    /// Creates an interpreter for one app against its server.
    pub fn new(apk: &'a Apk, server: &'a ServerSpec) -> Interpreter<'a> {
        Interpreter {
            apk,
            prog: ProgramIndex::new(apk),
            server,
            trace: Vec::new(),
            statics: HashMap::new(),
            singletons: HashMap::new(),
            db: HashMap::new(),
            prefs: HashMap::new(),
            steps: 0,
        }
    }

    /// Invokes `class.method` on the class's singleton instance with the
    /// given arguments (how fuzzers fire triggers).
    pub fn invoke(&mut self, class: &str, method: &str, args: Vec<RtValue>) -> RtResult<RtValue> {
        let mid = self
            .prog
            .resolve_method(class, method, args.len())
            .ok_or_else(|| RtError(format!("no method {class}.{method}/{}", args.len())))?;
        let this = self.singleton(class);
        self.call(mid, this, args)
    }

    fn singleton(&mut self, class: &str) -> RtValue {
        if let Some(v) = self.singletons.get(class) {
            return v.clone();
        }
        let v = RtValue::obj(class, Native::None);
        self.singletons.insert(class.to_string(), v.clone());
        v
    }

    fn tick(&mut self) -> RtResult<()> {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            Err(RtError("step budget exhausted".into()))
        } else {
            Ok(())
        }
    }

    /// Calls a concrete method.
    fn call(&mut self, mid: MethodId, this: RtValue, args: Vec<RtValue>) -> RtResult<RtValue> {
        let method = self.prog.method(mid);
        if !method.has_body {
            return Ok(RtValue::Null);
        }
        let mut env: HashMap<Local, RtValue> = HashMap::new();
        let body = &method.body;
        let mut pc = 0usize;
        while pc < body.len() {
            self.tick()?;
            match &body[pc] {
                Stmt::Identity { local, kind } => {
                    let v = match kind {
                        IdentityKind::This => this.clone(),
                        IdentityKind::Param(i) => {
                            args.get(*i as usize).cloned().unwrap_or(RtValue::Null)
                        }
                        IdentityKind::CaughtException => RtValue::Null,
                    };
                    env.insert(*local, v);
                    pc += 1;
                }
                Stmt::Assign { place, expr } => {
                    let v = self.eval_expr(mid, expr, &mut env)?;
                    self.write_place(place, v, &mut env)?;
                    pc += 1;
                }
                Stmt::Invoke(call) => {
                    self.eval_call(mid, call, &mut env)?;
                    pc += 1;
                }
                Stmt::If { cond, target } => {
                    if self.eval_cond(cond, &env) {
                        pc = *target;
                    } else {
                        pc += 1;
                    }
                }
                Stmt::Goto { target } => pc = *target,
                Stmt::Switch { scrutinee, arms, default } => {
                    let v = self.eval_value(scrutinee, &env).as_int();
                    pc = arms.iter().find(|(k, _)| *k == v).map(|(_, t)| *t).unwrap_or(*default);
                }
                Stmt::Return(v) => {
                    return Ok(v
                        .as_ref()
                        .map(|v| self.eval_value(v, &env))
                        .unwrap_or(RtValue::Null));
                }
                Stmt::Throw(_) => return Ok(RtValue::Null),
                Stmt::Nop => pc += 1,
            }
        }
        Ok(RtValue::Null)
    }

    fn eval_cond(&self, cond: &Cond, env: &HashMap<Local, RtValue>) -> bool {
        let l = self.eval_value(&cond.lhs, env);
        let r = self.eval_value(&cond.rhs, env);
        // Null comparisons are reference tests; everything else numeric.
        match cond.op {
            CondOp::Eq => match (&l, &r) {
                (RtValue::Null, RtValue::Null) => true,
                (RtValue::Null, _) | (_, RtValue::Null) => false,
                _ => l.as_int() == r.as_int(),
            },
            CondOp::Ne => match (&l, &r) {
                (RtValue::Null, RtValue::Null) => false,
                (RtValue::Null, _) | (_, RtValue::Null) => true,
                _ => l.as_int() != r.as_int(),
            },
            CondOp::Lt => l.as_int() < r.as_int(),
            CondOp::Le => l.as_int() <= r.as_int(),
            CondOp::Gt => l.as_int() > r.as_int(),
            CondOp::Ge => l.as_int() >= r.as_int(),
        }
    }

    fn eval_value(&self, v: &Value, env: &HashMap<Local, RtValue>) -> RtValue {
        match v {
            Value::Local(l) => env.get(l).cloned().unwrap_or(RtValue::Null),
            Value::Const(c) => match c {
                Const::Str(s) => RtValue::Str(s.clone()),
                Const::Int(i) => RtValue::Int(*i),
                Const::Float(f) => RtValue::Float(*f),
                Const::Bool(b) => RtValue::Bool(*b),
                Const::Null => RtValue::Null,
                Const::Class(c) => RtValue::Str(c.clone()),
            },
            Value::Resource(k) => {
                RtValue::Str(self.apk.resources.string(k).unwrap_or_default().to_string())
            }
        }
    }

    fn write_place(
        &mut self,
        place: &Place,
        v: RtValue,
        env: &mut HashMap<Local, RtValue>,
    ) -> RtResult<()> {
        match place {
            Place::Local(l) => {
                env.insert(*l, v);
            }
            Place::InstanceField { base, field } => {
                let b = env.get(base).cloned().unwrap_or(RtValue::Null);
                if let RtValue::Object(o) = b {
                    o.borrow_mut().fields.insert(field.name.clone(), v);
                }
            }
            Place::StaticField(field) => {
                self.statics.insert(format!("{}#{}", field.class, field.name), v);
            }
            Place::ArrayElem { base, .. } => {
                let b = env.get(base).cloned().unwrap_or(RtValue::Null);
                if let RtValue::Object(o) = b {
                    if let Native::List(items) = &mut o.borrow_mut().native {
                        items.push(v);
                    }
                }
            }
        }
        Ok(())
    }

    fn eval_expr(
        &mut self,
        mid: MethodId,
        expr: &Expr,
        env: &mut HashMap<Local, RtValue>,
    ) -> RtResult<RtValue> {
        Ok(match expr {
            Expr::Use(v) => self.eval_value(v, env),
            Expr::Load(place) => match place {
                Place::Local(l) => env.get(l).cloned().unwrap_or(RtValue::Null),
                Place::InstanceField { base, field } => {
                    let b = env.get(base).cloned().unwrap_or(RtValue::Null);
                    match b {
                        RtValue::Object(o) => {
                            o.borrow().fields.get(&field.name).cloned().unwrap_or(RtValue::Null)
                        }
                        _ => RtValue::Null,
                    }
                }
                Place::StaticField(field) => self
                    .statics
                    .get(&format!("{}#{}", field.class, field.name))
                    .cloned()
                    .unwrap_or(RtValue::Null),
                Place::ArrayElem { base, index } => {
                    let b = env.get(base).cloned().unwrap_or(RtValue::Null);
                    let i = self.eval_value(index, env).as_int() as usize;
                    match b {
                        RtValue::Object(o) => match &o.borrow().native {
                            Native::List(items) => items.get(i).cloned().unwrap_or(RtValue::Null),
                            _ => RtValue::Null,
                        },
                        _ => RtValue::Null,
                    }
                }
            },
            Expr::Un(op, v) => {
                let x = self.eval_value(v, env);
                match op {
                    extractocol_ir::UnOp::Neg => RtValue::Int(-x.as_int()),
                    extractocol_ir::UnOp::Not => RtValue::Int(!x.as_int()),
                    extractocol_ir::UnOp::Len => match x {
                        RtValue::Object(o) => match &o.borrow().native {
                            Native::List(items) => RtValue::Int(items.len() as i64),
                            _ => RtValue::Int(0),
                        },
                        RtValue::Str(s) => RtValue::Int(s.len() as i64),
                        _ => RtValue::Int(0),
                    },
                }
            }
            Expr::Bin(op, a, b) => {
                let x = self.eval_value(a, env).as_int();
                let y = self.eval_value(b, env).as_int();
                use extractocol_ir::BinOp::*;
                RtValue::Int(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0 {
                            0
                        } else {
                            x / y
                        }
                    }
                    Rem => {
                        if y == 0 {
                            0
                        } else {
                            x % y
                        }
                    }
                    And => x & y,
                    Or => x | y,
                    Xor => x ^ y,
                    Shl => x << (y & 63),
                    Shr => x >> (y & 63),
                    Cmp => (x - y).signum(),
                })
            }
            Expr::New(class) => self.new_object(class),
            Expr::NewArray(_, _) => RtValue::obj("array", Native::List(Vec::new())),
            Expr::Cast(_, v) => self.eval_value(v, env),
            Expr::InstanceOf(class, v) => {
                let x = self.eval_value(v, env);
                RtValue::Bool(match x {
                    RtValue::Object(o) => {
                        let c = o.borrow().class.clone();
                        c == *class || self.prog.is_subtype(&c, class)
                    }
                    _ => false,
                })
            }
            Expr::Invoke(call) => self.eval_call(mid, call, env)?,
        })
    }

    /// Dispatches a call: platform/library API semantics first, app IR
    /// second.
    fn eval_call(
        &mut self,
        mid: MethodId,
        call: &Call,
        env: &mut HashMap<Local, RtValue>,
    ) -> RtResult<RtValue> {
        self.tick()?;
        let recv = call.receiver.as_ref().map(|v| self.eval_value(v, env)).unwrap_or(RtValue::Null);
        let args: Vec<RtValue> = call.args.iter().map(|v| self.eval_value(v, env)).collect();

        // Try API semantics (receiver's dynamic class, then static class).
        let dynamic_class = match &recv {
            RtValue::Object(o) => Some(o.borrow().class.clone()),
            _ => None,
        };
        if let Some(r) = self.api_call(&call.callee.class, &call.callee.name, &recv, &args)? {
            return Ok(r);
        }

        // App-level dispatch: virtual on the dynamic class.
        let target = match call.kind {
            CallKind::Static => self.prog.resolve_method(
                &call.callee.class,
                &call.callee.name,
                call.callee.params.len(),
            ),
            CallKind::Special => self.prog.resolve_method(
                &call.callee.class,
                &call.callee.name,
                call.callee.params.len(),
            ),
            CallKind::Virtual | CallKind::Interface => {
                let cls = dynamic_class.as_deref().unwrap_or(&call.callee.class);
                self.prog.resolve_method(cls, &call.callee.name, call.callee.params.len()).or_else(
                    || {
                        self.prog.resolve_method(
                            &call.callee.class,
                            &call.callee.name,
                            call.callee.params.len(),
                        )
                    },
                )
            }
        };
        match target {
            Some(t) if self.prog.method(t).has_body => self.call(t, recv, args),
            _ => {
                let _ = mid;
                Ok(RtValue::Null)
            }
        }
    }

    /// Allocation with native payloads for known classes.
    fn new_object(&mut self, class: &str) -> RtValue {
        let native = match class {
            "java.lang.StringBuilder" => Native::StringBuilder(String::new()),
            "org.json.JSONObject"
            | "com.google.gson.JsonObject"
            | "com.alibaba.fastjson.JSONObject" => Native::Json(JsonValue::object()),
            "org.json.JSONArray" => Native::Json(JsonValue::Array(Vec::new())),
            c if c.ends_with("ArrayList") || c.ends_with("LinkedList") => Native::List(Vec::new()),
            c if c.ends_with("HashMap") => Native::Map(Vec::new()),
            "android.content.ContentValues" => Native::Map(Vec::new()),
            "okhttp3.Request$Builder" => Native::Request(RequestBuild::default()),
            _ => Native::None,
        };
        RtValue::obj(class, native)
    }

    // -----------------------------------------------------------------------
    // API semantics
    // -----------------------------------------------------------------------

    /// Returns `Ok(Some(value))` when `(class, name)` is an API the
    /// interpreter implements natively; `Ok(None)` lets app dispatch run.
    #[allow(clippy::too_many_lines)]
    fn api_call(
        &mut self,
        class: &str,
        name: &str,
        recv: &RtValue,
        args: &[RtValue],
    ) -> RtResult<Option<RtValue>> {
        let s = |i: usize| args.get(i).map(RtValue::to_str_lossy).unwrap_or_default();
        let result = match (class, name) {
            // ---- strings ----
            ("java.lang.StringBuilder", "<init>") => {
                if let RtValue::Object(o) = recv {
                    o.borrow_mut().native = Native::StringBuilder(s(0));
                }
                RtValue::Null
            }
            ("java.lang.StringBuilder", "append") => {
                if let RtValue::Object(o) = recv {
                    if let Native::StringBuilder(b) = &mut o.borrow_mut().native {
                        b.push_str(&args[0].to_str_lossy());
                    }
                }
                recv.clone()
            }
            ("java.lang.StringBuilder", "toString") => RtValue::Str(recv.to_str_lossy()),
            ("java.lang.String", "equals") => {
                // Corpus uses the static-style helper `equals(a, b)` and the
                // instance form; support both.
                let (a, b) =
                    if args.len() == 2 { (s(0), s(1)) } else { (recv.to_str_lossy(), s(0)) };
                RtValue::Bool(a == b)
            }
            ("java.lang.String", "trim") => RtValue::Str(recv.to_str_lossy().trim().to_string()),
            ("java.lang.String", "toLowerCase") => RtValue::Str(recv.to_str_lossy().to_lowercase()),
            ("java.lang.String", "toString") => RtValue::Str(recv.to_str_lossy()),
            ("java.lang.String", "concat") => RtValue::Str(recv.to_str_lossy() + &s(0)),
            ("java.lang.String", "valueOf") => RtValue::Str(s(0)),
            ("java.lang.Integer", "toString")
            | ("java.lang.Long", "toString")
            | ("java.lang.Double", "toString") => RtValue::Str(s(0)),
            ("java.net.URLEncoder", "encode") => RtValue::Str(url_encode(&s(0))),

            // ---- containers ----
            ("java.util.ArrayList", "<init>") | ("java.util.LinkedList", "<init>") => RtValue::Null,
            ("java.util.ArrayList", "add")
            | ("java.util.LinkedList", "add")
            | ("java.util.List", "add") => {
                if let RtValue::Object(o) = recv {
                    if let Native::List(items) = &mut o.borrow_mut().native {
                        items.push(args[0].clone());
                    }
                }
                RtValue::Bool(true)
            }
            ("java.util.ArrayList", "get") | ("java.util.List", "get") => {
                let i = args[0].as_int() as usize;
                match recv {
                    RtValue::Object(o) => match &o.borrow().native {
                        Native::List(items) => items.get(i).cloned().unwrap_or(RtValue::Null),
                        _ => RtValue::Null,
                    },
                    _ => RtValue::Null,
                }
            }
            ("java.util.HashMap", "<init>") => RtValue::Null,
            ("java.util.HashMap", "put") | ("java.util.Map", "put") => {
                if let RtValue::Object(o) = recv {
                    if let Native::Map(m) = &mut o.borrow_mut().native {
                        m.push((s(0), args[1].clone()));
                    }
                }
                RtValue::Null
            }
            ("java.util.HashMap", "get") | ("java.util.Map", "get") => match recv {
                RtValue::Object(o) => match &o.borrow().native {
                    Native::Map(m) => m
                        .iter()
                        .rev()
                        .find(|(k, _)| *k == s(0))
                        .map(|(_, v)| v.clone())
                        .unwrap_or(RtValue::Null),
                    _ => RtValue::Null,
                },
                _ => RtValue::Null,
            },

            // ---- apache http ----
            ("org.apache.http.client.methods.HttpGet", "<init>")
            | ("org.apache.http.client.methods.HttpPost", "<init>")
            | ("org.apache.http.client.methods.HttpPut", "<init>")
            | ("org.apache.http.client.methods.HttpDelete", "<init>") => {
                let method = match class.rsplit('.').next().unwrap_or("") {
                    "HttpGet" => HttpMethod::Get,
                    "HttpPost" => HttpMethod::Post,
                    "HttpPut" => HttpMethod::Put,
                    _ => HttpMethod::Delete,
                };
                if let RtValue::Object(o) = recv {
                    o.borrow_mut().native = Native::Request(RequestBuild {
                        method: Some(method),
                        url: s(0),
                        headers: Vec::new(),
                        body: None,
                    });
                }
                RtValue::Null
            }
            (_, "setHeader") | (_, "addHeader") | (_, "setRequestProperty")
                if class.starts_with("org.apache.http") || class.starts_with("java.net") =>
            {
                if let RtValue::Object(o) = recv {
                    if let Native::Request(r) = &mut o.borrow_mut().native {
                        r.headers.push((s(0), s(1)));
                    }
                }
                RtValue::Null
            }
            (_, "setEntity") if class.starts_with("org.apache.http") => {
                let body = match &args[0] {
                    RtValue::Object(o) => match &o.borrow().native {
                        Native::List(items) => Some(form_from_pairs(items)),
                        Native::Stream(text) => Some(body_from_text(text)),
                        _ => None,
                    },
                    _ => None,
                };
                if let RtValue::Object(o) = recv {
                    if let Native::Request(r) = &mut o.borrow_mut().native {
                        r.body = body;
                    }
                }
                RtValue::Null
            }
            ("org.apache.http.client.entity.UrlEncodedFormEntity", "<init>") => {
                // Wrap the pair list so setEntity can see it.
                if let (RtValue::Object(o), Some(RtValue::Object(list))) = (recv, args.first()) {
                    let items = match &list.borrow().native {
                        Native::List(items) => items.clone(),
                        _ => Vec::new(),
                    };
                    o.borrow_mut().native = Native::List(items);
                }
                RtValue::Null
            }
            ("org.apache.http.entity.StringEntity", "<init>") => {
                if let RtValue::Object(o) = recv {
                    o.borrow_mut().native = Native::Stream(s(0));
                }
                RtValue::Null
            }
            ("org.apache.http.message.BasicNameValuePair", "<init>") => {
                if let RtValue::Object(o) = recv {
                    o.borrow_mut().native = Native::Pair(s(0), s(1));
                }
                RtValue::Null
            }
            ("org.apache.http.impl.client.DefaultHttpClient", "<init>")
            | ("android.net.http.AndroidHttpClient", "<init>") => RtValue::Null,
            ("org.apache.http.client.HttpClient", "execute")
            | ("org.apache.http.impl.client.DefaultHttpClient", "execute")
            | ("android.net.http.AndroidHttpClient", "execute") => {
                let req =
                    request_of(&args[0]).ok_or_else(|| RtError("execute: no request".into()))?;
                self.perform(req)?
            }
            ("org.apache.http.HttpResponse", "getEntity") => match recv {
                RtValue::Object(o) => {
                    let text = match &o.borrow().native {
                        Native::Response { body_text, .. } => body_text.clone(),
                        _ => String::new(),
                    };
                    RtValue::obj("org.apache.http.HttpEntity", Native::Stream(text))
                }
                _ => RtValue::Null,
            },
            ("org.apache.http.HttpEntity", "getContent") => match recv {
                RtValue::Object(o) => {
                    let text = match &o.borrow().native {
                        Native::Stream(t) => t.clone(),
                        _ => String::new(),
                    };
                    RtValue::obj("java.io.InputStream", Native::Stream(text))
                }
                _ => RtValue::Null,
            },
            ("org.apache.http.util.EntityUtils", "toString")
            | ("org.apache.commons.io.IOUtils", "toString") => RtValue::Str(args[0].to_str_lossy()),

            // ---- java.net ----
            ("java.net.URL", "<init>") => {
                if let RtValue::Object(o) = recv {
                    o.borrow_mut().native = Native::Request(RequestBuild {
                        method: None,
                        url: s(0),
                        headers: Vec::new(),
                        body: None,
                    });
                }
                RtValue::Null
            }
            ("java.net.URL", "openConnection") => {
                // The connection shares the URL's request build.
                let rb = request_of(recv).unwrap_or_default();
                RtValue::obj("java.net.HttpURLConnection", Native::Request(rb))
            }
            ("java.net.URL", "openStream") | ("java.net.URL", "getContent") => {
                let req = request_of(recv).ok_or_else(|| RtError("openStream: no url".into()))?;
                let resp = self.perform(req)?;
                response_stream(&resp)
            }
            ("java.net.HttpURLConnection", "setRequestMethod") => {
                if let RtValue::Object(o) = recv {
                    if let Native::Request(r) = &mut o.borrow_mut().native {
                        r.method = HttpMethod::parse(&s(0));
                    }
                }
                RtValue::Null
            }
            ("java.net.HttpURLConnection", "getInputStream")
            | ("java.net.URLConnection", "getInputStream")
            | ("java.net.HttpURLConnection", "connect")
            | ("java.net.URLConnection", "getContent") => {
                let req = request_of(recv).ok_or_else(|| RtError("conn: no request".into()))?;
                let resp = self.perform(req)?;
                response_stream(&resp)
            }

            // ---- okhttp ----
            ("okhttp3.Request$Builder", "url") => {
                if let RtValue::Object(o) = recv {
                    if let Native::Request(r) = &mut o.borrow_mut().native {
                        r.url = s(0);
                    }
                }
                recv.clone()
            }
            ("okhttp3.Request$Builder", "get") => {
                set_method(recv, HttpMethod::Get);
                recv.clone()
            }
            ("okhttp3.Request$Builder", "post")
            | ("okhttp3.Request$Builder", "put")
            | ("okhttp3.Request$Builder", "delete") => {
                let method = match name {
                    "post" => HttpMethod::Post,
                    "put" => HttpMethod::Put,
                    _ => HttpMethod::Delete,
                };
                set_method(recv, method);
                if let (RtValue::Object(o), Some(RtValue::Object(b))) = (recv, args.first()) {
                    let text = match &b.borrow().native {
                        Native::Stream(t) => Some(t.clone()),
                        _ => None,
                    };
                    if let Some(t) = text {
                        if let Native::Request(r) = &mut o.borrow_mut().native {
                            r.body = Some(body_from_text(&t));
                        }
                    }
                }
                recv.clone()
            }
            ("okhttp3.Request$Builder", "header") | ("okhttp3.Request$Builder", "addHeader") => {
                if let RtValue::Object(o) = recv {
                    if let Native::Request(r) = &mut o.borrow_mut().native {
                        r.headers.push((s(0), s(1)));
                    }
                }
                recv.clone()
            }
            ("okhttp3.Request$Builder", "build") => {
                let rb = request_of(recv).unwrap_or_default();
                RtValue::obj("okhttp3.Request", Native::Request(rb))
            }
            ("okhttp3.MediaType", "parse") => RtValue::Str(s(0)),
            ("okhttp3.RequestBody", "create") => {
                let content = args.get(1).map(RtValue::to_str_lossy).unwrap_or_default();
                RtValue::obj("okhttp3.RequestBody", Native::Stream(content))
            }
            ("okhttp3.OkHttpClient", "<init>") => RtValue::Null,
            ("okhttp3.OkHttpClient", "newCall") => {
                let rb = request_of(&args[0]).unwrap_or_default();
                RtValue::obj("okhttp3.Call", Native::Request(rb))
            }
            ("okhttp3.Call", "execute") => {
                let req = request_of(recv).ok_or_else(|| RtError("okhttp: no request".into()))?;
                self.perform(req)?
            }
            ("okhttp3.Response", "body") => match recv {
                RtValue::Object(o) => {
                    let text = match &o.borrow().native {
                        Native::Response { body_text, .. } => body_text.clone(),
                        _ => String::new(),
                    };
                    RtValue::obj("okhttp3.ResponseBody", Native::Stream(text))
                }
                _ => RtValue::Null,
            },
            ("okhttp3.ResponseBody", "string") => RtValue::Str(recv.to_str_lossy()),
            ("okhttp3.Response", "code") => match recv {
                RtValue::Object(o) => match &o.borrow().native {
                    Native::Response { status, .. } => RtValue::Int(i64::from(*status)),
                    _ => RtValue::Int(0),
                },
                _ => RtValue::Int(0),
            },

            // ---- volley ----
            ("com.android.volley.toolbox.Volley", "newRequestQueue") => {
                RtValue::obj("com.android.volley.RequestQueue", Native::None)
            }
            ("com.android.volley.Request", "<init>") => {
                let method = match args.first().map(RtValue::as_int).unwrap_or(0) {
                    1 => HttpMethod::Post,
                    2 => HttpMethod::Put,
                    3 => HttpMethod::Delete,
                    _ => HttpMethod::Get,
                };
                if let RtValue::Object(o) = recv {
                    let mut ob = o.borrow_mut();
                    let body = match &ob.native {
                        Native::Request(r) => r.body.clone(),
                        _ => None,
                    };
                    ob.native = Native::Request(RequestBuild {
                        method: Some(method),
                        url: s(1),
                        headers: Vec::new(),
                        body,
                    });
                }
                RtValue::Null
            }
            ("com.android.volley.RequestQueue", "add") => {
                let req_obj = args[0].clone();
                let req =
                    request_of(&req_obj).ok_or_else(|| RtError("volley: no request".into()))?;
                let resp = self.perform(req)?;
                let body_text = match &resp {
                    RtValue::Object(o) => match &o.borrow().native {
                        Native::Response { body_text, .. } => body_text.clone(),
                        _ => String::new(),
                    },
                    _ => String::new(),
                };
                // Deliver through the app's subclass.
                if let RtValue::Object(o) = &req_obj {
                    let cls = o.borrow().class.clone();
                    if let Some(t) = self.prog.resolve_method(&cls, "deliverResponse", 1) {
                        if self.prog.method(t).has_body {
                            self.call(t, req_obj.clone(), vec![RtValue::Str(body_text)])?;
                        }
                    }
                }
                args[0].clone()
            }

            // ---- retrofit ----
            ("retrofit2.CallFactory", "create") => {
                let method = HttpMethod::parse(&s(0)).unwrap_or(HttpMethod::Get);
                let body = match args.get(2) {
                    Some(RtValue::Null) | None => None,
                    Some(v) => Some(body_from_text(&v.to_str_lossy())),
                };
                RtValue::obj(
                    "retrofit2.Call",
                    Native::Request(RequestBuild {
                        method: Some(method),
                        url: s(1),
                        headers: Vec::new(),
                        body,
                    }),
                )
            }
            ("retrofit2.Call", "execute") => {
                let req = request_of(recv).ok_or_else(|| RtError("retrofit: no request".into()))?;
                self.perform(req)?
            }
            ("retrofit2.Response", "body") => match recv {
                RtValue::Object(o) => {
                    let text = match &o.borrow().native {
                        Native::Response { body_text, .. } => body_text.clone(),
                        _ => String::new(),
                    };
                    RtValue::Str(text)
                }
                _ => RtValue::Null,
            },

            // ---- loopj / Bee ----
            ("com.loopj.android.http.AsyncHttpClient", "<init>")
            | ("com.beeframework.Bee", "<init>") => RtValue::Null,
            ("com.loopj.android.http.AsyncHttpClient", "get")
            | ("com.loopj.android.http.AsyncHttpClient", "post")
            | ("com.beeframework.Bee", "get")
            | ("com.beeframework.Bee", "post") => {
                let is_post = name == "post";
                let (url, body, handler) = if is_post {
                    (s(0), Some(body_from_text(&s(1))), args.get(2).cloned())
                } else {
                    (s(0), None, args.get(1).cloned())
                };
                let resp = self.perform(RequestBuild {
                    method: Some(if is_post { HttpMethod::Post } else { HttpMethod::Get }),
                    url,
                    headers: Vec::new(),
                    body,
                })?;
                let text = match &resp {
                    RtValue::Object(o) => match &o.borrow().native {
                        Native::Response { body_text, .. } => body_text.clone(),
                        _ => String::new(),
                    },
                    _ => String::new(),
                };
                let cb_name =
                    if class.contains("beeframework") { "onReceive" } else { "onSuccess" };
                if let Some(RtValue::Object(h)) = &handler {
                    let cls = h.borrow().class.clone();
                    if let Some(t) = self.prog.resolve_method(&cls, cb_name, 1) {
                        if self.prog.method(t).has_body {
                            self.call(t, handler.clone().unwrap(), vec![RtValue::Str(text)])?;
                        }
                    }
                }
                RtValue::Null
            }

            // ---- kevinsawicki ----
            ("com.github.kevinsawicki.http.HttpRequest", "get")
            | ("com.github.kevinsawicki.http.HttpRequest", "post")
            | ("com.github.kevinsawicki.http.HttpRequest", "put") => {
                let method = match name {
                    "get" => HttpMethod::Get,
                    "post" => HttpMethod::Post,
                    _ => HttpMethod::Put,
                };
                let resp = self.perform(RequestBuild {
                    method: Some(method),
                    url: s(0),
                    headers: Vec::new(),
                    body: None,
                })?;
                let text = match &resp {
                    RtValue::Object(o) => match &o.borrow().native {
                        Native::Response { body_text, .. } => body_text.clone(),
                        _ => String::new(),
                    },
                    _ => String::new(),
                };
                RtValue::obj("com.github.kevinsawicki.http.HttpRequest", Native::Stream(text))
            }
            ("com.github.kevinsawicki.http.HttpRequest", "body") => {
                RtValue::Str(recv.to_str_lossy())
            }

            // ---- the unmodeled ad library ----
            ("com.adlib.Tracker", "send") => {
                self.perform(RequestBuild {
                    method: Some(HttpMethod::Get),
                    url: s(0),
                    headers: Vec::new(),
                    body: None,
                })?;
                RtValue::Null
            }
            ("com.adlib.Tracker", "sendPost") => {
                self.perform(RequestBuild {
                    method: Some(HttpMethod::Post),
                    url: s(0),
                    headers: Vec::new(),
                    body: Some(body_from_text(&s(1))),
                })?;
                RtValue::Null
            }

            // ---- media ----
            ("android.media.MediaPlayer", "<init>") => RtValue::Null,
            ("android.media.MediaPlayer", "setDataSource") => {
                self.perform(RequestBuild {
                    method: Some(HttpMethod::Get),
                    url: s(0),
                    headers: Vec::new(),
                    body: None,
                })?;
                RtValue::Null
            }
            ("android.media.MediaPlayer", "prepare") | ("android.media.MediaPlayer", "start") => {
                RtValue::Null
            }

            // ---- JSON (org.json) ----
            ("org.json.JSONObject", "<init>") | ("org.json.JSONArray", "<init>") => {
                if let RtValue::Object(o) = recv {
                    if args.is_empty() {
                        // already initialized at allocation
                    } else {
                        let parsed = JsonValue::parse(&s(0))
                            .map_err(|e| RtError(format!("json parse: {e}")))?;
                        o.borrow_mut().native = Native::Json(parsed);
                    }
                }
                RtValue::Null
            }
            ("org.json.JSONObject", "put") => {
                if let RtValue::Object(o) = recv {
                    if let Native::Json(j) = &mut o.borrow_mut().native {
                        j.insert(&s(0), rt_to_json(&args[1]));
                    }
                }
                recv.clone()
            }
            ("org.json.JSONObject", "getString") | ("org.json.JSONObject", "optString") => {
                let j = json_of(recv);
                let v = lookup_json(&j, &s(0));
                RtValue::Str(match v {
                    Some(JsonValue::String(s)) => s,
                    Some(other) => other.to_json(),
                    None => String::new(),
                })
            }
            ("org.json.JSONObject", "getInt") => {
                let j = json_of(recv);
                RtValue::Int(lookup_json(&j, &s(0)).and_then(|v| v.as_num()).unwrap_or(0.0) as i64)
            }
            ("org.json.JSONObject", "getBoolean") => {
                let j = json_of(recv);
                RtValue::Bool(matches!(lookup_json(&j, &s(0)), Some(JsonValue::Bool(true))))
            }
            ("org.json.JSONObject", "getJSONObject") => {
                let j = json_of(recv);
                let v = lookup_json(&j, &s(0)).unwrap_or(JsonValue::Null);
                RtValue::obj("org.json.JSONObject", Native::Json(v))
            }
            ("org.json.JSONObject", "getJSONArray") => {
                let j = json_of(recv);
                let v = lookup_json(&j, &s(0)).unwrap_or(JsonValue::Array(vec![]));
                RtValue::obj("org.json.JSONArray", Native::Json(v))
            }
            ("org.json.JSONArray", "getJSONObject") | ("org.json.JSONArray", "get") => {
                let j = json_of(recv);
                let v = j.at(args[0].as_int() as usize).cloned().unwrap_or(JsonValue::Null);
                RtValue::obj("org.json.JSONObject", Native::Json(v))
            }
            ("org.json.JSONArray", "length") => {
                let j = json_of(recv);
                RtValue::Int(match j {
                    JsonValue::Array(a) => a.len() as i64,
                    _ => 0,
                })
            }
            ("org.json.JSONArray", "put") => {
                if let RtValue::Object(o) = recv {
                    if let Native::Json(JsonValue::Array(a)) = &mut o.borrow_mut().native {
                        a.push(rt_to_json(&args[0]));
                    }
                }
                recv.clone()
            }
            ("org.json.JSONObject", "toString") | ("org.json.JSONArray", "toString") => {
                RtValue::Str(json_of(recv).to_json())
            }

            // ---- gson / jackson reflection ----
            ("com.google.gson.Gson", "<init>")
            | ("com.fasterxml.jackson.databind.ObjectMapper", "<init>") => RtValue::Null,
            ("com.google.gson.Gson", "toJson")
            | ("com.fasterxml.jackson.databind.ObjectMapper", "writeValueAsString") => {
                RtValue::Str(reflect_to_json(&args[0]).to_json())
            }
            ("com.google.gson.Gson", "fromJson")
            | ("com.fasterxml.jackson.databind.ObjectMapper", "readValue") => {
                let parsed = JsonValue::parse(&s(0)).unwrap_or(JsonValue::Null);
                let cls = s(1);
                reflect_from_json(&cls, &parsed)
            }
            ("com.fasterxml.jackson.databind.ObjectMapper", "readTree") => {
                let parsed = JsonValue::parse(&s(0)).unwrap_or(JsonValue::Null);
                RtValue::obj("com.fasterxml.jackson.databind.JsonNode", Native::Json(parsed))
            }
            ("com.fasterxml.jackson.databind.JsonNode", "get")
            | ("com.fasterxml.jackson.databind.JsonNode", "path") => {
                let j = json_of(recv);
                let v = lookup_json(&j, &s(0)).unwrap_or(JsonValue::Null);
                RtValue::obj("com.fasterxml.jackson.databind.JsonNode", Native::Json(v))
            }
            ("com.fasterxml.jackson.databind.JsonNode", "asText") => {
                RtValue::Str(match json_of(recv) {
                    JsonValue::String(s) => s,
                    other => other.to_json(),
                })
            }

            // ---- XML DOM ----
            ("javax.xml.parsers.DocumentBuilder", "<init>") => RtValue::Null,
            ("javax.xml.parsers.DocumentBuilder", "parse") => {
                let e = XmlElement::parse(&s(0)).map_err(|e| RtError(format!("xml parse: {e}")))?;
                RtValue::obj("org.w3c.dom.Document", Native::Xml(e))
            }
            ("org.w3c.dom.Document", "getElementsByTagName")
            | ("org.w3c.dom.Element", "getElementsByTagName") => {
                let root = xml_of(recv);
                let tag = s(0);
                let mut found = Vec::new();
                collect_tags(&root, &tag, &mut found);
                RtValue::obj("org.w3c.dom.NodeList", Native::NodeList(found))
            }
            ("org.w3c.dom.NodeList", "item") => {
                let i = args[0].as_int() as usize;
                match recv {
                    RtValue::Object(o) => match &o.borrow().native {
                        Native::NodeList(items) => items
                            .get(i)
                            .map(|e| {
                                RtValue::obj("org.w3c.dom.Element", Native::Element(e.clone()))
                            })
                            .unwrap_or(RtValue::Null),
                        _ => RtValue::Null,
                    },
                    _ => RtValue::Null,
                }
            }
            ("org.w3c.dom.NodeList", "getLength") => match recv {
                RtValue::Object(o) => match &o.borrow().native {
                    Native::NodeList(items) => RtValue::Int(items.len() as i64),
                    _ => RtValue::Int(0),
                },
                _ => RtValue::Int(0),
            },
            ("org.w3c.dom.Element", "getAttribute") => {
                let e = element_of(recv);
                RtValue::Str(
                    e.and_then(|e| e.attr_value(&s(0)).map(str::to_string)).unwrap_or_default(),
                )
            }
            ("org.w3c.dom.Element", "getTextContent") => {
                let e = element_of(recv);
                RtValue::Str(e.map(|e| e.text_content()).unwrap_or_default())
            }

            // ---- android state ----
            ("android.content.res.Resources", "<init>") => RtValue::Null,
            ("android.content.res.Resources", "getString") => RtValue::Str(s(0)),
            ("android.content.SharedPreferences", "getString") => {
                RtValue::Str(self.prefs.get(&s(0)).cloned().unwrap_or_else(|| s(1)))
            }
            ("android.content.SharedPreferences$Editor", "putString") => {
                self.prefs.insert(s(0), s(1));
                recv.clone()
            }
            ("android.content.ContentValues", "<init>") => RtValue::Null,
            ("android.content.ContentValues", "put") => {
                if let RtValue::Object(o) = recv {
                    if let Native::Map(m) = &mut o.borrow_mut().native {
                        m.push((s(0), args[1].clone()));
                    }
                }
                RtValue::Null
            }
            ("android.database.sqlite.SQLiteDatabase", "insert")
            | ("android.database.sqlite.SQLiteDatabase", "update") => {
                let table = s(0);
                let values_idx = if name == "insert" { 2 } else { 1 };
                if let Some(RtValue::Object(cv)) = args.get(values_idx) {
                    if let Native::Map(m) = &cv.borrow().native {
                        let t = self.db.entry(table).or_default();
                        for (k, v) in m {
                            t.insert(k.clone(), v.to_str_lossy());
                        }
                    }
                }
                RtValue::Int(1)
            }
            ("android.database.sqlite.SQLiteDatabase", "query") => {
                let table = s(0);
                let col = s(2);
                let v = self.db.get(&table).and_then(|t| t.get(&col)).cloned().unwrap_or_default();
                RtValue::obj("android.database.Cursor", Native::Cursor(vec![v]))
            }
            ("android.database.Cursor", "getString") => match recv {
                RtValue::Object(o) => match &o.borrow().native {
                    Native::Cursor(vals) => RtValue::Str(
                        vals.get(args[0].as_int() as usize).cloned().unwrap_or_default(),
                    ),
                    _ => RtValue::Str(String::new()),
                },
                _ => RtValue::Str(String::new()),
            },
            ("android.database.Cursor", "moveToNext") => RtValue::Bool(false),

            // ---- device origins ----
            ("android.widget.EditText", "<init>") => RtValue::Null,
            ("android.widget.EditText", "getText") => RtValue::Str("user-input".into()),
            ("android.location.Location", "getCity") => RtValue::Str("Irvine".into()),
            ("android.location.Location", "getLatitude") => RtValue::Float(33.68),
            ("android.location.Location", "getLongitude") => RtValue::Float(-117.82),
            ("android.media.AudioRecord", "read") => RtValue::Int(0),
            ("android.location.LocationManager", "requestLocationUpdates") => RtValue::Null,

            // ---- consumption sinks ----
            ("android.widget.ImageView", "<init>")
            | ("android.widget.ImageView", "setImageBitmap")
            | ("android.webkit.WebView", "loadUrl")
            | ("java.io.FileOutputStream", "write")
            | ("java.io.FileOutputStream", "<init>") => RtValue::Null,

            // ---- async machinery: synchronous in the harness ----
            (_, "execute") if self.prog.is_subtype(class, "android.os.AsyncTask") => {
                // run doInBackground then onPostExecute on the receiver.
                let cls = dynamic_class_of(recv).unwrap_or_else(|| class.to_string());
                let mut result = RtValue::Null;
                if let Some(t) = self.prog.resolve_method(&cls, "doInBackground", 1) {
                    if self.prog.method(t).has_body {
                        result = self.call(
                            t,
                            recv.clone(),
                            vec![args.first().cloned().unwrap_or(RtValue::Null)],
                        )?;
                    }
                }
                if let Some(t) = self.prog.resolve_method(&cls, "onPostExecute", 1) {
                    if self.prog.method(t).has_body {
                        self.call(t, recv.clone(), vec![result])?;
                    }
                }
                RtValue::Null
            }
            ("java.lang.Thread", "<init>") => {
                if let (RtValue::Object(o), Some(r)) = (recv, args.first()) {
                    o.borrow_mut().fields.insert("runnable".into(), r.clone());
                }
                RtValue::Null
            }
            ("java.lang.Thread", "start") => {
                let runnable = match recv {
                    RtValue::Object(o) => o.borrow().fields.get("runnable").cloned(),
                    _ => None,
                };
                if let Some(r) = runnable {
                    self.run_runnable(&r)?;
                }
                RtValue::Null
            }
            ("android.os.Handler", "<init>") | ("java.util.Timer", "<init>") => RtValue::Null,
            ("android.os.Handler", "post")
            | ("android.os.Handler", "postDelayed")
            | ("java.util.Timer", "schedule") => {
                if let Some(r) = args.first() {
                    let r = r.clone();
                    self.run_runnable(&r)?;
                }
                RtValue::Bool(true)
            }
            ("android.view.View", "setOnClickListener") => RtValue::Null,

            _ => return Ok(None),
        };
        Ok(Some(result))
    }

    fn run_runnable(&mut self, r: &RtValue) -> RtResult<()> {
        if let RtValue::Object(o) = r {
            let cls = o.borrow().class.clone();
            if let Some(t) = self.prog.resolve_method(&cls, "run", 0) {
                if self.prog.method(t).has_body {
                    self.call(t, r.clone(), vec![])?;
                }
            }
        }
        Ok(())
    }

    /// Fires a request at the mock server, records the transaction, and
    /// returns a Response object.
    fn perform(&mut self, rb: RequestBuild) -> RtResult<RtValue> {
        let mut headers = Headers::new();
        for (k, v) in &rb.headers {
            headers.add(k, v);
        }
        let body = rb.body.clone().unwrap_or(Body::Empty);
        let request = Request {
            method: rb.method.unwrap_or(HttpMethod::Get),
            uri: Uri::parse(&rb.url),
            headers,
            body,
        };
        let response = self.server.serve(&request);
        self.trace.push(Transaction { request, response: response.clone() });
        let body_text = response.body.to_bytes_string();
        Ok(RtValue::obj(
            "org.apache.http.HttpResponse",
            Native::Response { status: response.status, body_text, body: response.body },
        ))
    }
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn dynamic_class_of(v: &RtValue) -> Option<String> {
    match v {
        RtValue::Object(o) => Some(o.borrow().class.clone()),
        _ => None,
    }
}

fn request_of(v: &RtValue) -> Option<RequestBuild> {
    match v {
        RtValue::Object(o) => match &o.borrow().native {
            Native::Request(r) => Some(r.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn set_method(v: &RtValue, m: HttpMethod) {
    if let RtValue::Object(o) = v {
        if let Native::Request(r) = &mut o.borrow_mut().native {
            r.method = Some(m);
        }
    }
}

fn response_stream(resp: &RtValue) -> RtValue {
    let text = match resp {
        RtValue::Object(o) => match &o.borrow().native {
            Native::Response { body_text, .. } => body_text.clone(),
            _ => String::new(),
        },
        _ => String::new(),
    };
    RtValue::obj("java.io.InputStream", Native::Stream(text))
}

fn json_of(v: &RtValue) -> JsonValue {
    match v {
        RtValue::Object(o) => match &o.borrow().native {
            Native::Json(j) => j.clone(),
            Native::Stream(s) => JsonValue::parse(s).unwrap_or(JsonValue::Null),
            _ => JsonValue::Null,
        },
        RtValue::Str(s) => JsonValue::parse(s).unwrap_or(JsonValue::Null),
        _ => JsonValue::Null,
    }
}

/// Member lookup tolerant of the wrap-in-array idiom (Fig. 8's status.json
/// is an array of station objects).
fn lookup_json(j: &JsonValue, key: &str) -> Option<JsonValue> {
    match j {
        JsonValue::Object(_) => j.get(key).cloned(),
        JsonValue::Array(items) => items.iter().find_map(|it| it.get(key).cloned()),
        _ => None,
    }
}

fn xml_of(v: &RtValue) -> XmlElement {
    match v {
        RtValue::Object(o) => match &o.borrow().native {
            Native::Xml(e) | Native::Element(e) => e.clone(),
            _ => XmlElement::new("empty"),
        },
        _ => XmlElement::new("empty"),
    }
}

fn element_of(v: &RtValue) -> Option<XmlElement> {
    match v {
        RtValue::Object(o) => match &o.borrow().native {
            Native::Element(e) | Native::Xml(e) => Some(e.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn collect_tags(e: &XmlElement, tag: &str, out: &mut Vec<XmlElement>) {
    if e.name == tag {
        out.push(e.clone());
    }
    for c in &e.children {
        if let XmlNode::Element(ce) = c {
            collect_tags(ce, tag, out);
        }
    }
}

fn rt_to_json(v: &RtValue) -> JsonValue {
    match v {
        RtValue::Null => JsonValue::Null,
        RtValue::Int(i) => JsonValue::Number(*i as f64),
        RtValue::Float(f) => JsonValue::Number(*f),
        RtValue::Bool(b) => JsonValue::Bool(*b),
        RtValue::Str(s) => JsonValue::String(s.clone()),
        RtValue::Object(o) => match &o.borrow().native {
            Native::Json(j) => j.clone(),
            _ => JsonValue::String(v.to_str_lossy()),
        },
    }
}

/// Reflection-based serialization: the object's fields become JSON keys.
fn reflect_to_json(v: &RtValue) -> JsonValue {
    match v {
        RtValue::Object(o) => {
            let mut out = JsonValue::object();
            for (k, fv) in &o.borrow().fields {
                out.insert(k, rt_to_json(fv));
            }
            out
        }
        other => rt_to_json(other),
    }
}

/// Reflection-based parsing: JSON keys become object fields.
fn reflect_from_json(class: &str, j: &JsonValue) -> RtValue {
    let obj = RtValue::obj(class, Native::Json(j.clone()));
    if let (RtValue::Object(o), JsonValue::Object(m)) = (&obj, j) {
        for (k, v) in m {
            let fv = match v {
                JsonValue::String(s) => RtValue::Str(s.clone()),
                JsonValue::Number(n) => RtValue::Float(*n),
                JsonValue::Bool(b) => RtValue::Bool(*b),
                other => RtValue::Str(other.to_json()),
            };
            o.borrow_mut().fields.insert(k.clone(), fv);
        }
    }
    obj
}

fn form_from_pairs(items: &[RtValue]) -> Body {
    let pairs: Vec<(String, String)> = items
        .iter()
        .filter_map(|it| match it {
            RtValue::Object(o) => match &o.borrow().native {
                Native::Pair(k, v) => Some((k.clone(), v.clone())),
                _ => None,
            },
            _ => None,
        })
        .collect();
    Body::Form(pairs)
}

/// Interprets body text as JSON when it parses, plain text otherwise.
fn body_from_text(text: &str) -> Body {
    match JsonValue::parse(text) {
        Ok(j) => Body::Json(j),
        Err(_) => Body::Text(text.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_corpus::{Route, ServerSpec};
    use extractocol_ir::{ApkBuilder, Type, Value};

    fn tiny_app() -> (Apk, ServerSpec) {
        let mut b = ApkBuilder::new("t", "t");
        extractocol_core::stubs::install(&mut b);
        b.class("t.Api", |c| {
            let tok = c.field("mTok", Type::string());
            c.method("login", vec![Type::string()], Type::Void, |m| {
                let this = m.recv("t.Api");
                let user = m.arg(0, "user");
                let sb =
                    m.new_obj("java.lang.StringBuilder", vec![Value::str("http://h/login?u=")]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(user)]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let t = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("token")],
                    Type::string(),
                );
                m.put_field(this, &tok, t);
                m.ret_void();
            });
            c.method("fetch", vec![], Type::Void, |m| {
                let this = m.recv("t.Api");
                let t = m.temp(Type::string());
                m.get_field(t, this, &tok);
                let sb =
                    m.new_obj("java.lang.StringBuilder", vec![Value::str("http://h/items?auth=")]);
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(t)]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });
        });
        let server = ServerSpec::new()
            .route(Route::json(HttpMethod::Get, "http://h/login.*", r#"{"token":"tk-99"}"#))
            .route(Route::empty(HttpMethod::Get, "http://h/items.*"));
        (b.build(), server)
    }

    #[test]
    fn executes_login_then_fetch_with_shared_state() {
        let (apk, server) = tiny_app();
        let mut interp = Interpreter::new(&apk, &server);
        interp.invoke("t.Api", "login", vec![RtValue::Str("alice".into())]).unwrap();
        interp.invoke("t.Api", "fetch", vec![]).unwrap();
        assert_eq!(interp.trace.len(), 2);
        assert_eq!(interp.trace[0].request.uri.to_uri_string(), "http://h/login?u=alice");
        // The token from the first response flows into the second request.
        assert_eq!(interp.trace[1].request.uri.to_uri_string(), "http://h/items?auth=tk-99");
        assert_eq!(interp.trace[0].response.status, 200);
    }
}

#[cfg(test)]
mod api_semantics_tests {
    use super::*;
    use extractocol_corpus::{Route, ServerSpec};
    use extractocol_ir::{ApkBuilder, Type, Value};

    fn run_method(
        build: impl FnOnce(&mut extractocol_ir::MethodBuilder),
        server: ServerSpec,
    ) -> (Vec<Transaction>, RtValue) {
        let mut b = ApkBuilder::new("t", "t");
        extractocol_core::stubs::install(&mut b);
        b.class("t.C", |c| {
            c.method("m", vec![], Type::string(), build);
        });
        let apk = b.build();
        let mut interp = Interpreter::new(&apk, &server);
        let r = interp.invoke("t.C", "m", vec![]).expect("interpretation");
        (interp.trace, r)
    }

    #[test]
    fn json_build_and_parse_round_trip() {
        let (_, r) = run_method(
            |m| {
                m.recv("t.C");
                let j = m.new_obj("org.json.JSONObject", vec![]);
                m.vcall_void(
                    j,
                    "org.json.JSONObject",
                    "put",
                    vec![Value::str("a"), Value::str("1")],
                );
                m.vcall_void(j, "org.json.JSONObject", "put", vec![Value::str("b"), Value::int(2)]);
                let text = m.vcall(j, "org.json.JSONObject", "toString", vec![], Type::string());
                let j2 = m.new_obj("org.json.JSONObject", vec![Value::Local(text)]);
                let v = m.vcall(
                    j2,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("a")],
                    Type::string(),
                );
                m.ret(v);
            },
            ServerSpec::new(),
        );
        assert!(matches!(r, RtValue::Str(s) if s == "1"));
    }

    #[test]
    fn xml_dom_navigation() {
        let (_, r) = run_method(
            |m| {
                m.recv("t.C");
                let text = m.temp(Type::string());
                m.cstr(
                    text,
                    "<root><item id=\"7\">first</item><item id=\"8\">second</item></root>",
                );
                let db = m.new_obj("javax.xml.parsers.DocumentBuilder", vec![]);
                let doc = m.vcall(
                    db,
                    "javax.xml.parsers.DocumentBuilder",
                    "parse",
                    vec![Value::Local(text)],
                    Type::object("org.w3c.dom.Document"),
                );
                let nl = m.vcall(
                    doc,
                    "org.w3c.dom.Document",
                    "getElementsByTagName",
                    vec![Value::str("item")],
                    Type::object("org.w3c.dom.NodeList"),
                );
                let el = m.vcall(
                    nl,
                    "org.w3c.dom.NodeList",
                    "item",
                    vec![Value::int(1)],
                    Type::object("org.w3c.dom.Element"),
                );
                let attr = m.vcall(
                    el,
                    "org.w3c.dom.Element",
                    "getAttribute",
                    vec![Value::str("id")],
                    Type::string(),
                );
                m.ret(attr);
            },
            ServerSpec::new(),
        );
        assert!(matches!(r, RtValue::Str(s) if s == "8"));
    }

    #[test]
    fn gson_reflection_round_trip() {
        let (_, r) = run_method(
            |m| {
                m.recv("t.C");
                // fromJson fills fields; toJson reads them back.
                let gson = m.new_obj("com.google.gson.Gson", vec![]);
                let obj = m.vcall(
                    gson,
                    "com.google.gson.Gson",
                    "fromJson",
                    vec![Value::str(r#"{"user":"bob","age":7}"#), Value::str("t.User")],
                    Type::obj_root(),
                );
                let text = m.vcall(
                    gson,
                    "com.google.gson.Gson",
                    "toJson",
                    vec![Value::Local(obj)],
                    Type::string(),
                );
                m.ret(text);
            },
            ServerSpec::new(),
        );
        let RtValue::Str(s) = r else { panic!("expected string") };
        let v = extractocol_http::JsonValue::parse(&s).unwrap();
        assert_eq!(v.get("user").unwrap().as_str(), Some("bob"));
    }

    #[test]
    fn loops_and_switches_execute() {
        use extractocol_ir::{BinOp, CondOp, Expr};
        let (_, r) = run_method(
            |m| {
                m.recv("t.C");
                let i = m.local("i", Type::Int);
                let acc = m.local("acc", Type::Int);
                m.cint(i, 0);
                m.cint(acc, 0);
                m.label("head");
                m.iff(CondOp::Ge, i, Value::int(5), "done");
                m.assign(acc, Expr::Bin(BinOp::Add, Value::Local(acc), Value::Local(i)));
                m.assign(i, Expr::Bin(BinOp::Add, Value::Local(i), Value::int(1)));
                m.goto("head");
                m.label("done");
                let out = m.temp(Type::string());
                m.switch(acc, vec![(10, "ten")], "other");
                m.label("ten");
                m.cstr(out, "ten");
                m.goto("end");
                m.label("other");
                m.cstr(out, "other");
                m.label("end");
                m.ret(out);
            },
            ServerSpec::new(),
        );
        assert!(matches!(r, RtValue::Str(s) if s == "ten"), "0+1+2+3+4 = 10");
    }

    #[test]
    fn header_gated_requests_carry_headers() {
        let server = ServerSpec::new().route(
            Route::json(HttpMethod::Get, ".*", r#"{"ok":"yes"}"#)
                .with_required_header("X-Auth", "secret-.*"),
        );
        let (trace, r) = run_method(
            |m| {
                m.recv("t.C");
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpGet",
                    vec![Value::str("https://h/x")],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpGet",
                    "setHeader",
                    vec![Value::str("X-Auth"), Value::str("secret-1")],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                m.ret(body);
            },
            server,
        );
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].response.status, 200);
        assert!(matches!(r, RtValue::Str(s) if s.contains("ok")));
    }
}
