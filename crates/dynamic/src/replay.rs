//! The §5.3 Kayak replay client.
//!
//! "We implement a simple Python script code (73 LOC) that generates HTTPS
//! requests for flight fare comparison based on our signatures. It first
//! sends a '/k/authajax' request to start a new session using the
//! app-specific 'User-Agent' field. It then sends '/flight/start' and
//! '/flight/poll' requests. We verify that it successfully retrieves
//! flight fare information."
//!
//! This module is that script, built the same way: it consumes only the
//! *static analysis report* (no app code), concretizes each signature's
//! wildcards with sample values, and fires the sequence at the server.

use crate::trace::TrafficTrace;
use extractocol_core::report::AnalysisReport;
use extractocol_core::siglang::{SigPat, TypeHint};
use extractocol_corpus::ServerSpec;
use extractocol_http::{Body, Headers, Request, Transaction, Uri};

/// Concretizes a signature: constants stay, wildcards get sample values.
pub fn concretize(sig: &SigPat, sample: &str) -> String {
    match sig {
        SigPat::Const(s) => s.clone(),
        SigPat::Unknown(TypeHint::Num) => "42".to_string(),
        SigPat::Unknown(TypeHint::Bool) => "true".to_string(),
        SigPat::Unknown(TypeHint::Str) => sample.to_string(),
        SigPat::Concat(items) => items.iter().map(|p| concretize(p, sample)).collect(),
        SigPat::Rep(inner) => concretize(inner, sample),
        SigPat::Or(items) => items.first().map(|p| concretize(p, sample)).unwrap_or_default(),
        SigPat::Json(_) | SigPat::Xml(_) => sample.to_string(),
    }
}

/// Builds a concrete request from a reconstructed transaction signature.
pub fn request_from_signature(txn: &extractocol_core::report::TxnReport, sample: &str) -> Request {
    let uri = concretize(&txn.uri, sample);
    let mut headers = Headers::new();
    for (name, value_re) in &txn.headers {
        // Header value signatures are regexes over constants for the
        // headers the replay needs (User-Agent is a constant).
        let value = value_re.replace("\\", "");
        headers.add(name, &value);
    }
    Request { method: txn.method, uri: Uri::parse(&uri), headers, body: Body::Empty }
}

/// The outcome of the flight-fare replay.
#[derive(Debug)]
pub struct ReplayOutcome {
    pub trace: TrafficTrace,
    /// Did `/k/authajax` succeed (User-Agent accepted)?
    pub auth_ok: bool,
    /// Did `/flight/start` + `/flight/poll` return fare information?
    pub fares_retrieved: bool,
}

/// Replays the Kayak flight-fare sequence from the analysis report alone.
pub fn replay_kayak_flight_search(report: &AnalysisReport, server: &ServerSpec) -> ReplayOutcome {
    let mut trace = TrafficTrace { app: report.app.clone(), transactions: Vec::new() };
    let mut send = |req: Request| -> (u16, String) {
        let resp = server.serve(&req);
        let body = resp.body.to_bytes_string();
        trace.transactions.push(Transaction { request: req, response: resp.clone() });
        (resp.status, body)
    };

    let find = |fragment: &str| report.transactions.iter().find(|t| t.uri_regex.contains(fragment));

    // 1. authajax with the recovered User-Agent.
    let auth_ok = match find("authajax") {
        Some(t) => {
            // Use the registration signature (the one with action=…).
            let req = request_from_signature(t, "demo");
            send(req).0 == 200
        }
        None => false,
    };

    // 2. flight/start then flight/poll.
    let started = find("flight/start")
        .map(|t| send(request_from_signature(t, "LAX")))
        .map(|(status, body)| status == 200 && body.contains("searchid"))
        .unwrap_or(false);
    let fares = find("flight/poll")
        .map(|t| send(request_from_signature(t, "LAX")))
        .map(|(status, body)| status == 200 && body.contains("price"))
        .unwrap_or(false);

    ReplayOutcome { trace, auth_ok, fares_retrieved: auth_ok && started && fares }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_core::siglang::SigPat;

    #[test]
    fn concretize_fills_wildcards() {
        let sig = SigPat::Concat(vec![
            SigPat::lit("https://www.kayak.com/k/authajax?action=registerandroid&uuid="),
            SigPat::any_str(),
            SigPat::lit("&platform=android"),
        ]);
        let s = concretize(&sig, "u-1");
        assert_eq!(
            s,
            "https://www.kayak.com/k/authajax?action=registerandroid&uuid=u-1&platform=android"
        );
    }
}
