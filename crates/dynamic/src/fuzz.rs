//! UI-fuzzing simulators (§5.1).
//!
//! The paper compares Extractocol's coverage against **manual UI fuzzing**
//! (a human driving the app, including signing up and logging in) and
//! **automatic UI fuzzing** with PUMA \[54\] ("PUMA merely iterates through
//! all clickable elements in the UI"). Both fall short of static analysis:
//! timers, server-triggered updates, and side-effectful commerce actions
//! stay untriggered; PUMA additionally "fails to recognize custom UI …
//! and stops to explore further".
//!
//! Our simulators honor each transaction's ground-truth visibility flags,
//! which the corpus derives from exactly those trigger classes.

use crate::interp::{Interpreter, RtValue};
use crate::trace::TrafficTrace;
use extractocol_corpus::{AppSpec, ConcreteArg, Trigger, TxnTruth};

fn rt_args(args: &[ConcreteArg]) -> Vec<RtValue> {
    args.iter()
        .map(|a| match a {
            ConcreteArg::Str(s) => RtValue::Str(s.clone()),
            ConcreteArg::Int(i) => RtValue::Int(*i),
            ConcreteArg::Null => RtValue::Null,
        })
        .collect()
}

fn fire(interp: &mut Interpreter<'_>, trigger: &Trigger, args: &[ConcreteArg]) {
    // A trigger that fails (unmodeled corner) simply produces no traffic,
    // like a crashed activity under fuzzing.
    let _ = interp.invoke(&trigger.class, &trigger.method, rt_args(args));
}

fn run_txn(interp: &mut Interpreter<'_>, t: &TxnTruth) {
    if let Some(setup) = &t.setup {
        fire(interp, setup, &setup.args);
    }
    if t.variant_args.is_empty() {
        fire(interp, &t.trigger, &t.trigger.args);
    } else {
        for args in &t.variant_args {
            fire(interp, &t.trigger, args);
        }
    }
}

fn run_where(app: &AppSpec, select: impl Fn(&TxnTruth) -> bool) -> TrafficTrace {
    let mut interp = Interpreter::new(&app.apk, &app.server);
    for t in app.truth.txns.iter().filter(|t| select(t)) {
        run_txn(&mut interp, t);
    }
    TrafficTrace { app: app.truth.name.clone(), transactions: interp.trace }
}

/// Manual UI fuzzing: everything a patient human reaches — standard and
/// custom UI, signup/login flows — but not timers, server pushes, or
/// purchases.
pub fn run_manual_fuzzer(app: &AppSpec) -> TrafficTrace {
    run_where(app, |t| t.visible_manual)
}

/// Automatic UI fuzzing (PUMA): standard clickable UI only.
pub fn run_auto_fuzzer(app: &AppSpec) -> TrafficTrace {
    run_where(app, |t| t.visible_auto)
}

/// An oracle run triggering *every* transaction — used to validate that
/// signatures match traffic for messages fuzzing can't reach (and for the
/// source-code ground-truth column of open-source apps).
pub fn run_perfect_fuzzer(app: &AppSpec) -> TrafficTrace {
    run_where(app, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzers_respect_visibility() {
        let app = extractocol_corpus::app("TED").expect("TED in corpus");
        let manual = run_manual_fuzzer(&app);
        let auto = run_auto_fuzzer(&app);
        let all = run_perfect_fuzzer(&app);
        assert!(manual.transactions.len() >= auto.transactions.len());
        assert!(all.transactions.len() >= manual.transactions.len());
        assert!(!auto.transactions.is_empty());
    }

    #[test]
    fn login_walled_app_defeats_puma() {
        let app = extractocol_corpus::app("5miles").expect("5miles in corpus");
        let auto = run_auto_fuzzer(&app);
        assert!(auto.transactions.is_empty(), "PUMA sees nothing behind the login wall");
        let manual = run_manual_fuzzer(&app);
        assert!(!manual.transactions.is_empty());
    }
}
