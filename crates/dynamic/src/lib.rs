//! # extractocol-dynamic
//!
//! The dynamic-analysis side of the evaluation (paper §5.1): running apps
//! and capturing their traffic. The paper executes real apps on devices
//! behind a decrypting proxy and drives them by hand and with PUMA \[54\];
//! our substitution is a **concrete interpreter** for the corpus IR wired
//! to the per-app mock server:
//!
//! * [`interp`] — executes methods with concrete values, giving every
//!   modelled API its real semantics (StringBuilder concatenation, JSON
//!   parse/build, HTTP execution against the `ServerSpec`), and records
//!   each network interaction as a `Transaction` in a trace;
//! * [`fuzz`] — the two UI-fuzzing simulators: *manual* fuzzing reaches
//!   everything a human can (including custom UI and login flows) while
//!   *automatic* fuzzing (PUMA) reaches only standard clickable UI — and
//!   neither reaches timers, server pushes, or side-effectful commerce
//!   actions;
//! * [`trace`] — captured traffic plus the evaluation metrics: signature
//!   matching (Table 1 validity), constant-keyword counts (Fig. 7), and
//!   byte-level Rk/Rv/Rn attribution (Table 2);
//! * [`eval`] — per-app and corpus-wide aggregation for Tables 1–2 and
//!   Figs. 6–7;
//! * [`replay`] — the §5.3 Kayak replay client built purely from
//!   recovered signatures.

pub mod adversarial;
pub mod conformance;
pub mod eval;
pub mod fuzz;
pub mod interp;
pub mod replay;
pub mod trace;

pub use adversarial::{generate_attacks, AdversarialConfig, AttackCase, AttackClass};
pub use conformance::{conformance_all, conformance_check, mutation_self_test, MutationSummary};
pub use fuzz::{run_auto_fuzzer, run_manual_fuzzer, run_perfect_fuzzer};
pub use interp::{Interpreter, RtError};
pub use trace::{parse_request_line, TraceParseError, TraceParseErrorKind, TrafficTrace};
