//! Parameterized app generation.
//!
//! Each corpus app is a set of *transaction templates* instantiated over
//! the HTTP stacks the paper models (§4). The generator emits, per
//! transaction: one trigger method of IR that builds the request through
//! the chosen library, fires it, and parses the response; the matching
//! ground-truth entry; and the mock-server route the dynamic harness
//! serves it with.

use crate::ground_truth::{
    AppSpec, ConcreteArg, GroundTruth, PaperRow, RespTruth, Trigger, TriggerKind, TxnTruth,
};
use crate::server::{Route, ServerSpec};
use extractocol_core::stubs;
use extractocol_http::regexlite::escape_literal;
use extractocol_http::{HttpMethod, JsonValue};
use extractocol_ir::{ApkBuilder, Local, MethodBuilder, Type, Value};

/// The HTTP stack a transaction uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stack {
    /// org.apache.http (`DefaultHttpClient.execute`).
    Apache,
    /// `java.net.URL` / `HttpURLConnection`.
    UrlConn,
    /// Volley with a `Request` subclass.
    Volley,
    /// okhttp3 builder + `newCall`.
    OkHttp,
    /// retrofit2 via the static `CallFactory` stand-in.
    Retrofit,
    /// loopj android-async-http with a success handler.
    Loopj,
    /// BeeFramework callback style.
    Bee,
    /// kevinsawicki http-request fluent style.
    KSawicki,
    /// Unmodeled raw-socket ad/analytics library — invisible to static
    /// analysis (the §5.1 missed-message source).
    Socket,
}

/// Request body kind. `Some(value)` entries are constants; `None` entries
/// are dynamic (the method takes them as parameters).
#[derive(Clone, Debug)]
pub enum BodyKind {
    None,
    /// URL-encoded form pairs.
    Form(Vec<(String, Option<String>)>),
    /// JSON object with these keys (values dynamic).
    Json(Vec<String>),
}

/// Response kind served and parsed.
#[derive(Clone, Debug)]
pub enum RespKind {
    /// No response body processed.
    None,
    /// JSON with these keys read by the app (the server adds unread keys).
    Json(Vec<String>),
    /// XML with these tags read by the app.
    Xml(Vec<String>),
    /// Body consumed unparsed.
    Raw,
}

/// One transaction template.
#[derive(Clone, Debug)]
pub struct TxnSpec {
    pub method: HttpMethod,
    pub stack: Stack,
    /// URI path (starts with `/`).
    pub path: String,
    /// Extra path-variant suffixes; ≥2 entries make the URI branchy
    /// (Diode-style) and each counts as a distinct signature.
    pub variants: Vec<String>,
    /// Query keys; `Some(v)` constant, `None` dynamic.
    pub query: Vec<(String, Option<String>)>,
    pub body: BodyKind,
    pub resp: RespKind,
    pub trigger_kind: TriggerKind,
    pub visible_manual: bool,
    pub visible_auto: bool,
}

impl TxnSpec {
    /// A plain GET template.
    pub fn get(stack: Stack, path: &str) -> TxnSpec {
        TxnSpec {
            method: HttpMethod::Get,
            stack,
            path: path.to_string(),
            variants: Vec::new(),
            query: Vec::new(),
            body: BodyKind::None,
            resp: RespKind::None,
            trigger_kind: TriggerKind::StandardUi,
            visible_manual: true,
            visible_auto: true,
        }
    }

    /// Sets the method (builder style).
    pub fn method(mut self, m: HttpMethod) -> TxnSpec {
        self.method = m;
        self
    }

    /// Adds a dynamic query key.
    pub fn q_dyn(mut self, k: &str) -> TxnSpec {
        self.query.push((k.to_string(), None));
        self
    }

    /// Adds a constant query pair.
    pub fn q_const(mut self, k: &str, v: &str) -> TxnSpec {
        self.query.push((k.to_string(), Some(v.to_string())));
        self
    }

    /// Sets path variants.
    pub fn variants(mut self, v: &[&str]) -> TxnSpec {
        self.variants = v.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the body.
    pub fn body(mut self, b: BodyKind) -> TxnSpec {
        self.body = b;
        self
    }

    /// Sets the response kind.
    pub fn resp(mut self, r: RespKind) -> TxnSpec {
        self.resp = r;
        self
    }

    /// Sets trigger/visibility.
    pub fn trigger(mut self, k: TriggerKind, manual: bool, auto: bool) -> TxnSpec {
        self.trigger_kind = k;
        self.visible_manual = manual;
        self.visible_auto = auto;
        self
    }
}

/// Incrementally builds one corpus app.
pub struct AppGen {
    builder: ApkBuilder,
    name: String,
    package: String,
    base: String,
    open_source: bool,
    protocol: &'static str,
    paper_row: PaperRow,
    txns: Vec<TxnTruth>,
    routes: Vec<Route>,
    counter: usize,
}

impl AppGen {
    /// Starts an app. `base` is the scheme+host, e.g. `https://api.x.com`.
    pub fn new(name: &str, package: &str, base: &str) -> AppGen {
        let mut builder = ApkBuilder::new(name, package);
        stubs::install(&mut builder);
        builder.activity(&format!("{package}.Main"));
        builder.permission("android.permission.INTERNET");
        AppGen {
            builder,
            name: name.to_string(),
            package: package.to_string(),
            base: base.to_string(),
            open_source: false,
            protocol: "HTTP(S)",
            paper_row: PaperRow::default(),
            txns: Vec::new(),
            routes: Vec::new(),
            counter: 0,
        }
    }

    /// Marks the app open-source.
    pub fn open_source(mut self) -> AppGen {
        self.open_source = true;
        self
    }

    /// Sets the Table 1 protocol column.
    pub fn protocol(mut self, p: &'static str) -> AppGen {
        self.protocol = p;
        self
    }

    /// Records the published Table 1 row.
    pub fn paper_row(mut self, row: PaperRow) -> AppGen {
        self.paper_row = row;
        self
    }

    /// Direct access to the APK builder (for handcrafted additions).
    pub fn apk_builder(&mut self) -> &mut ApkBuilder {
        &mut self.builder
    }

    /// Registers a handcrafted transaction's ground truth and route.
    pub fn record(&mut self, truth: TxnTruth, routes: Vec<Route>) {
        self.txns.push(truth);
        self.routes.extend(routes);
    }

    /// Adds a generated transaction from a template.
    pub fn txn(&mut self, spec: TxnSpec) {
        let id = self.counter;
        self.counter += 1;
        let class = format!("{}.Api{}", self.package, id / 8);
        let method_name = format!("tx{id}");
        let variant_count = spec.variants.len().max(1);

        // ---- parameters & example args ----
        // Param 0 is the variant selector when branchy; then one String per
        // dynamic query/form value.
        let mut params: Vec<Type> = Vec::new();
        if variant_count > 1 {
            params.push(Type::Int);
        }
        let dyn_query: Vec<&str> =
            spec.query.iter().filter(|(_, v)| v.is_none()).map(|(k, _)| k.as_str()).collect();
        let dyn_form: Vec<&str> = match &spec.body {
            BodyKind::Form(pairs) => {
                pairs.iter().filter(|(_, v)| v.is_none()).map(|(k, _)| k.as_str()).collect()
            }
            _ => Vec::new(),
        };
        let dyn_json: Vec<&str> = match &spec.body {
            BodyKind::Json(keys) => keys.iter().map(String::as_str).collect(),
            _ => Vec::new(),
        };
        for _ in dyn_query.iter().chain(&dyn_form).chain(&dyn_json) {
            params.push(Type::string());
        }
        let mut example_args: Vec<ConcreteArg> = Vec::new();
        if variant_count > 1 {
            example_args.push(ConcreteArg::Int(0));
        }
        for (i, k) in dyn_query.iter().chain(&dyn_form).chain(&dyn_json).enumerate() {
            example_args.push(ConcreteArg::s(&format!("{k}-val{i}")));
        }

        // ---- emit the method ----
        let mut spec = spec;
        // Form bodies need the apache UrlEncodedFormEntity path; other
        // stacks in this corpus carry JSON or empty bodies.
        if matches!(spec.body, BodyKind::Form(_)) && spec.stack != Stack::Socket {
            spec.stack = Stack::Apache;
        }
        // PUT/DELETE need a stack whose API can express them.
        if matches!(spec.method, HttpMethod::Put | HttpMethod::Delete)
            && matches!(spec.stack, Stack::Loopj | Stack::Bee | Stack::KSawicki)
        {
            spec.stack = Stack::Apache;
        }
        // JSON bodies need an entity-carrying API (URL connections, the
        // fluent kevinsawicki wrapper, and our Volley subclass carry none).
        if matches!(spec.body, BodyKind::Json(_))
            && matches!(spec.stack, Stack::UrlConn | Stack::KSawicki | Stack::Volley)
        {
            spec.stack = Stack::Apache;
        }
        let spec2 = spec.clone();
        let base = self.base.clone();
        let needs_volley_class = matches!(spec.stack, Stack::Volley);
        let volley_class = format!("{}.VolleyReq{id}", self.package);
        let needs_handler_class = matches!(spec.stack, Stack::Loopj | Stack::Bee);
        let handler_class = format!("{}.Handler{id}", self.package);

        self.builder.class(&class, |c| {
            c.method(&method_name, params.clone(), Type::Void, |m| {
                emit_txn(m, &spec2, &base, variant_count, &volley_class, &handler_class);
            });
        });
        if needs_volley_class {
            emit_volley_subclass(&mut self.builder, &volley_class, &spec.resp);
        }
        if needs_handler_class {
            emit_callback_class(&mut self.builder, &handler_class, &spec);
        }

        // ---- ground truth ----
        let qs_example: String = {
            let mut parts: Vec<String> = Vec::new();
            let mut di = 0;
            for (k, v) in &spec.query {
                match v {
                    Some(c) => parts.push(format!("{k}={c}")),
                    None => {
                        parts.push(format!("{k}={k}-val{di}"));
                        di += 1;
                    }
                }
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("?{}", parts.join("&"))
            }
        };
        let uri_examples: Vec<String> = if variant_count > 1 {
            spec.variants
                .iter()
                .map(|v| format!("{}{}{}{}", self.base, spec.path, v, qs_example))
                .collect()
        } else {
            vec![format!("{}{}{}", self.base, spec.path, qs_example)]
        };
        let resp_truth = match &spec.resp {
            RespKind::None => RespTruth::None,
            RespKind::Json(keys) => RespTruth::Json(keys.clone()),
            RespKind::Xml(tags) => RespTruth::Xml(tags.clone()),
            RespKind::Raw => RespTruth::Raw,
        };
        self.txns.push(TxnTruth {
            method: spec.method,
            variants: variant_count,
            uri_examples,
            query_keys: spec.query.iter().map(|(k, _)| k.clone()).collect(),
            body_json_keys: match &spec.body {
                BodyKind::Json(keys) => keys.clone(),
                _ => Vec::new(),
            },
            form_keys: match &spec.body {
                BodyKind::Form(pairs) => pairs.iter().map(|(k, _)| k.clone()).collect(),
                _ => Vec::new(),
            },
            resp: resp_truth,
            variant_args: if variant_count > 1 {
                (0..variant_count as i64)
                    .map(|v| {
                        let mut a = vec![ConcreteArg::Int(v)];
                        a.extend(example_args.iter().skip(1).cloned());
                        a
                    })
                    .collect()
            } else {
                Vec::new()
            },
            setup: None,
            trigger: Trigger::new(spec.trigger_kind, &class, &method_name, example_args.clone()),
            visible_manual: spec.visible_manual,
            visible_auto: spec.visible_auto,
            static_visible: spec.stack != Stack::Socket,
            body_requires_async: false,
        });

        // ---- server route ----
        // Anchored on the path; variants and query strings may follow.
        let pattern =
            format!("{}{}(/.*|\\?.*)?", escape_literal(&self.base), escape_literal(&spec.path));
        let route = match &spec.resp {
            RespKind::None => Route::empty(spec.method, &pattern),
            RespKind::Json(keys) => {
                let mut o = JsonValue::object();
                for (i, k) in keys.iter().enumerate() {
                    o.insert(k, JsonValue::str(&format!("{k}-resp{i}")));
                }
                // Unread keys the server sends anyway (the §5.1 signature
                // vs. traffic keyword gap on responses).
                o.insert("server_ts", JsonValue::num(1_480_000_000.0 + id as f64));
                o.insert("trace_id", JsonValue::str(&format!("t-{id}")));
                Route::ok(spec.method, &pattern, extractocol_http::Body::Json(o))
            }
            RespKind::Xml(tags) => {
                let inner: String =
                    tags.iter().skip(1).map(|t| format!("<{t}>{t}-val</{t}>")).collect();
                let root = tags.first().map(String::as_str).unwrap_or("root");
                Route::xml(
                    spec.method,
                    &pattern,
                    &format!("<{root} generated=\"yes\">{inner}</{root}>"),
                )
            }
            RespKind::Raw => Route::ok(
                spec.method,
                &pattern,
                extractocol_http::Body::Text(format!("raw-payload-{id}")),
            ),
        };
        self.routes.push(route);
    }

    /// Adds non-network "ballast" code: UI/business logic that real apps
    /// are mostly made of. Slicing must leave it behind — the paper
    /// reports Diode's slices cover only 6.3% of all code (Fig. 3) — and
    /// it gives the closed-source apps their larger analysis times
    /// (§5.1: minutes for small apps, hours for large ones).
    pub fn ballast(&mut self, units: usize) {
        let per_class = 12usize;
        let mut u = 0usize;
        let mut chunk = 0usize;
        while u < units {
            let class = format!("{}.ui.Screen{}", self.package, chunk);
            let n = per_class.min(units - u);
            self.builder.class(&class, |c| {
                for k in 0..n {
                    let cls = class.clone();
                    c.method(&format!("render{k}"), vec![Type::Int], Type::string(), move |m| {
                        m.recv(&cls);
                        let count = m.arg(0, "count");
                        let i = m.local("i", Type::Int);
                        let acc = m.local("acc", Type::Int);
                        m.cint(i, 0);
                        m.cint(acc, 0);
                        m.label("head");
                        m.iff(extractocol_ir::CondOp::Ge, i, count, "done");
                        m.assign(
                            acc,
                            extractocol_ir::Expr::Bin(
                                extractocol_ir::BinOp::Add,
                                Value::Local(acc),
                                Value::Local(i),
                            ),
                        );
                        m.assign(
                            i,
                            extractocol_ir::Expr::Bin(
                                extractocol_ir::BinOp::Add,
                                Value::Local(i),
                                Value::int(1),
                            ),
                        );
                        m.goto("head");
                        m.label("done");
                        let sb = m.new_obj(
                            "java.lang.StringBuilder",
                            vec![Value::str("items rendered: ")],
                        );
                        m.vcall_void(
                            sb,
                            "java.lang.StringBuilder",
                            "append",
                            vec![Value::Local(acc)],
                        );
                        let label = m.vcall(
                            sb,
                            "java.lang.StringBuilder",
                            "toString",
                            vec![],
                            Type::string(),
                        );
                        let list = m.new_obj("java.util.ArrayList", vec![]);
                        m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(label)]);
                        m.ret(label);
                    });
                }
            });
            u += n;
            chunk += 1;
        }
    }

    /// Finalizes the app.
    pub fn finish(self) -> AppSpec {
        AppSpec {
            apk: self.builder.build(),
            truth: GroundTruth {
                name: self.name,
                open_source: self.open_source,
                protocol: self.protocol,
                paper_row: self.paper_row,
                txns: self.txns,
            },
            server: ServerSpec { routes: self.routes },
        }
    }
}

/// Emits the body of one transaction method.
fn emit_txn(
    m: &mut MethodBuilder,
    spec: &TxnSpec,
    base: &str,
    variant_count: usize,
    volley_class: &str,
    handler_class: &str,
) {
    m.recv("corpus.App");
    // Bind every parameter identity up front (Jimple requires identities
    // before any other statement).
    let mut param_idx: u32 = 0;
    let variant_param = if variant_count > 1 {
        let p = m.arg(param_idx, "variant");
        param_idx += 1;
        Some(p)
    } else {
        None
    };
    let mut dyn_locals: Vec<Local> = Vec::new();
    {
        let n_dyn = spec.query.iter().filter(|(_, v)| v.is_none()).count()
            + match &spec.body {
                BodyKind::Form(pairs) => pairs.iter().filter(|(_, v)| v.is_none()).count(),
                BodyKind::Json(keys) => keys.len(),
                BodyKind::None => 0,
            };
        for _ in 0..n_dyn {
            dyn_locals.push(m.arg(param_idx, &format!("p{param_idx}")));
            param_idx += 1;
        }
    }
    let mut next_dyn = dyn_locals.into_iter();

    // ---- build the URL string ----
    let sb =
        m.new_obj("java.lang.StringBuilder", vec![Value::str(&format!("{base}{}", spec.path))]);
    if let Some(vp) = variant_param {
        // Branchy URI (Diode-style): one append per variant.
        let labels: Vec<String> = (0..spec.variants.len()).map(|i| format!("v{i}")).collect();
        let arms: Vec<(i64, &str)> =
            labels.iter().enumerate().map(|(i, l)| (i as i64, l.as_str())).collect();
        m.switch(vp, arms, &labels[0]);
        for (i, suffix) in spec.variants.iter().enumerate() {
            m.label(&labels[i]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str(suffix)]);
            if i + 1 < spec.variants.len() {
                m.goto("after_variants");
            }
        }
        m.label("after_variants");
    }
    let mut first_q = true;
    for (k, v) in &spec.query {
        let sep = if first_q { "?" } else { "&" };
        first_q = false;
        m.vcall_void(
            sb,
            "java.lang.StringBuilder",
            "append",
            vec![Value::str(&format!("{sep}{k}="))],
        );
        match v {
            Some(c) => {
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str(c)]);
            }
            None => {
                let p = next_dyn.next().expect("dynamic query param");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(p)]);
            }
        }
    }
    let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());

    // ---- request body value ----
    enum BuiltBody {
        None,
        FormList(Local),
        JsonText(Local),
    }
    let body = match &spec.body {
        BodyKind::None => BuiltBody::None,
        BodyKind::Form(pairs) => {
            let list = m.new_obj("java.util.ArrayList", vec![]);
            for (k, v) in pairs {
                let value: Value = match v {
                    Some(c) => Value::str(c),
                    None => Value::Local(next_dyn.next().expect("dynamic form param")),
                };
                let pair = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str(k), value],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(pair)]);
            }
            BuiltBody::FormList(list)
        }
        BodyKind::Json(keys) => {
            let j = m.new_obj("org.json.JSONObject", vec![]);
            for k in keys {
                let p = next_dyn.next().expect("dynamic json param");
                m.vcall_void(j, "org.json.JSONObject", "put", vec![Value::str(k), Value::Local(p)]);
            }
            let text = m.vcall(j, "org.json.JSONObject", "toString", vec![], Type::string());
            BuiltBody::JsonText(text)
        }
    };

    // ---- fire through the chosen stack and parse the response ----
    match spec.stack {
        Stack::Apache => {
            let req_class = match spec.method {
                HttpMethod::Get => "org.apache.http.client.methods.HttpGet",
                HttpMethod::Post => "org.apache.http.client.methods.HttpPost",
                HttpMethod::Put => "org.apache.http.client.methods.HttpPut",
                HttpMethod::Delete => "org.apache.http.client.methods.HttpDelete",
            };
            let req = m.new_obj(req_class, vec![Value::Local(url)]);
            match body {
                BuiltBody::FormList(list) => {
                    let ent = m.new_obj(
                        "org.apache.http.client.entity.UrlEncodedFormEntity",
                        vec![Value::Local(list)],
                    );
                    m.vcall_void(req, req_class, "setEntity", vec![Value::Local(ent)]);
                }
                BuiltBody::JsonText(text) => {
                    let ent =
                        m.new_obj("org.apache.http.entity.StringEntity", vec![Value::Local(text)]);
                    m.vcall_void(req, req_class, "setEntity", vec![Value::Local(ent)]);
                }
                BuiltBody::None => {}
            }
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            parse_apache_response(m, resp, &spec.resp);
        }
        Stack::UrlConn => {
            let u = m.new_obj("java.net.URL", vec![Value::Local(url)]);
            let conn = m.vcall(
                u,
                "java.net.URL",
                "openConnection",
                vec![],
                Type::object("java.net.HttpURLConnection"),
            );
            if spec.method != HttpMethod::Get {
                m.vcall_void(
                    conn,
                    "java.net.HttpURLConnection",
                    "setRequestMethod",
                    vec![Value::str(spec.method.as_str())],
                );
            }
            match &spec.resp {
                RespKind::None => {
                    // Fire the request without touching the body.
                    m.vcall_void(conn, "java.net.HttpURLConnection", "connect", vec![]);
                }
                RespKind::Raw => {
                    let input = m.vcall(
                        conn,
                        "java.net.HttpURLConnection",
                        "getInputStream",
                        vec![],
                        Type::object("java.io.InputStream"),
                    );
                    let _ = input;
                }
                _ => {
                    let input = m.vcall(
                        conn,
                        "java.net.HttpURLConnection",
                        "getInputStream",
                        vec![],
                        Type::object("java.io.InputStream"),
                    );
                    let text = m.scall(
                        "org.apache.commons.io.IOUtils",
                        "toString",
                        vec![Value::Local(input)],
                        Type::string(),
                    );
                    parse_text_response(m, text, &spec.resp);
                }
            }
        }
        Stack::Volley => {
            let method_code: i64 = match spec.method {
                HttpMethod::Get => 0,
                HttpMethod::Post => 1,
                HttpMethod::Put => 2,
                HttpMethod::Delete => 3,
            };
            let queue = m.scall(
                "com.android.volley.toolbox.Volley",
                "newRequestQueue",
                vec![Value::null()],
                Type::object("com.android.volley.RequestQueue"),
            );
            let req = m.new_obj(volley_class, vec![Value::int(method_code), Value::Local(url)]);
            m.vcall_void(queue, "com.android.volley.RequestQueue", "add", vec![Value::Local(req)]);
        }
        Stack::OkHttp => {
            let builder = m.new_obj("okhttp3.Request$Builder", vec![]);
            m.vcall_void(builder, "okhttp3.Request$Builder", "url", vec![Value::Local(url)]);
            if spec.method == HttpMethod::Get {
                m.vcall_void(builder, "okhttp3.Request$Builder", "get", vec![]);
            } else {
                let content: Value = match &body {
                    BuiltBody::JsonText(text) => Value::Local(*text),
                    _ => Value::str(""),
                };
                let mt = m.scall(
                    "okhttp3.MediaType",
                    "parse",
                    vec![Value::str("application/json")],
                    Type::object("okhttp3.MediaType"),
                );
                let rb = m.scall(
                    "okhttp3.RequestBody",
                    "create",
                    vec![Value::Local(mt), content],
                    Type::object("okhttp3.RequestBody"),
                );
                let verb = match spec.method {
                    HttpMethod::Post => "post",
                    HttpMethod::Put => "put",
                    _ => "delete",
                };
                m.vcall_void(builder, "okhttp3.Request$Builder", verb, vec![Value::Local(rb)]);
            }
            let req = m.vcall(
                builder,
                "okhttp3.Request$Builder",
                "build",
                vec![],
                Type::object("okhttp3.Request"),
            );
            let client = m.new_obj("okhttp3.OkHttpClient", vec![]);
            let call = m.vcall(
                client,
                "okhttp3.OkHttpClient",
                "newCall",
                vec![Value::Local(req)],
                Type::object("okhttp3.Call"),
            );
            let resp =
                m.vcall(call, "okhttp3.Call", "execute", vec![], Type::object("okhttp3.Response"));
            if !matches!(spec.resp, RespKind::None) {
                let rb = m.vcall(
                    resp,
                    "okhttp3.Response",
                    "body",
                    vec![],
                    Type::object("okhttp3.ResponseBody"),
                );
                let text = m.vcall(rb, "okhttp3.ResponseBody", "string", vec![], Type::string());
                parse_text_response(m, text, &spec.resp);
            }
        }
        Stack::Retrofit => {
            let body_value = match &body {
                BuiltBody::JsonText(t) => Value::Local(*t),
                _ => Value::null(),
            };
            let call = m.scall(
                "retrofit2.CallFactory",
                "create",
                vec![Value::str(spec.method.as_str()), Value::Local(url), body_value],
                Type::object("retrofit2.Call"),
            );
            let resp = m.vcall(
                call,
                "retrofit2.Call",
                "execute",
                vec![],
                Type::object("retrofit2.Response"),
            );
            if !matches!(spec.resp, RespKind::None) {
                let obj = m.vcall(resp, "retrofit2.Response", "body", vec![], Type::obj_root());
                let text = m.temp(Type::string());
                m.assign(text, extractocol_ir::Expr::Cast(Type::string(), Value::Local(obj)));
                parse_text_response(m, text, &spec.resp);
            }
        }
        Stack::Loopj => {
            let client = m.new_obj("com.loopj.android.http.AsyncHttpClient", vec![]);
            let handler = m.new_obj(handler_class, vec![]);
            if spec.method == HttpMethod::Get {
                m.vcall_void(
                    client,
                    "com.loopj.android.http.AsyncHttpClient",
                    "get",
                    vec![Value::Local(url), Value::Local(handler)],
                );
            } else {
                let content: Value = match &body {
                    BuiltBody::JsonText(text) => Value::Local(*text),
                    _ => Value::str(""),
                };
                m.vcall_void(
                    client,
                    "com.loopj.android.http.AsyncHttpClient",
                    "post",
                    vec![Value::Local(url), content, Value::Local(handler)],
                );
            }
        }
        Stack::Bee => {
            let bee = m.new_obj("com.beeframework.Bee", vec![]);
            let cb = m.new_obj(handler_class, vec![]);
            if spec.method == HttpMethod::Get {
                m.vcall_void(
                    bee,
                    "com.beeframework.Bee",
                    "get",
                    vec![Value::Local(url), Value::Local(cb)],
                );
            } else {
                let content: Value = match &body {
                    BuiltBody::JsonText(text) => Value::Local(*text),
                    _ => Value::str(""),
                };
                m.vcall_void(
                    bee,
                    "com.beeframework.Bee",
                    "post",
                    vec![Value::Local(url), content, Value::Local(cb)],
                );
            }
        }
        Stack::KSawicki => {
            let verb = match spec.method {
                HttpMethod::Get => "get",
                HttpMethod::Post => "post",
                _ => "put",
            };
            let req = m.scall(
                "com.github.kevinsawicki.http.HttpRequest",
                verb,
                vec![Value::Local(url)],
                Type::object("com.github.kevinsawicki.http.HttpRequest"),
            );
            if !matches!(spec.resp, RespKind::None) {
                let text = m.vcall(
                    req,
                    "com.github.kevinsawicki.http.HttpRequest",
                    "body",
                    vec![],
                    Type::string(),
                );
                parse_text_response(m, text, &spec.resp);
            }
        }
        Stack::Socket => {
            // Unmodeled library: static analysis sees an unknown call.
            if spec.method == HttpMethod::Get {
                m.scall_void("com.adlib.Tracker", "send", vec![Value::Local(url)]);
            } else {
                let content: Value = match &body {
                    BuiltBody::JsonText(text) => Value::Local(*text),
                    _ => Value::str(""),
                };
                m.scall_void("com.adlib.Tracker", "sendPost", vec![Value::Local(url), content]);
            }
        }
    }
    m.ret_void();
}

/// Parses an apache `HttpResponse` per the response kind.
fn parse_apache_response(m: &mut MethodBuilder, resp: Local, kind: &RespKind) {
    match kind {
        RespKind::None => {}
        RespKind::Raw => {
            let ent = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let _content = m.vcall(
                ent,
                "org.apache.http.HttpEntity",
                "getContent",
                vec![],
                Type::object("java.io.InputStream"),
            );
        }
        _ => {
            let ent = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let text = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(ent)],
                Type::string(),
            );
            parse_text_response(m, text, kind);
        }
    }
}

/// Parses a textual body per the response kind (shared by all stacks).
fn parse_text_response(m: &mut MethodBuilder, text: Local, kind: &RespKind) {
    match kind {
        RespKind::None | RespKind::Raw => {}
        RespKind::Json(keys) => {
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(text)]);
            for k in keys {
                let v = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str(k)],
                    Type::string(),
                );
                let _ = v;
            }
        }
        RespKind::Xml(tags) => {
            let db = m.new_obj("javax.xml.parsers.DocumentBuilder", vec![]);
            let doc = m.vcall(
                db,
                "javax.xml.parsers.DocumentBuilder",
                "parse",
                vec![Value::Local(text)],
                Type::object("org.w3c.dom.Document"),
            );
            // Read each tag below the root.
            for t in tags.iter().skip(1) {
                let nl = m.vcall(
                    doc,
                    "org.w3c.dom.Document",
                    "getElementsByTagName",
                    vec![Value::str(t)],
                    Type::object("org.w3c.dom.NodeList"),
                );
                let el = m.vcall(
                    nl,
                    "org.w3c.dom.NodeList",
                    "item",
                    vec![Value::int(0)],
                    Type::object("org.w3c.dom.Element"),
                );
                let txt =
                    m.vcall(el, "org.w3c.dom.Element", "getTextContent", vec![], Type::string());
                let _ = txt;
            }
        }
    }
}

/// Emits a Volley `Request` subclass parsing the response in
/// `deliverResponse` (the callback the registry wires to `RequestQueue.add`).
fn emit_volley_subclass(b: &mut ApkBuilder, class: &str, resp: &RespKind) {
    let resp = resp.clone();
    let class_owned = class.to_string();
    b.class(class, move |c| {
        c.extends("com.android.volley.Request");
        c.method("<init>", vec![Type::Int, Type::string()], Type::Void, |m| {
            let this = m.recv(&class_owned);
            let code = m.arg(0, "method");
            let url = m.arg(1, "url");
            m.special_void(
                this,
                "com.android.volley.Request",
                "<init>",
                vec![Value::Local(code), Value::Local(url)],
            );
            m.ret_void();
        });
        // Transactions that never process the body ship no response
        // callback (fire-and-forget Volley requests).
        if !matches!(resp, RespKind::None) {
            c.method("deliverResponse", vec![Type::obj_root()], Type::Void, |m| {
                m.recv(&class_owned);
                let payload = m.arg(0, "payload");
                let text = m.temp(Type::string());
                m.assign(text, extractocol_ir::Expr::Cast(Type::string(), Value::Local(payload)));
                parse_text_response(m, text, &resp);
                m.ret_void();
            });
        }
    });
}

/// Emits a loopj/Bee callback class parsing the response in its success
/// method.
fn emit_callback_class(b: &mut ApkBuilder, class: &str, spec: &TxnSpec) {
    let resp = spec.resp.clone();
    let (iface, cb_name) = match spec.stack {
        Stack::Loopj => ("com.loopj.android.http.ResponseHandler", "onSuccess"),
        _ => ("com.beeframework.Callback", "onReceive"),
    };
    let class_owned = class.to_string();
    b.class(class, move |c| {
        c.implements(iface);
        c.method("<init>", vec![], Type::Void, |m| {
            m.recv(&class_owned);
            m.ret_void();
        });
        if !matches!(resp, RespKind::None) {
            c.method(cb_name, vec![Type::string()], Type::Void, |m| {
                m.recv(&class_owned);
                let text = m.arg(0, "body");
                parse_text_response(m, text, &resp);
                m.ret_void();
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn generated_app_validates_and_counts_match() {
        let mut g = AppGen::new("demo", "com.demo", "https://api.demo.com");
        g.txn(
            TxnSpec::get(Stack::Apache, "/items")
                .q_dyn("page")
                .resp(RespKind::Json(vec!["items".into(), "next".into()])),
        );
        g.txn(
            TxnSpec::get(Stack::OkHttp, "/search")
                .method(HttpMethod::Post)
                .body(BodyKind::Json(vec!["q".into()]))
                .resp(RespKind::Json(vec!["hits".into()])),
        );
        g.txn(TxnSpec::get(Stack::Socket, "/beacon").trigger(TriggerKind::Timer, true, false));
        let app = g.finish();
        assert!(validate_apk(&app.apk).is_empty(), "{:?}", validate_apk(&app.apk));
        let c = app.truth.static_counts();
        assert_eq!(c.get, 1, "socket txn is static-invisible");
        assert_eq!(c.post, 1);
        assert_eq!(c.json, 3); // 1 resp + (1 body + 1 resp)
        assert_eq!(c.pairs, 2);
        assert_eq!(app.server.routes.len(), 3);
        // Server responds to the example URI.
        let req = extractocol_http::Request::get(&app.truth.txns[0].uri_examples[0]);
        assert_eq!(app.server.serve(&req).status, 200);
    }

    #[test]
    fn variants_generate_branchy_uris() {
        let mut g = AppGen::new("v", "com.v", "http://v.com");
        g.txn(
            TxnSpec::get(Stack::Apache, "/r")
                .variants(&["/hot.json", "/new.json", "/top.json"])
                .resp(RespKind::Raw),
        );
        let app = g.finish();
        let t = &app.truth.txns[0];
        assert_eq!(t.variants, 3);
        assert_eq!(t.uri_examples.len(), 3);
        assert_eq!(app.truth.static_counts().get, 1, "one txn regardless of variants");
        assert!(validate_apk(&app.apk).is_empty());
    }
}
