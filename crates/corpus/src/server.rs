//! Per-app mock-server specifications.
//!
//! The paper captures ground-truth traffic by running apps against their
//! real servers through a decrypting proxy (§5.1). Our substitution: every
//! corpus app ships a [`ServerSpec`] — route patterns with canned
//! responses — and the dynamic harness interprets the app's IR against it,
//! producing the traces used for signature validation and the
//! keyword/byte-level metrics (Tables 1–2, Figs. 6–8).

use extractocol_http::regexlite::Regex;
use extractocol_http::{Body, HttpMethod, JsonValue, Request, Response, XmlElement};

/// One servable route.
#[derive(Clone, Debug)]
pub struct Route {
    pub method: HttpMethod,
    /// Anchored regex over the full request URI.
    pub pattern: String,
    /// Response status.
    pub status: u16,
    /// Response body.
    pub body: Body,
    /// Require a header to match (name, value regex) — Kayak's
    /// User-Agent-based access control (§5.3). Mismatch → 403.
    pub require_header: Option<(String, String)>,
}

impl Route {
    /// A 200 route with a body.
    pub fn ok(method: HttpMethod, pattern: &str, body: Body) -> Route {
        Route { method, pattern: pattern.to_string(), status: 200, body, require_header: None }
    }

    /// A 200 route with an empty body (fire-and-forget endpoints).
    pub fn empty(method: HttpMethod, pattern: &str) -> Route {
        Route::ok(method, pattern, Body::Empty)
    }

    /// JSON route from a parsed template.
    pub fn json(method: HttpMethod, pattern: &str, json: &str) -> Route {
        Route::ok(method, pattern, Body::Json(JsonValue::parse(json).expect("route JSON template")))
    }

    /// XML route from a template.
    pub fn xml(method: HttpMethod, pattern: &str, xml: &str) -> Route {
        Route::ok(method, pattern, Body::Xml(XmlElement::parse(xml).expect("route XML template")))
    }

    /// Adds a header requirement (builder style).
    pub fn with_required_header(mut self, name: &str, value_pattern: &str) -> Route {
        self.require_header = Some((name.to_string(), value_pattern.to_string()));
        self
    }
}

/// The app's server: an ordered route table (first match wins).
#[derive(Clone, Debug, Default)]
pub struct ServerSpec {
    pub routes: Vec<Route>,
}

impl ServerSpec {
    /// An empty spec.
    pub fn new() -> ServerSpec {
        ServerSpec::default()
    }

    /// Adds a route (builder style).
    pub fn route(mut self, r: Route) -> ServerSpec {
        self.routes.push(r);
        self
    }

    /// Serves a request: first matching route wins; no match → 404.
    pub fn serve(&self, req: &Request) -> Response {
        let uri = req.uri.to_uri_string();
        for r in &self.routes {
            if r.method != req.method {
                continue;
            }
            let Ok(re) = Regex::new(&r.pattern) else { continue };
            if !re.is_match(&uri) {
                continue;
            }
            if let Some((name, vp)) = &r.require_header {
                let ok = req
                    .headers
                    .get(name)
                    .and_then(|v| Regex::new(vp).ok().map(|re| re.is_match(v)))
                    .unwrap_or(false);
                if !ok {
                    return Response {
                        status: 403,
                        headers: Default::default(),
                        body: Body::Empty,
                    };
                }
            }
            return Response {
                status: r.status,
                headers: Default::default(),
                body: r.body.clone(),
            };
        }
        Response::not_found()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_http::regexlite::escape_literal;

    #[test]
    fn serves_matching_route() {
        let spec = ServerSpec::new()
            .route(Route::json(
                HttpMethod::Get,
                &format!("{}.*", escape_literal("http://api.x.com/items")),
                r#"{"items":[{"id":1}]}"#,
            ))
            .route(Route::empty(HttpMethod::Post, ".*"));
        let ok = spec.serve(&Request::get("http://api.x.com/items?page=2"));
        assert_eq!(ok.status, 200);
        assert!(matches!(ok.body, Body::Json(_)));
        let nf = spec.serve(&Request::get("http://api.x.com/other"));
        assert_eq!(nf.status, 404);
        let post = spec.serve(&Request::post("http://anything", Body::Empty));
        assert_eq!(post.status, 200);
    }

    #[test]
    fn header_gating_enforces_user_agent() {
        let spec = ServerSpec::new().route(
            Route::json(HttpMethod::Get, ".*", r#"{"ok":true}"#)
                .with_required_header("User-Agent", "kayakandroidphone/.*"),
        );
        let mut req = Request::get("https://www.kayak.com/k/authajax");
        assert_eq!(spec.serve(&req).status, 403, "missing UA");
        req.headers.add("User-Agent", "kayakandroidphone/8.1");
        assert_eq!(spec.serve(&req).status, 200);
        let mut bad = Request::get("https://www.kayak.com/k/authajax");
        bad.headers.add("User-Agent", "Mozilla/5.0");
        assert_eq!(spec.serve(&bad).status, 403);
    }
}
