//! # extractocol-corpus
//!
//! A synthetic Android application corpus standing in for the 34 real apps
//! of the paper's evaluation (14 open-source from F-Droid, 20 closed-source
//! top-chart apps — Table 1). Real APKs and their servers are unavailable
//! (and unredistributable); per the reproduction's substitution rule, each
//! app is modelled as an IR program that exercises the same analysis
//! challenges:
//!
//! * the same HTTP stacks (apache http, `java.net`, Volley, okhttp,
//!   retrofit, loopj, BeeFramework, gson/jackson/org.json, W3C DOM XML),
//! * the same protocol mix per app (GET/POST/PUT/DELETE, query strings,
//!   JSON/XML bodies, pair counts — calibrated to Table 1's Extractocol
//!   column),
//! * the same dynamic-analysis blind spots (timer- and server-triggered
//!   requests, side-effectful commerce actions, custom UI that defeats
//!   automatic fuzzing, login walls),
//! * the same static-analysis blind spots (raw-socket ad/analytics
//!   libraries, reproducing the rows where manual fuzzing beats
//!   Extractocol),
//! * and the case-study apps in faithful detail: Diode (Fig. 3),
//!   radio reddit (Table 3, Fig. 8), TED (Table 4, Fig. 1), Kayak
//!   (Tables 5–6), and the weather-notification async example (§3.4).
//!
//! Each app ships as an [`AppSpec`]: the APK, its [`GroundTruth`] (what a
//! perfect analysis would find, plus per-transaction dynamic-visibility
//! flags), and a [`ServerSpec`] the mock server uses so the dynamic
//! harness can actually execute the app and capture traffic.

pub mod apps;
pub mod gen;
pub mod ground_truth;
pub mod server;

pub use gen::{BodyKind, RespKind, Stack, TxnSpec};
pub use ground_truth::{
    AppSpec, ConcreteArg, GroundTruth, PaperRow, RespTruth, RowCounts, Trigger, TriggerKind,
    TxnTruth,
};
pub use server::{Route, ServerSpec};

/// All 34 corpus apps, open-source first (Table 1 order).
pub fn all_apps() -> Vec<AppSpec> {
    let mut v = apps::open_source::all();
    v.extend(apps::closed_source::all());
    v
}

/// The 14 open-source apps.
pub fn open_source_apps() -> Vec<AppSpec> {
    apps::open_source::all()
}

/// The 20 closed-source apps.
pub fn closed_source_apps() -> Vec<AppSpec> {
    apps::closed_source::all()
}

/// Fetches one app by display name.
pub fn app(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.truth.name == name)
}
