//! Weather Notification — open-source app and the §3.4 asynchronous-event
//! example: "a weather notification app sets its location inside a
//! callback invoked by a location service. It constructs a part of query
//! string that contains city names and GPS locations into a heap object.
//! Later, another event, such as a user click, actually reads the object
//! to generate an HTTP request."
//!
//! Table 1 row: 2 GET, 2 XML responses, 2 pairs.

use crate::gen::AppGen;
use crate::ground_truth::{
    AppSpec, PaperRow, RespTruth, RowCounts, Trigger, TriggerKind, TxnTruth,
};
use crate::server::Route;
use extractocol_http::HttpMethod;
use extractocol_ir::{Type, Value};

const PKG: &str = "ru.gelin.android.weather.notification";

fn row(get: usize, xml: usize, pairs: usize) -> RowCounts {
    RowCounts { get, post: 0, put: 0, delete: 0, query: 0, json: 0, xml, pairs }
}

/// Builds the Weather Notification corpus app.
pub fn build() -> AppSpec {
    let mut g = AppGen::new("Weather Notification", PKG, "http://weather.example.org")
        .open_source()
        .protocol("HTTP")
        .paper_row(PaperRow {
            extractocol: row(2, 2, 2),
            manual: row(2, 2, 2),
            third: row(2, 2, 2),
        });

    let svc = format!("{PKG}.WeatherService");
    {
        let b = g.apk_builder();
        b.class(&svc, |c| {
            c.extends("java.lang.Object");
            c.implements("android.location.LocationListener");
            let f_city = c.field("mCityQuery", Type::string());

            // Event 1: the location callback builds part of the query
            // string into a heap object.
            c.method(
                "onLocationChanged",
                vec![Type::object("android.location.Location")],
                Type::Void,
                |m| {
                    let this = m.recv(&svc);
                    let loc = m.arg(0, "location");
                    let city = m.vcall(
                        loc,
                        "android.location.Location",
                        "getCity",
                        vec![],
                        Type::string(),
                    );
                    let sb = m.new_obj("java.lang.StringBuilder", vec![Value::str("q=")]);
                    m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(city)]);
                    m.vcall_void(
                        sb,
                        "java.lang.StringBuilder",
                        "append",
                        vec![Value::str("&units=metric")],
                    );
                    let q =
                        m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                    m.put_field(this, &f_city, q);
                    m.ret_void();
                },
            );

            // Registration wiring (gives the location callback a caller).
            c.method("start", vec![], Type::Void, |m| {
                let this = m.recv(&svc);
                let lm = m.temp(Type::object("android.location.LocationManager"));
                m.assign(lm, extractocol_ir::Expr::New("android.location.LocationManager".into()));
                m.vcall_void(
                    lm,
                    "android.location.LocationManager",
                    "requestLocationUpdates",
                    vec![Value::str("gps"), Value::int(60000), Value::int(100), Value::Local(this)],
                );
                m.ret_void();
            });

            // Event 2: a user click reads the heap object and fires the
            // request.
            c.method("onClick", vec![], Type::Void, |m| {
                let this = m.recv(&svc);
                let q = m.temp(Type::string());
                m.get_field(q, this, &f_city);
                let sb = m.new_obj(
                    "java.lang.StringBuilder",
                    vec![Value::str("http://weather.example.org/data/current.xml?")],
                );
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(q)]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let db = m.new_obj("javax.xml.parsers.DocumentBuilder", vec![]);
                let doc = m.vcall(
                    db,
                    "javax.xml.parsers.DocumentBuilder",
                    "parse",
                    vec![Value::Local(body)],
                    Type::object("org.w3c.dom.Document"),
                );
                for tag in ["temperature", "humidity", "wind"] {
                    let nl = m.vcall(
                        doc,
                        "org.w3c.dom.Document",
                        "getElementsByTagName",
                        vec![Value::str(tag)],
                        Type::object("org.w3c.dom.NodeList"),
                    );
                    let el = m.vcall(
                        nl,
                        "org.w3c.dom.NodeList",
                        "item",
                        vec![Value::int(0)],
                        Type::object("org.w3c.dom.Element"),
                    );
                    let v = m.vcall(
                        el,
                        "org.w3c.dom.Element",
                        "getTextContent",
                        vec![],
                        Type::string(),
                    );
                    let _ = v;
                }
                m.ret_void();
            });

            // The forecast request (timer-refreshed).
            c.method("fetchForecast", vec![Type::string()], Type::Void, |m| {
                m.recv(&svc);
                let city = m.arg(0, "city");
                let sb = m.new_obj(
                    "java.lang.StringBuilder",
                    vec![Value::str("http://weather.example.org/data/forecast.xml?q=")],
                );
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(city)]);
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let db = m.new_obj("javax.xml.parsers.DocumentBuilder", vec![]);
                let doc = m.vcall(
                    db,
                    "javax.xml.parsers.DocumentBuilder",
                    "parse",
                    vec![Value::Local(body)],
                    Type::object("org.w3c.dom.Document"),
                );
                let nl = m.vcall(
                    doc,
                    "org.w3c.dom.Document",
                    "getElementsByTagName",
                    vec![Value::str("day")],
                    Type::object("org.w3c.dom.NodeList"),
                );
                let _ = nl;
                m.ret_void();
            });
        });
    }

    let current_xml = "<weather><temperature>21</temperature><humidity>40</humidity><wind>3</wind><pressure>1013</pressure></weather>";
    let forecast_xml = "<forecast><day>mon</day><day>tue</day></forecast>";

    g.record(
        TxnTruth {
            method: HttpMethod::Get,
            variants: 1,
            uri_examples: vec![
                "http://weather.example.org/data/current.xml?q=Irvine&units=metric".into()
            ],
            query_keys: vec!["q".into(), "units".into()],
            body_json_keys: vec![],
            form_keys: vec![],
            resp: RespTruth::Xml(vec![
                "weather".into(),
                "temperature".into(),
                "humidity".into(),
                "wind".into(),
            ]),
            trigger: Trigger::new(TriggerKind::StandardUi, &svc, "onClick", vec![]),
            variant_args: vec![],
            setup: None,
            visible_manual: true,
            visible_auto: true,
            static_visible: true,
            body_requires_async: false,
        },
        vec![Route::xml(
            HttpMethod::Get,
            "http://weather\\.example\\.org/data/current\\.xml.*",
            current_xml,
        )],
    );
    g.record(
        TxnTruth {
            method: HttpMethod::Get,
            variants: 1,
            uri_examples: vec!["http://weather.example.org/data/forecast.xml?q=Irvine".into()],
            query_keys: vec!["q".into()],
            body_json_keys: vec![],
            form_keys: vec![],
            resp: RespTruth::Xml(vec!["forecast".into(), "day".into()]),
            trigger: Trigger::new(
                TriggerKind::Timer,
                &svc,
                "fetchForecast",
                vec![crate::ground_truth::ConcreteArg::s("Irvine")],
            ),
            variant_args: vec![],
            setup: None,
            visible_manual: true,
            visible_auto: false,
            static_visible: true,
            body_requires_async: false,
        },
        vec![Route::xml(
            HttpMethod::Get,
            "http://weather\\.example\\.org/data/forecast\\.xml.*",
            forecast_xml,
        )],
    );

    g.ballast(40);
    g.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn weather_matches_row() {
        let app = build();
        assert!(validate_apk(&app.apk).is_empty());
        let c = app.truth.static_counts();
        assert_eq!(c.get, 2);
        assert_eq!(c.xml, 2);
        assert_eq!(c.pairs, 2);
    }
}
