//! TED — the Table 4 / Fig. 1 case study ("Best Apps of 2014").
//!
//! Eight notable transactions and their dependency graph:
//!
//! 1. Speaker info (S) — JSON; name/description inserted into the SQLite
//!    DB (`android.database.sqlite.SQLiteDatabase`), api-key from
//!    `android.content.res.Resources`.
//! 2. Facebook sharing (S) — `GET https://graph.facebook.com/me/photos`.
//! 3. Advertisement query (S) — JSON carrying the ad query URI (Fig. 1's
//!    `android_ad.json` response with `companions`/`url`).
//! 4. `GET (.*)` ad query URI from #3 (D) — XML (VAST) with ad resource
//!    URIs.
//! 5. `GET (.*)` ad video URI from #4 (D) — binary, to the media player
//!    ("response goes to media player", Fig. 1 — the prefetch chain).
//! 6. Talk info (S) — JSON; thumbnail/video URIs inserted into the DB.
//! 7. `GET (.*)` thumbnail URI from the DB (D) — binary (image view).
//! 8. `GET (.*)` audio/video URI from the DB (D) — binary (media player).
//!
//! Plus the rest of the app's API surface to match its Table 1 row
//! (16 GET / 2 POST, q=2, json=10, 10 pairs; automatic fuzzing reaches
//! only 10 GET / 1 POST — server-triggered updates defeat it, §5.2).

use crate::gen::{AppGen, BodyKind, RespKind, Stack, TxnSpec};
use crate::ground_truth::{
    AppSpec, ConcreteArg, PaperRow, RespTruth, RowCounts, Trigger, TriggerKind, TxnTruth,
};
use crate::server::Route;
use extractocol_http::{Body, HttpMethod};
use extractocol_ir::{Type, Value};

const PKG: &str = "com.ted.android";
const API: &str = "https://app-api.ted.com";

fn row(get: usize, post: usize, query: usize, json: usize, xml: usize, pairs: usize) -> RowCounts {
    RowCounts { get, post, put: 0, delete: 0, query, json, xml, pairs }
}

/// Builds the TED corpus app.
pub fn build() -> AppSpec {
    let mut g = AppGen::new("TED", PKG, API).protocol("HTTP(S)").paper_row(PaperRow {
        extractocol: row(16, 2, 2, 10, 0, 10),
        manual: row(16, 2, 2, 10, 0, 10),
        third: row(10, 1, 2, 10, 0, 10),
    });
    g.apk_builder().resource("ted_api_key", "k9a7f3e2");

    build_handcrafted(&mut g);

    // Filler API surface: 8 more GETs (5 JSON-paired, 2 of those with
    // query strings) and 2 POSTs with JSON bodies.
    for (i, (path, json_resp, query, auto)) in [
        ("/v1/talks.json", true, true, true),
        ("/v1/playlists.json", true, true, true),
        ("/v1/languages.json", true, false, true),
        ("/v1/themes.json", true, false, true),
        ("/v1/events.json", true, false, false),
        ("/v1/surprise_me.json", false, false, false),
        ("/v1/configuration.json", false, false, false),
        ("/v1/translations/check.json", false, false, false),
    ]
    .into_iter()
    .enumerate()
    {
        let mut t = TxnSpec::get(Stack::Apache, path);
        if json_resp {
            t = t.resp(RespKind::Json(vec![
                format!("field_a{i}"),
                format!("field_b{i}"),
                "updated_at".to_string(),
            ]));
        }
        if query {
            t = t.q_const("api-key", "k9a7f3e2").q_dyn("page");
        }
        let kind = if auto { TriggerKind::StandardUi } else { TriggerKind::ServerPush };
        g.txn(t.trigger(kind, true, auto));
    }
    g.txn(
        TxnSpec::get(Stack::Apache, "/v1/history")
            .method(HttpMethod::Post)
            .body(BodyKind::Json(vec!["talk_id".into(), "progress".into()]))
            .trigger(TriggerKind::StandardUi, true, true),
    );
    g.txn(
        TxnSpec::get(Stack::Apache, "/v1/favorites")
            .method(HttpMethod::Post)
            .body(BodyKind::Json(vec!["talk_id".into()]))
            .trigger(TriggerKind::LoginFlow, true, false),
    );

    g.ballast(420);
    g.finish()
}

fn build_handcrafted(g: &mut AppGen) {
    let api = format!("{PKG}.TedApi");
    let b = g.apk_builder();
    b.class(&api, |c| {
        c.extends("java.lang.Object");
        let f_ad_query = c.field("mAdQueryUri", Type::string());
        let f_ad_video = c.field("mAdVideoUri", Type::string());

        // Helper: run a GET and return the body string.
        c.method("doGet", vec![Type::string()], Type::string(), |m| {
            m.recv(&api);
            let url = m.arg(0, "url");
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            let ent = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let body = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(ent)],
                Type::string(),
            );
            m.ret(body);
        });

        // #1: speakers — api-key from resources, response rows into the DB.
        c.method("fetchSpeakers", vec![Type::string()], Type::Void, |m| {
            let this = m.recv(&api);
            let since = m.arg(0, "since");
            let res = m.new_obj("android.content.res.Resources", vec![]);
            let key = m.vcall(
                res,
                "android.content.res.Resources",
                "getString",
                vec![Value::Resource("ted_api_key".into())],
                Type::string(),
            );
            let sb = m.new_obj(
                "java.lang.StringBuilder",
                vec![Value::str("https://app-api.ted.com/v1/speakers.json?limit=2000&api-key=")],
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(key)]);
            m.vcall_void(
                sb,
                "java.lang.StringBuilder",
                "append",
                vec![Value::str("&filter=updated_at:%3E")],
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(since)]);
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let body = m.vcall(this, &api, "doGet", vec![Value::Local(url)], Type::string());
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let speakers = m.vcall(
                j,
                "org.json.JSONObject",
                "getJSONArray",
                vec![Value::str("speakers")],
                Type::object("org.json.JSONArray"),
            );
            let first = m.vcall(
                speakers,
                "org.json.JSONArray",
                "getJSONObject",
                vec![Value::int(0)],
                Type::object("org.json.JSONObject"),
            );
            let name = m.vcall(
                first,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("name")],
                Type::string(),
            );
            let desc = m.vcall(
                first,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("description")],
                Type::string(),
            );
            let cv = m.new_obj("android.content.ContentValues", vec![]);
            m.vcall_void(
                cv,
                "android.content.ContentValues",
                "put",
                vec![Value::str("name"), Value::Local(name)],
            );
            m.vcall_void(
                cv,
                "android.content.ContentValues",
                "put",
                vec![Value::str("description"), Value::Local(desc)],
            );
            let db = m.temp(Type::object("android.database.sqlite.SQLiteDatabase"));
            m.assign(
                db,
                extractocol_ir::Expr::New("android.database.sqlite.SQLiteDatabase".into()),
            );
            m.vcall_void(
                db,
                "android.database.sqlite.SQLiteDatabase",
                "insert",
                vec![Value::str("speakers"), Value::null(), Value::Local(cv)],
            );
            m.ret_void();
        });

        // #2: Facebook sharing.
        c.method("shareFacebook", vec![], Type::Void, |m| {
            let this = m.recv(&api);
            let body = m.vcall(
                this,
                &api,
                "doGet",
                vec![Value::str("https://graph.facebook.com/me/photos")],
                Type::string(),
            );
            let _ = body;
            m.ret_void();
        });

        // #3: ad query (Fig. 1) — the response's url feeds #4.
        c.method("fetchAd", vec![Type::string()], Type::Void, |m| {
            let this = m.recv(&api);
            let talk_id = m.arg(0, "talkId");
            let res = m.new_obj("android.content.res.Resources", vec![]);
            let key = m.vcall(
                res,
                "android.content.res.Resources",
                "getString",
                vec![Value::Resource("ted_api_key".into())],
                Type::string(),
            );
            let sb = m.new_obj(
                "java.lang.StringBuilder",
                vec![Value::str("https://app-api.ted.com/v1/talks/")],
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(talk_id)]);
            m.vcall_void(
                sb,
                "java.lang.StringBuilder",
                "append",
                vec![Value::str("/android_ad.json?api-key=")],
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(key)]);
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let body = m.vcall(this, &api, "doGet", vec![Value::Local(url)], Type::string());
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let comps = m.vcall(
                j,
                "org.json.JSONObject",
                "getJSONObject",
                vec![Value::str("companions")],
                Type::object("org.json.JSONObject"),
            );
            let on_page = m.vcall(
                comps,
                "org.json.JSONObject",
                "getJSONObject",
                vec![Value::str("on_page")],
                Type::object("org.json.JSONObject"),
            );
            let h = m.vcall(
                on_page,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("height")],
                Type::string(),
            );
            let w = m.vcall(
                on_page,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("width")],
                Type::string(),
            );
            let _ = (h, w);
            let ad_url = m.vcall(
                j,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("url")],
                Type::string(),
            );
            m.put_field(this, &f_ad_query, ad_url);
            m.ret_void();
        });

        // #4: ad query URI from #3 (D) — XML response with resource URIs.
        c.method("fetchAdResources", vec![], Type::Void, |m| {
            let this = m.recv(&api);
            let url = m.temp(Type::string());
            m.get_field(url, this, &f_ad_query);
            let body = m.vcall(this, &api, "doGet", vec![Value::Local(url)], Type::string());
            let db = m.new_obj("javax.xml.parsers.DocumentBuilder", vec![]);
            let doc = m.vcall(
                db,
                "javax.xml.parsers.DocumentBuilder",
                "parse",
                vec![Value::Local(body)],
                Type::object("org.w3c.dom.Document"),
            );
            let nl = m.vcall(
                doc,
                "org.w3c.dom.Document",
                "getElementsByTagName",
                vec![Value::str("MediaFile")],
                Type::object("org.w3c.dom.NodeList"),
            );
            let el = m.vcall(
                nl,
                "org.w3c.dom.NodeList",
                "item",
                vec![Value::int(0)],
                Type::object("org.w3c.dom.Element"),
            );
            let video =
                m.vcall(el, "org.w3c.dom.Element", "getTextContent", vec![], Type::string());
            m.put_field(this, &f_ad_video, video);
            m.ret_void();
        });

        // #5: ad video URI from #4 (D) — the prefetchable media stream.
        c.method("playAd", vec![], Type::Void, |m| {
            let this = m.recv(&api);
            let url = m.temp(Type::string());
            m.get_field(url, this, &f_ad_video);
            let mp = m.new_obj("android.media.MediaPlayer", vec![]);
            m.vcall_void(mp, "android.media.MediaPlayer", "setDataSource", vec![Value::Local(url)]);
            m.vcall_void(mp, "android.media.MediaPlayer", "start", vec![]);
            m.ret_void();
        });

        // #6: talk catalog — thumbnail/video URIs into the DB.
        c.method("fetchTalks", vec![Type::string()], Type::Void, |m| {
            let this = m.recv(&api);
            let ids = m.arg(0, "ids");
            let res = m.new_obj("android.content.res.Resources", vec![]);
            let key = m.vcall(
                res,
                "android.content.res.Resources",
                "getString",
                vec![Value::Resource("ted_api_key".into())],
                Type::string(),
            );
            let sb = m.new_obj(
                "java.lang.StringBuilder",
                vec![Value::str(
                    "https://app-api.ted.com/v1/talk_catalogs/android_v1.json?api-key=",
                )],
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(key)]);
            m.vcall_void(
                sb,
                "java.lang.StringBuilder",
                "append",
                vec![Value::str("&fields=duration_in_seconds&filter=id:")],
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(ids)]);
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let body = m.vcall(this, &api, "doGet", vec![Value::Local(url)], Type::string());
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let talks = m.vcall(
                j,
                "org.json.JSONObject",
                "getJSONArray",
                vec![Value::str("talks")],
                Type::object("org.json.JSONArray"),
            );
            let first = m.vcall(
                talks,
                "org.json.JSONArray",
                "getJSONObject",
                vec![Value::int(0)],
                Type::object("org.json.JSONObject"),
            );
            let thumb = m.vcall(
                first,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("thumbnail_url")],
                Type::string(),
            );
            let video = m.vcall(
                first,
                "org.json.JSONObject",
                "getString",
                vec![Value::str("video_url")],
                Type::string(),
            );
            let cv = m.new_obj("android.content.ContentValues", vec![]);
            m.vcall_void(
                cv,
                "android.content.ContentValues",
                "put",
                vec![Value::str("thumbnail_url"), Value::Local(thumb)],
            );
            m.vcall_void(
                cv,
                "android.content.ContentValues",
                "put",
                vec![Value::str("video_url"), Value::Local(video)],
            );
            let db = m.temp(Type::object("android.database.sqlite.SQLiteDatabase"));
            m.assign(
                db,
                extractocol_ir::Expr::New("android.database.sqlite.SQLiteDatabase".into()),
            );
            m.vcall_void(
                db,
                "android.database.sqlite.SQLiteDatabase",
                "update",
                vec![Value::str("talks"), Value::Local(cv), Value::str("id=?"), Value::null()],
            );
            m.ret_void();
        });

        // #7: thumbnail URI from the DB (D) — image view.
        c.method("loadThumbnail", vec![], Type::Void, |m| {
            m.recv(&api);
            let db = m.temp(Type::object("android.database.sqlite.SQLiteDatabase"));
            m.assign(
                db,
                extractocol_ir::Expr::New("android.database.sqlite.SQLiteDatabase".into()),
            );
            let cur = m.vcall(
                db,
                "android.database.sqlite.SQLiteDatabase",
                "query",
                vec![Value::str("talks"), Value::null(), Value::str("thumbnail_url")],
                Type::object("android.database.Cursor"),
            );
            let url = m.vcall(
                cur,
                "android.database.Cursor",
                "getString",
                vec![Value::int(0)],
                Type::string(),
            );
            let u = m.new_obj("java.net.URL", vec![Value::Local(url)]);
            let conn = m.vcall(
                u,
                "java.net.URL",
                "openConnection",
                vec![],
                Type::object("java.net.HttpURLConnection"),
            );
            let input = m.vcall(
                conn,
                "java.net.HttpURLConnection",
                "getInputStream",
                vec![],
                Type::object("java.io.InputStream"),
            );
            let iv = m.new_obj("android.widget.ImageView", vec![]);
            m.vcall_void(
                iv,
                "android.widget.ImageView",
                "setImageBitmap",
                vec![Value::Local(input)],
            );
            m.ret_void();
        });

        // #8: audio/video URI from the DB (D) — media player.
        c.method("playTalk", vec![], Type::Void, |m| {
            m.recv(&api);
            let db = m.temp(Type::object("android.database.sqlite.SQLiteDatabase"));
            m.assign(
                db,
                extractocol_ir::Expr::New("android.database.sqlite.SQLiteDatabase".into()),
            );
            let cur = m.vcall(
                db,
                "android.database.sqlite.SQLiteDatabase",
                "query",
                vec![Value::str("talks"), Value::null(), Value::str("video_url")],
                Type::object("android.database.Cursor"),
            );
            let url = m.vcall(
                cur,
                "android.database.Cursor",
                "getString",
                vec![Value::int(0)],
                Type::string(),
            );
            let mp = m.new_obj("android.media.MediaPlayer", vec![]);
            m.vcall_void(mp, "android.media.MediaPlayer", "setDataSource", vec![Value::Local(url)]);
            m.vcall_void(mp, "android.media.MediaPlayer", "prepare", vec![]);
            m.ret_void();
        });
    });

    // ---- ground truth and routes for the eight notable transactions ----
    let mk = |method,
              uri: &str,
              query: Vec<&str>,
              resp: RespTruth,
              trig: &str,
              args: Vec<ConcreteArg>,
              kind: TriggerKind,
              auto: bool| TxnTruth {
        method,
        variants: 1,
        uri_examples: vec![uri.to_string()],
        query_keys: query.into_iter().map(str::to_string).collect(),
        body_json_keys: vec![],
        form_keys: vec![],
        resp,
        variant_args: vec![],
        setup: None,
        trigger: Trigger::new(kind, &api, trig, args),
        visible_manual: true,
        visible_auto: auto,
        static_visible: true,
        body_requires_async: false,
    };

    // Fig. 1's android_ad.json response.
    let ad_json = r#"{ "companions": { "on_page": { "height": "250", "width": "300" },
        "preroll": { "height": "360", "width": "640" } },
        "url": "https://ads.ted.example.com/vast?talk=2406" }"#;
    let vast_xml = "<VAST version=\"2.0\"><Ad><MediaFile>https://cdn.ted.example.com/ad2406.mp4</MediaFile></Ad></VAST>";

    g.record(
        mk(
            HttpMethod::Get,
            "https://app-api.ted.com/v1/speakers.json?limit=2000&api-key=k9a7f3e2&filter=updated_at:%3E2016-01-01",
            vec!["limit", "api-key", "filter"],
            RespTruth::Json(vec!["speakers".into(), "name".into(), "description".into()]),
            "fetchSpeakers",
            vec![ConcreteArg::s("2016-01-01")],
            TriggerKind::ServerPush,
            false,
        ),
        vec![Route::json(
            HttpMethod::Get,
            "https://app-api\\.ted\\.com/v1/speakers\\.json.*",
            r#"{"speakers":[{"name":"Speaker A","description":"desc","unused_slug":"a"}],"count":1}"#,
        )],
    );
    g.record(
        mk(
            HttpMethod::Get,
            "https://graph.facebook.com/me/photos",
            vec![],
            RespTruth::Raw,
            "shareFacebook",
            vec![],
            TriggerKind::LoginFlow,
            false,
        ),
        vec![Route::ok(
            HttpMethod::Get,
            "https://graph\\.facebook\\.com/me/photos",
            Body::Text("{\"photos\":[]}".into()),
        )],
    );
    g.record(
        mk(
            HttpMethod::Get,
            "https://app-api.ted.com/v1/talks/2406/android_ad.json?api-key=k9a7f3e2",
            vec!["api-key"],
            RespTruth::Json(vec![
                "companions".into(),
                "on_page".into(),
                "height".into(),
                "width".into(),
                "url".into(),
            ]),
            "fetchAd",
            vec![ConcreteArg::s("2406")],
            TriggerKind::StandardUi,
            true,
        ),
        vec![Route::json(
            HttpMethod::Get,
            "https://app-api\\.ted\\.com/v1/talks/.*/android_ad\\.json.*",
            ad_json,
        )],
    );
    g.record(
        mk(
            HttpMethod::Get,
            "https://ads.ted.example.com/vast?talk=2406",
            vec![],
            RespTruth::Xml(vec!["VAST".into(), "Ad".into(), "MediaFile".into()]),
            "fetchAdResources",
            vec![],
            TriggerKind::StandardUi,
            true,
        ),
        vec![Route::xml(HttpMethod::Get, "https://ads\\.ted\\.example\\.com/.*", vast_xml)],
    );
    g.record(
        mk(
            HttpMethod::Get,
            "https://cdn.ted.example.com/ad2406.mp4",
            vec![],
            RespTruth::None,
            "playAd",
            vec![],
            TriggerKind::StandardUi,
            true,
        ),
        vec![Route::ok(
            HttpMethod::Get,
            "https://cdn\\.ted\\.example\\.com/.*",
            Body::Binary(4096),
        )],
    );
    g.record(
        mk(
            HttpMethod::Get,
            "https://app-api.ted.com/v1/talk_catalogs/android_v1.json?api-key=k9a7f3e2&fields=duration_in_seconds&filter=id:2406",
            vec!["api-key", "fields", "filter"],
            RespTruth::Json(vec![
                "talks".into(),
                "thumbnail_url".into(),
                "video_url".into(),
            ]),
            "fetchTalks",
            vec![ConcreteArg::s("2406")],
            TriggerKind::StandardUi,
            true,
        ),
        vec![Route::json(
            HttpMethod::Get,
            "https://app-api\\.ted\\.com/v1/talk_catalogs/.*",
            r#"{"talks":[{"thumbnail_url":"https://img.ted.example.com/t2406.jpg",
                 "video_url":"https://media.ted.example.com/t2406.mp4",
                 "duration_in_seconds":780}]}"#,
        )],
    );
    g.record(
        mk(
            HttpMethod::Get,
            "https://img.ted.example.com/t2406.jpg",
            vec![],
            RespTruth::None,
            "loadThumbnail",
            vec![],
            TriggerKind::StandardUi,
            true,
        ),
        vec![Route::ok(
            HttpMethod::Get,
            "https://img\\.ted\\.example\\.com/.*",
            Body::Binary(1024),
        )],
    );
    g.record(
        mk(
            HttpMethod::Get,
            "https://media.ted.example.com/t2406.mp4",
            vec![],
            RespTruth::None,
            "playTalk",
            vec![],
            TriggerKind::StandardUi,
            true,
        ),
        vec![Route::ok(
            HttpMethod::Get,
            "https://media\\.ted\\.example\\.com/.*",
            Body::Binary(65536),
        )],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn ted_matches_table1_row() {
        let app = build();
        assert!(validate_apk(&app.apk).is_empty());
        let c = app.truth.static_counts();
        assert_eq!(c.get, 16);
        assert_eq!(c.post, 2);
        assert_eq!(c.json, 10, "json bodies + json responses");
        assert_eq!(c.pairs, 10);
        // Auto fuzzing reaches fewer transactions.
        let auto = app.truth.counts_where(|t| t.visible_auto);
        assert_eq!(auto.get, 10);
        assert_eq!(auto.post, 1);
    }
}
