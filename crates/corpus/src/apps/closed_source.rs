//! The 20 closed-source apps (Table 1's lower half, gray rows): top-chart
//! Google Play apps with 1M+ downloads.
//!
//! TED and KAYAK are handcrafted case studies; the other eighteen are
//! generated from their published rows by an allocator that reproduces
//! the *shape* of each cell triple (Extractocol / manual fuzzing /
//! automatic fuzzing):
//!
//! * statically-visible transactions match the Extractocol column;
//! * where manual or automatic fuzzing observed **more** than Extractocol
//!   (LinkedIn, MusicDownloader, Tumblr, …), the surplus is raw-socket
//!   ad/analytics traffic the static analysis cannot model ("most of the
//!   missed messages stem from [ad and analytics] libraries", §5.1);
//! * where fuzzing observed **fewer**, the deficit is timers, server
//!   pushes, login walls, custom UI (defeats PUMA), and side-effectful
//!   commerce actions ("payment, delivery, selling and purchasing
//!   products", §5.1).

use crate::gen::{AppGen, BodyKind, RespKind, Stack, TxnSpec};
use crate::ground_truth::{AppSpec, PaperRow, RowCounts, TriggerKind};
use extractocol_http::HttpMethod;

use super::{kayak, ted};

/// One app's allocation input: name, package, host, stacks to rotate
/// through, and the published row.
struct ClosedSpec {
    name: &'static str,
    package: &'static str,
    host: &'static str,
    stacks: &'static [Stack],
    paper: PaperRow,
}

#[allow(clippy::too_many_arguments)]
const fn rc(
    get: usize,
    post: usize,
    put: usize,
    delete: usize,
    query: usize,
    json: usize,
    pairs: usize,
) -> RowCounts {
    RowCounts { get, post, put, delete, query, json, xml: 0, pairs }
}

/// All 20 closed-source apps, in Table 1 order.
pub fn all() -> Vec<AppSpec> {
    let mut v: Vec<AppSpec> = specs().into_iter().map(generate).collect();
    // Insert the handcrafted case studies at their Table 1 positions:
    // KAYAK is 8th, TED 16th.
    v.insert(7, kayak::build());
    v.insert(15, ted::build());
    v
}

fn specs() -> Vec<ClosedSpec> {
    use Stack::*;
    vec![
        ClosedSpec {
            name: "5miles",
            package: "com.thirdrock.fivemiles",
            host: "https://api.5milesapp.com",
            stacks: &[OkHttp, Volley],
            paper: PaperRow {
                extractocol: rc(24, 51, 0, 0, 16, 16, 0), // pairs set below
                manual: rc(25, 12, 0, 0, 6, 8, 0),
                third: rc(0, 0, 0, 0, 0, 0, 0),
            },
        },
        ClosedSpec {
            name: "AC App for Android",
            package: "com.acapp.android",
            host: "http://api.acapp.example.com",
            stacks: &[Apache, Volley],
            paper: PaperRow {
                extractocol: rc(9, 15, 0, 0, 15, 23, 0),
                manual: rc(9, 15, 0, 0, 15, 23, 0),
                third: rc(7, 5, 0, 0, 15, 23, 0),
            },
        },
        ClosedSpec {
            name: "AOL: Mail, News & Video",
            package: "com.aol.mobile.aolapp",
            host: "http://api.aol.com",
            stacks: &[Apache, UrlConn],
            paper: PaperRow {
                extractocol: rc(9, 0, 0, 0, 0, 9, 0),
                manual: rc(9, 0, 0, 0, 0, 9, 0),
                third: rc(6, 0, 0, 0, 0, 9, 0),
            },
        },
        ClosedSpec {
            name: "AccuWeather",
            package: "com.accuweather.android",
            host: "http://api.accuweather.com",
            stacks: &[Volley, UrlConn],
            paper: PaperRow {
                extractocol: rc(15, 3, 0, 0, 3, 16, 0),
                manual: rc(15, 3, 0, 0, 3, 16, 0),
                third: rc(0, 0, 0, 0, 3, 16, 0),
            },
        },
        ClosedSpec {
            name: "Buzzfeed",
            package: "com.buzzfeed.android",
            host: "https://api.buzzfeed.com",
            stacks: &[OkHttp, Retrofit],
            paper: PaperRow {
                extractocol: rc(16, 12, 0, 0, 28, 6, 0),
                manual: rc(5, 5, 0, 0, 5, 5, 0),
                third: rc(5, 1, 0, 0, 5, 5, 0),
            },
        },
        ClosedSpec {
            name: "Flipboard",
            package: "flipboard.app",
            host: "https://fbprod.flipboard.com",
            stacks: &[OkHttp, Bee],
            paper: PaperRow {
                extractocol: rc(23, 41, 0, 0, 28, 8, 0),
                manual: rc(24, 13, 0, 0, 13, 7, 0),
                third: rc(0, 0, 0, 0, 0, 0, 0),
            },
        },
        ClosedSpec {
            name: "GEEK",
            package: "com.contextlogic.geek",
            host: "https://api.geek.com",
            stacks: &[Volley, OkHttp],
            paper: PaperRow {
                extractocol: rc(0, 97, 0, 0, 41, 11, 0),
                manual: rc(1, 48, 0, 0, 48, 27, 0),
                third: rc(0, 18, 0, 0, 18, 18, 0),
            },
        },
        // KAYAK inserted at index 7.
        ClosedSpec {
            name: "Letgo",
            package: "com.abtnprojects.ambatana",
            host: "https://api.letgo.com",
            stacks: &[Retrofit, OkHttp],
            paper: PaperRow {
                extractocol: rc(38, 10, 2, 3, 20, 18, 0),
                manual: rc(32, 14, 2, 0, 14, 13, 0),
                third: rc(10, 2, 0, 0, 3, 6, 0),
            },
        },
        ClosedSpec {
            name: "LinkedIn",
            package: "com.linkedin.android",
            host: "https://api.linkedin.com",
            stacks: &[Volley, OkHttp],
            paper: PaperRow {
                extractocol: rc(38, 49, 0, 0, 46, 47, 0),
                manual: rc(42, 17, 3, 0, 17, 21, 0),
                third: rc(16, 8, 0, 0, 14, 14, 0),
            },
        },
        ClosedSpec {
            name: "Lucktastic",
            package: "com.lucktastic.scratch",
            host: "https://api.lucktastic.com",
            stacks: &[Apache, Loopj],
            paper: PaperRow {
                extractocol: rc(16, 9, 2, 4, 5, 19, 0),
                manual: rc(2, 15, 0, 0, 15, 14, 0),
                third: rc(0, 0, 0, 0, 0, 0, 0),
            },
        },
        ClosedSpec {
            name: "MusicDownloader",
            package: "com.musicdownloader.android",
            host: "http://api.musicdl.example.com",
            stacks: &[UrlConn, Apache],
            paper: PaperRow {
                extractocol: rc(3, 0, 0, 0, 0, 4, 0),
                manual: rc(10, 1, 0, 0, 1, 7, 0),
                third: rc(0, 0, 0, 0, 0, 0, 0),
            },
        },
        ClosedSpec {
            name: "Offerup",
            package: "com.offerup",
            host: "https://api.offerup.com",
            stacks: &[Retrofit, OkHttp],
            paper: PaperRow {
                extractocol: rc(33, 23, 8, 3, 12, 25, 0),
                manual: rc(20, 21, 1, 0, 21, 16, 0),
                third: rc(0, 0, 0, 0, 0, 0, 0),
            },
        },
        ClosedSpec {
            name: "Pandora Radio",
            package: "com.pandora.android",
            host: "http://api.pandora.com",
            stacks: &[Apache, UrlConn],
            paper: PaperRow {
                extractocol: rc(7, 53, 0, 0, 53, 26, 0),
                manual: rc(0, 20, 0, 0, 20, 16, 0),
                third: rc(0, 2, 0, 0, 2, 2, 0),
            },
        },
        ClosedSpec {
            name: "Pinterest",
            package: "com.pinterest",
            host: "https://api.pinterest.com",
            stacks: &[OkHttp, Volley],
            paper: PaperRow {
                extractocol: rc(60, 36, 32, 20, 88, 236, 0),
                manual: rc(62, 19, 8, 10, 19, 58, 0),
                third: rc(26, 16, 3, 2, 36, 46, 0),
            },
        },
        // TED inserted at index 15.
        ClosedSpec {
            name: "Tophatter",
            package: "com.tophatter",
            host: "https://api.tophatter.com",
            stacks: &[Retrofit, Volley],
            paper: PaperRow {
                extractocol: rc(33, 32, 1, 4, 18, 32, 0),
                manual: rc(24, 14, 0, 1, 14, 11, 0),
                third: rc(0, 0, 0, 0, 0, 0, 0),
            },
        },
        ClosedSpec {
            name: "Tumblr",
            package: "com.tumblr",
            host: "https://api.tumblr.com",
            stacks: &[OkHttp, Retrofit],
            paper: PaperRow {
                extractocol: rc(12, 8, 0, 1, 5, 14, 0),
                manual: rc(13, 5, 0, 1, 5, 2, 0),
                third: rc(15, 5, 0, 0, 15, 14, 0),
            },
        },
        ClosedSpec {
            name: "WatchESPN",
            package: "com.espn.watchespn",
            host: "http://api.espn.com",
            stacks: &[Apache, UrlConn],
            paper: PaperRow {
                extractocol: rc(33, 0, 0, 0, 0, 32, 0),
                manual: rc(33, 0, 0, 0, 0, 32, 0),
                third: rc(17, 0, 0, 0, 0, 32, 0),
            },
        },
        ClosedSpec {
            name: "Wish Local",
            package: "com.contextlogic.wishlocal",
            host: "https://api.wishlocal.com",
            stacks: &[Volley, OkHttp],
            paper: PaperRow {
                extractocol: rc(0, 106, 0, 0, 15, 28, 0),
                manual: rc(1, 48, 0, 0, 15, 13, 0),
                third: rc(0, 21, 0, 0, 21, 21, 0),
            },
        },
    ]
}

/// Published pair counts (Table 1's last column), by app name.
fn pair_target(name: &str) -> usize {
    match name {
        "5miles" => 71,
        "AC App for Android" => 23,
        "AOL: Mail, News & Video" => 9,
        "AccuWeather" => 16,
        "Buzzfeed" => 27,
        "Flipboard" => 63,
        "GEEK" => 97,
        "Letgo" => 40,
        "LinkedIn" => 85,
        "Lucktastic" => 31,
        "MusicDownloader" => 2,
        "Offerup" => 63,
        "Pandora Radio" => 60,
        "Pinterest" => 148,
        "Tophatter" => 62,
        "Tumblr" => 20,
        "WatchESPN" => 32,
        "Wish Local" => 106,
        _ => 0,
    }
}

/// Generates one closed-source app from its published row.
fn generate(spec: ClosedSpec) -> AppSpec {
    let mut paper = spec.paper;
    paper.extractocol.pairs = pair_target(spec.name);
    let e = paper.extractocol;
    let m = paper.manual;
    let a = paper.third;

    let mut g = AppGen::new(spec.name, spec.package, spec.host).protocol("HTTPS").paper_row(paper);

    let pairs = e.pairs.min(e.total());
    // Response JSON count vs request-body JSON count (see DESIGN.md):
    // overflow beyond the pair budget becomes request bodies.
    let resp_json = e.json.min(pairs);
    let body_json = e.json - resp_json;
    // Query-string signatures: form bodies on POST-ish txns first, then
    // URI query strings on GETs.
    let postish = e.post + e.put + e.delete;
    let form_q = e.query.min(postish.saturating_sub(body_json));
    let uri_q = (e.query - form_q).min(e.get);
    // Remaining query budget rides as URI query strings on POST-ish
    // transactions (JSON body + query params is a common REST shape).
    let post_q = e.query - form_q - uri_q;

    let methods = [
        (HttpMethod::Get, e.get, m.get, a.get),
        (HttpMethod::Post, e.post, m.post, a.post),
        (HttpMethod::Put, e.put, m.put, a.put),
        (HttpMethod::Delete, e.delete, m.delete, a.delete),
    ];

    // Global distribution counters.
    let mut budget_pairs = pairs;
    let mut budget_resp_json = resp_json;
    let mut budget_body_json = body_json;
    let mut budget_form = form_q;
    let mut budget_uriq = uri_q;
    let mut budget_postq = post_q;
    let mut idx = 0usize;

    for (method, e_cnt, m_cnt, a_cnt) in methods {
        let total = e_cnt.max(m_cnt).max(a_cnt);
        let _sockets = total - e_cnt;
        let static_manual = m_cnt.min(e_cnt);
        let socket_manual = m_cnt - static_manual;
        let static_auto = a_cnt.min(e_cnt);
        let socket_auto = a_cnt - static_auto;

        for i in 0..total {
            let is_socket = i >= e_cnt;
            let si = i.saturating_sub(e_cnt); // socket index
            let (visible_manual, visible_auto) = if is_socket {
                (si < socket_manual, si < socket_auto)
            } else {
                (i < static_manual, i < static_auto)
            };
            let verb = method.as_str().to_lowercase();
            let mut t = TxnSpec::get(
                if is_socket { Stack::Socket } else { spec.stacks[idx % spec.stacks.len()] },
                &format!("/v2/{verb}/endpoint{idx}"),
            )
            .method(method);
            if !is_socket {
                // Response allocation.
                if budget_pairs > 0 {
                    if budget_resp_json > 0 {
                        t = t.resp(RespKind::Json(vec![
                            format!("field_{idx}_a"),
                            format!("field_{idx}_b"),
                            "status".to_string(),
                        ]));
                        budget_resp_json -= 1;
                    } else {
                        t = t.resp(RespKind::Raw);
                    }
                    budget_pairs -= 1;
                }
                // Body/query allocation. JSON bodies go to POST-ish
                // transactions first but overflow onto GETs (several real
                // APIs tunnel JSON documents in GET bodies).
                if (method != HttpMethod::Get || postish == 0) && budget_body_json > 0 {
                    t = t.body(BodyKind::Json(vec![format!("param_{idx}"), "client".to_string()]));
                    budget_body_json -= 1;
                    if method != HttpMethod::Get && budget_postq > 0 {
                        t = t.q_dyn("access_token");
                        budget_postq -= 1;
                    }
                } else if method != HttpMethod::Get && budget_form > 0 {
                    t = t.body(BodyKind::Form(vec![
                        (format!("arg{idx}"), None),
                        ("v".to_string(), Some("8".to_string())),
                    ]));
                    budget_form -= 1;
                } else if method == HttpMethod::Get && budget_uriq > 0 {
                    t = t.q_dyn("page").q_const("client", "android");
                    budget_uriq -= 1;
                }
            }
            // Trigger kinds explain the visibility (§5.1).
            let kind = match (visible_manual, visible_auto) {
                (true, true) => TriggerKind::StandardUi,
                (true, false) => {
                    if idx.is_multiple_of(2) {
                        TriggerKind::CustomUi
                    } else {
                        TriggerKind::LoginFlow
                    }
                }
                (false, false) => match idx % 3 {
                    0 => TriggerKind::Timer,
                    1 => TriggerKind::ServerPush,
                    _ => TriggerKind::SideEffect,
                },
                (false, true) => TriggerKind::StandardUi, // auto-only (Tumblr)
            };
            g.txn(t.trigger(kind, visible_manual, visible_auto));
            idx += 1;
        }
    }
    // Closed-source top-chart apps are large; most of their code is not
    // protocol-related (this also reproduces the §5.1 analysis-time gap
    // between small open-source apps and large closed-source ones).
    g.ballast(120 + 6 * idx);
    g.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn all_closed_source_apps_validate_and_match_method_columns() {
        let apps = all();
        assert_eq!(apps.len(), 20);
        for app in &apps {
            let errs = validate_apk(&app.apk);
            assert!(errs.is_empty(), "{}: {errs:?}", app.truth.name);
            assert!(!app.truth.open_source);
            if app.truth.name == "KAYAK" {
                // The paper's Table 1 (39 GET / 7 POST) and Table 5
                // (10 POST APIs across categories) disagree; our model
                // follows Table 5 and kayak.rs asserts it.
                continue;
            }
            let c = app.truth.static_counts();
            let e = app.truth.paper_row.extractocol;
            assert_eq!(c.get, e.get, "{} GET", app.truth.name);
            assert_eq!(c.post, e.post, "{} POST", app.truth.name);
            assert_eq!(c.put, e.put, "{} PUT", app.truth.name);
            assert_eq!(c.delete, e.delete, "{} DELETE", app.truth.name);
        }
    }

    #[test]
    fn pairs_and_json_track_published_rows() {
        for app in all() {
            let name = &app.truth.name;
            if name == "KAYAK" || name == "TED" {
                continue; // handcrafted, asserted in their own modules
            }
            let c = app.truth.static_counts();
            let e = app.truth.paper_row.extractocol;
            assert_eq!(c.pairs, e.pairs, "{name} pairs");
            assert_eq!(c.json, e.json, "{name} json");
        }
    }

    #[test]
    fn fuzzing_visibility_reproduces_coverage_gaps() {
        let apps = all();
        // 5miles: automatic fuzzing sees nothing (login wall).
        let fivemiles = apps.iter().find(|a| a.truth.name == "5miles").unwrap();
        let auto = fivemiles.truth.counts_where(|t| t.visible_auto);
        assert_eq!(auto.total(), 0);
        // MusicDownloader: manual fuzzing sees MORE than static analysis
        // (raw-socket ad traffic).
        let md = apps.iter().find(|a| a.truth.name == "MusicDownloader").unwrap();
        let manual = md.truth.counts_where(|t| t.visible_manual);
        let stat = md.truth.static_counts();
        assert!(manual.get > stat.get, "manual {} vs static {}", manual.get, stat.get);
        assert!(md.truth.txns.iter().any(|t| !t.static_visible));
    }
}
