//! The 34 corpus apps: handcrafted case-study models plus generated
//! Table 1 rows.

pub mod closed_source;
pub mod diode;
pub mod kayak;
pub mod open_source;
pub mod radio_reddit;
pub mod ted;
pub mod weather;
