//! The 14 open-source apps (F-Droid; Table 1's upper half).
//!
//! Diode, radio reddit, and Weather Notification are handcrafted case
//! studies; the remaining eleven are generated to their Table 1 rows. For
//! open-source apps the paper's three columns agree (Extractocol = manual
//! fuzzing = source-code ground truth), except the Reddinator (RRD)
//! asynchronous-chain case: "In RRD, a JSON key-value pair string is
//! generated from a user input and stored in a heap object. At a later
//! time, another event triggers an HTTP request … Extractocol cannot
//! identify implicit dependencies [with the heuristic off]" (§5.1 — the
//! one missed request keyword of Fig. 7). That transaction is handcrafted
//! here.

use crate::gen::{AppGen, BodyKind, RespKind, Stack, TxnSpec};
use crate::ground_truth::{
    AppSpec, PaperRow, RespTruth, RowCounts, Trigger, TriggerKind, TxnTruth,
};
use crate::server::Route;
use extractocol_http::HttpMethod;
use extractocol_ir::{Type, Value};

use super::{diode, radio_reddit, weather};

fn row(get: usize, post: usize, query: usize, json: usize, xml: usize, pairs: usize) -> RowCounts {
    RowCounts { get, post, put: 0, delete: 0, query, json, xml, pairs }
}

fn same(r: RowCounts) -> PaperRow {
    PaperRow { extractocol: r, manual: r, third: r }
}

/// All 14 open-source apps, in Table 1 order.
pub fn all() -> Vec<AppSpec> {
    vec![
        adblock_plus(),
        anarxiv(),
        blippex(),
        diaspora(),
        diode::build(),
        ifixit(),
        lightning(),
        qbittorrent(),
        radio_reddit::build(),
        reddinator(),
        twister(),
        tzm(),
        wallabag(),
        weather::build(),
    ]
}

fn adblock_plus() -> AppSpec {
    let mut g = AppGen::new("Adblock Plus", "org.adblockplus.android", "https://adblockplus.org")
        .open_source()
        .protocol("HTTPS")
        .paper_row(same(row(2, 1, 1, 0, 1, 1)));
    // Filter-list download: the XML pair.
    g.txn(TxnSpec::get(Stack::UrlConn, "/filters/easylist.xml").resp(RespKind::Xml(vec![
        "filterlist".into(),
        "rule".into(),
        "version".into(),
    ])));
    // Update check (status only).
    g.txn(TxnSpec::get(Stack::UrlConn, "/update/check").trigger(TriggerKind::Timer, true, true));
    // Subscription report: the form POST.
    g.txn(TxnSpec::get(Stack::Apache, "/report").method(HttpMethod::Post).body(BodyKind::Form(
        vec![("subscription".into(), None), ("version".into(), Some("1.3".into()))],
    )));
    g.ballast(60);
    g.finish()
}

fn anarxiv() -> AppSpec {
    let mut g = AppGen::new("AnarXiv", "org.anarxiv", "http://export.arxiv.org")
        .open_source()
        .protocol("HTTP")
        .paper_row(same(row(2, 0, 0, 0, 2, 2)));
    g.txn(TxnSpec::get(Stack::UrlConn, "/api/query").resp(RespKind::Xml(vec![
        "feed".into(),
        "entry".into(),
        "title".into(),
        "summary".into(),
    ])));
    g.txn(TxnSpec::get(Stack::UrlConn, "/rss/cs.NI").resp(RespKind::Xml(vec![
        "rss".into(),
        "channel".into(),
        "item".into(),
    ])));
    g.ballast(60);
    g.finish()
}

fn blippex() -> AppSpec {
    let mut g = AppGen::new("blippex", "com.blippex.app", "https://api.blippex.org")
        .open_source()
        .protocol("HTTPS")
        .paper_row(same(row(1, 0, 0, 1, 0, 1)));
    g.txn(TxnSpec::get(Stack::OkHttp, "/search").resp(RespKind::Json(vec![
        "results".into(),
        "url".into(),
        "dwell".into(),
    ])));
    g.ballast(60);
    g.finish()
}

fn diaspora() -> AppSpec {
    let mut g =
        AppGen::new("Diaspora WebClient", "de.baumann.diaspora", "http://pod.diaspora.example")
            .open_source()
            .protocol("HTTP")
            .paper_row(same(row(1, 0, 0, 1, 0, 1)));
    g.txn(TxnSpec::get(Stack::Apache, "/stream").resp(RespKind::Json(vec![
        "posts".into(),
        "author".into(),
        "text".into(),
    ])));
    g.ballast(60);
    g.finish()
}

fn ifixit() -> AppSpec {
    let mut g = AppGen::new("iFixIt", "com.dozuki.ifixit", "http://www.ifixit.com")
        .open_source()
        .protocol("HTTP")
        .paper_row(same(row(15, 7, 3, 14, 0, 14)));
    // 10 JSON GET endpoints.
    for (i, path) in [
        "/api/2.0/guides",
        "/api/2.0/categories",
        "/api/2.0/wikis",
        "/api/2.0/teams",
        "/api/2.0/users/self",
        "/api/2.0/search",
        "/api/2.0/tags",
        "/api/2.0/suggest",
        "/api/2.0/stories",
        "/api/2.0/devices",
    ]
    .into_iter()
    .enumerate()
    {
        let stack = if i % 2 == 0 { Stack::Apache } else { Stack::Volley };
        g.txn(TxnSpec::get(stack, path).resp(RespKind::Json(vec![
            format!("guideid{i}"),
            "title".to_string(),
            "summary".to_string(),
        ])));
    }
    // 5 image/raw GETs (no processed bodies).
    for path in ["/igi/a.jpg", "/igi/b.jpg", "/igi/c.jpg", "/igo/d.jpg", "/igo/e.jpg"] {
        g.txn(TxnSpec::get(Stack::UrlConn, path));
    }
    // 4 JSON-response POSTs (API writes).
    for path in
        ["/api/2.0/guides/like", "/api/2.0/comments", "/api/2.0/flags", "/api/2.0/favorites"]
    {
        g.txn(
            TxnSpec::get(Stack::Apache, path)
                .method(HttpMethod::Post)
                .resp(RespKind::Json(vec!["ok".into(), "id".into()])),
        );
    }
    // 3 form POSTs (the query-string signatures).
    for path in ["/api/2.0/login", "/api/2.0/register", "/api/2.0/password"] {
        g.txn(
            TxnSpec::get(Stack::Apache, path)
                .method(HttpMethod::Post)
                .body(BodyKind::Form(vec![("email".into(), None), ("password".into(), None)]))
                .trigger(TriggerKind::LoginFlow, true, true),
        );
    }
    g.ballast(60);
    g.finish()
}

fn lightning() -> AppSpec {
    let mut g = AppGen::new("Lightning", "acr.browser.lightning", "http://lightning.example.org")
        .open_source()
        .protocol("HTTP(S)")
        .paper_row(same(row(2, 0, 0, 0, 1, 1)));
    g.txn(
        TxnSpec::get(Stack::UrlConn, "/bookmarks/sync.xml")
            .resp(RespKind::Xml(vec!["bookmarks".into(), "bookmark".into()])),
    );
    g.txn(TxnSpec::get(Stack::UrlConn, "/start/homepage"));
    g.ballast(60);
    g.finish()
}

fn qbittorrent() -> AppSpec {
    let mut g =
        AppGen::new("qBittorrent", "com.qbittorrent.client", "http://qbt.example.local:8080")
            .open_source()
            .protocol("HTTP")
            .paper_row(same(row(3, 13, 13, 3, 0, 3)));
    for path in ["/query/torrents", "/query/transferInfo", "/query/preferences"] {
        g.txn(TxnSpec::get(Stack::Apache, path).resp(RespKind::Json(vec![
            "hash".into(),
            "name".into(),
            "progress".into(),
        ])));
    }
    for cmd in [
        "/command/download",
        "/command/delete",
        "/command/pause",
        "/command/resume",
        "/command/pauseAll",
        "/command/resumeAll",
        "/command/increasePrio",
        "/command/decreasePrio",
        "/command/topPrio",
        "/command/bottomPrio",
        "/command/setFilePrio",
        "/command/recheck",
        "/command/setForceStart",
    ] {
        g.txn(
            TxnSpec::get(Stack::Apache, cmd)
                .method(HttpMethod::Post)
                .body(BodyKind::Form(vec![("hash".into(), None)])),
        );
    }
    g.ballast(60);
    g.finish()
}

fn reddinator() -> AppSpec {
    let mut g = AppGen::new("Reddinator", "au.com.wallaceit.reddinator", "https://www.reddit.com")
        .open_source()
        .protocol("HTTP(S)")
        .paper_row(same(row(3, 3, 0, 6, 0, 6)));
    // 2 JSON GETs and one raw (the flair POST below carries the app's
    // remaining two JSON signatures: body + response).
    for path in ["/r/all/hot.json", "/subreddits/mine.json"] {
        g.txn(TxnSpec::get(Stack::Apache, path).resp(RespKind::Json(vec![
            "kind".into(),
            "data".into(),
            "children".into(),
        ])));
    }
    g.txn(TxnSpec::get(Stack::Apache, "/message/unread.json").resp(RespKind::Raw));
    // 2 plain JSON-response POSTs.
    for path in ["/api/comment", "/api/subscribe"] {
        g.txn(
            TxnSpec::get(Stack::Apache, path)
                .method(HttpMethod::Post)
                .resp(RespKind::Json(vec!["ok".into()])),
        );
    }
    // The §5.1 asynchronous-chain POST: the JSON body is built from user
    // input in one event handler, stored in a heap field, and sent by a
    // later event. With the async heuristic off (the paper's open-source
    // configuration) the body keyword `flair_text` is missed.
    let api = "au.com.wallaceit.reddinator.FlairApi";
    {
        let b = g.apk_builder();
        b.class(api, |c| {
            c.extends("java.lang.Object");
            let f_body = c.field("mPendingBody", Type::string());
            c.method("onFlairPicked", vec![], Type::Void, |m| {
                let this = m.recv(api);
                let et = m.temp(Type::object("android.widget.EditText"));
                m.assign(et, extractocol_ir::Expr::New("android.widget.EditText".into()));
                let text =
                    m.vcall(et, "android.widget.EditText", "getText", vec![], Type::string());
                let j = m.new_obj("org.json.JSONObject", vec![]);
                m.vcall_void(
                    j,
                    "org.json.JSONObject",
                    "put",
                    vec![Value::str("flair_text"), Value::Local(text)],
                );
                let body = m.vcall(j, "org.json.JSONObject", "toString", vec![], Type::string());
                m.put_field(this, &f_body, body);
                m.ret_void();
            });
            c.method("submitFlair", vec![], Type::Void, |m| {
                let this = m.recv(api);
                let body = m.temp(Type::string());
                m.get_field(body, this, &f_body);
                let ent =
                    m.new_obj("org.apache.http.entity.StringEntity", vec![Value::Local(body)]);
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpPost",
                    vec![Value::str("https://www.reddit.com/api/flair")],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setEntity",
                    vec![Value::Local(ent)],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let rent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let text = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(rent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(text)]);
                let ok = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("ok")],
                    Type::string(),
                );
                let _ = ok;
                m.ret_void();
            });
        });
    }
    g.record(
        TxnTruth {
            method: HttpMethod::Post,
            variants: 1,
            uri_examples: vec!["https://www.reddit.com/api/flair".into()],
            query_keys: vec![],
            body_json_keys: vec!["flair_text".into()],
            form_keys: vec![],
            resp: RespTruth::Json(vec!["ok".into()]),
            trigger: Trigger::new(TriggerKind::StandardUi, api, "submitFlair", vec![]),
            variant_args: vec![],
            setup: Some(Trigger::new(TriggerKind::StandardUi, api, "onFlairPicked", vec![])),
            visible_manual: true,
            visible_auto: true,
            static_visible: true,
            body_requires_async: true,
        },
        vec![Route::json(
            HttpMethod::Post,
            "https://www\\.reddit\\.com/api/flair",
            r#"{"ok":"true"}"#,
        )],
    );
    g.ballast(60);
    g.finish()
}

fn twister() -> AppSpec {
    let mut g = AppGen::new("Twister", "com.twister.android", "http://127.0.0.1:28332")
        .open_source()
        .protocol("HTTP")
        .paper_row(same(row(0, 11, 11, 8, 0, 8)));
    // 8 RPC posts with JSON responses, 3 fire-and-forget.
    for (i, cmd) in [
        "/rpc/getposts",
        "/rpc/follow",
        "/rpc/getfollowing",
        "/rpc/dhtget",
        "/rpc/dhtput",
        "/rpc/newpostmsg",
        "/rpc/getlasthave",
        "/rpc/listusernames",
    ]
    .into_iter()
    .enumerate()
    {
        g.txn(
            TxnSpec::get(Stack::Apache, cmd)
                .method(HttpMethod::Post)
                .body(BodyKind::Form(vec![("params".into(), None)]))
                .resp(RespKind::Json(vec![format!("result{i}"), "error".to_string()])),
        );
    }
    for cmd in ["/rpc/stop", "/rpc/addnode", "/rpc/ping"] {
        g.txn(
            TxnSpec::get(Stack::Apache, cmd)
                .method(HttpMethod::Post)
                .body(BodyKind::Form(vec![("params".into(), None)])),
        );
    }
    g.ballast(60);
    g.finish()
}

fn tzm() -> AppSpec {
    let mut g = AppGen::new("TZM", "org.tzm.android", "https://www.thezeitgeistmovement.com")
        .open_source()
        .protocol("HTTPS")
        .paper_row(same(row(2, 0, 0, 1, 0, 1)));
    g.txn(
        TxnSpec::get(Stack::Retrofit, "/api/news")
            .resp(RespKind::Json(vec!["articles".into(), "headline".into()])),
    );
    g.txn(TxnSpec::get(Stack::Retrofit, "/api/ping"));
    g.ballast(60);
    g.finish()
}

fn wallabag() -> AppSpec {
    let mut g =
        AppGen::new("Wallabag", "fr.gaulupeau.apps.InThePoche", "http://wallabag.example.org")
            .open_source()
            .protocol("HTTP")
            .paper_row(same(row(1, 0, 0, 0, 1, 1)));
    g.txn(TxnSpec::get(Stack::KSawicki, "/feed/unread.xml").resp(RespKind::Xml(vec![
        "rss".into(),
        "channel".into(),
        "item".into(),
        "link".into(),
    ])));
    g.ballast(60);
    g.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn all_open_source_apps_validate_and_match_rows() {
        let apps = all();
        assert_eq!(apps.len(), 14);
        for app in &apps {
            let errs = validate_apk(&app.apk);
            assert!(errs.is_empty(), "{}: {errs:?}", app.truth.name);
            assert!(app.truth.open_source);
            let c = app.truth.static_counts();
            let e = app.truth.paper_row.extractocol;
            assert_eq!(c.get, e.get, "{} GET", app.truth.name);
            assert_eq!(c.post, e.post, "{} POST", app.truth.name);
            assert_eq!(c.json, e.json, "{} JSON", app.truth.name);
            assert_eq!(c.xml, e.xml, "{} XML", app.truth.name);
            assert_eq!(c.pairs, e.pairs, "{} pairs", app.truth.name);
        }
    }
}
