//! KAYAK — the §5.3 reverse-engineering case study (Tables 5–6).
//!
//! The app talks to Kayak's private REST API across eight URI-prefix
//! categories (Table 5). Three flight APIs were previously known from
//! manual mitmproxy work; Extractocol recovers them plus 14× more, the
//! app-specific `User-Agent: kayakandroidphone/8.1` header (which the
//! server uses for access control), and enough signature detail to write
//! a working replay client (§5.3's 73-line Python script — reproduced by
//! `extractocol-dynamic::replay`).
//!
//! Table 6 signatures reproduced exactly:
//! * `/k/authajax` — `action=registerandroid&uuid=.*&hash=.*&model=.*&platform=android&os=.*&locale=.*&tz=.*`
//! * `/api/search/V8/flight/start` — `cabin=.*&travelers=.*&origin=.*&…&_sid_=.*`
//! * `/api/search/V8/flight/poll` — `searchid=.*&nc=.*&c=.*&s=.*&d=up&currency=.*&includeopaques=true&includeSplit=false`

use crate::gen::{AppGen, BodyKind, RespKind, Stack, TxnSpec};
use crate::ground_truth::{AppSpec, PaperRow, RowCounts, TriggerKind};
use extractocol_http::HttpMethod;

const PKG: &str = "com.kayak.android";
const BASE: &str = "https://www.kayak.com";

/// The app-specific header the server gates on (§5.3).
pub const USER_AGENT: &str = "kayakandroidphone/8.1";

/// Table 5's categories: `(name, method, prefix, #APIs, example sub-URIs)`.
pub const CATEGORIES: &[(&str, &str, &str, usize)] = &[
    ("Travel Planner", "GET", "/trips/v2", 11),
    ("Authentication", "POST", "/k/authajax", 4),
    ("Facebook Auth", "POST", "/k/run/fbauth", 2),
    ("Flight", "GET", "/api/search/V8/flight", 6),
    ("Hotel", "GET", "/api/search/V8/hotel", 2),
    ("Car", "GET", "/api/search/V8/car", 1),
    ("Mobile Specific", "GET", "/h/mobileapis", 12),
    ("Advertising", "GET", "/s/mobileads", 1),
    ("Etc.", "POST", "/k", 4),
];

fn row(get: usize, post: usize, query: usize, json: usize, pairs: usize) -> RowCounts {
    RowCounts { get, post, put: 0, delete: 0, query, json, xml: 0, pairs }
}

/// Builds the KAYAK corpus app.
pub fn build() -> AppSpec {
    let mut g = AppGen::new("KAYAK", PKG, BASE).protocol("HTTPS").paper_row(PaperRow {
        extractocol: row(39, 7, 7, 6, 6),
        manual: row(39, 7, 7, 6, 6),
        third: row(15, 5, 7, 6, 6),
    });

    // All Kayak requests carry the gated User-Agent; the generator's
    // stacks don't set headers, so Kayak transactions are emitted through
    // a small handcrafted wrapper stack below — except we can express the
    // header through okhttp's builder, which the generator does support.
    // For fidelity (and the Table 6 signatures), the three flight APIs and
    // authajax are handcrafted; the rest use templates.

    // ---- Table 6 #1: /k/authajax (Authentication category, 1 of 4) ----
    g.txn(kayak_spec(
        TxnSpec::get(Stack::OkHttp, "/k/authajax")
            .method(HttpMethod::Post)
            .q_const("action", "registerandroid")
            .q_dyn("uuid")
            .q_dyn("hash")
            .q_dyn("model")
            .q_const("platform", "android")
            .q_dyn("os")
            .q_dyn("locale")
            .q_dyn("tz")
            .resp(RespKind::Json(vec!["sid".into(), "token".into()])),
        true,
    ));
    // Remaining Authentication APIs.
    for sub in ["/login", "/logout", "/register"] {
        g.txn(kayak_spec(
            TxnSpec::get(Stack::OkHttp, &format!("/k/authajax{sub}"))
                .method(HttpMethod::Post)
                .body(BodyKind::Form(vec![("email".into(), None), ("password".into(), None)])),
            false,
        ));
    }

    // ---- Table 6 #2–3: flight start/poll (+4 more flight APIs) ----
    g.txn(kayak_spec(
        TxnSpec::get(Stack::OkHttp, "/api/search/V8/flight/start")
            .q_dyn("cabin")
            .q_dyn("travelers")
            .q_dyn("origin")
            .q_dyn("nearbyO")
            .q_dyn("destination")
            .q_dyn("nearbyD")
            .q_dyn("depart_date")
            .q_dyn("depart_time")
            .q_dyn("depart_date_flex")
            .q_dyn("_sid_")
            .resp(RespKind::Json(vec!["searchid".into()])),
        true,
    ));
    g.txn(kayak_spec(
        TxnSpec::get(Stack::OkHttp, "/api/search/V8/flight/poll")
            .q_dyn("searchid")
            .q_dyn("nc")
            .q_dyn("c")
            .q_dyn("s")
            .q_const("d", "up")
            .q_dyn("currency")
            .q_const("includeopaques", "true")
            .q_const("includeSplit", "false")
            .resp(RespKind::Json(vec!["tripset".into(), "price".into(), "airline".into()])),
        true,
    ));
    for sub in ["/flight/stop", "/flight/detail", "/flight/book", "/flight/filters"] {
        g.txn(kayak_spec(
            TxnSpec::get(Stack::OkHttp, &format!("/api/search/V8{sub}")).q_dyn("searchid"),
            false,
        ));
    }

    // ---- Hotel / Car (JSON responses per Table 5) ----
    g.txn(kayak_spec(
        TxnSpec::get(Stack::OkHttp, "/api/search/V8/hotel/detail")
            .q_dyn("hotelid")
            .resp(RespKind::Json(vec!["hotel".into(), "rate".into()])),
        true,
    ));
    g.txn(kayak_spec(
        TxnSpec::get(Stack::OkHttp, "/api/search/V8/hotel/start").q_dyn("city"),
        false,
    ));
    g.txn(kayak_spec(
        TxnSpec::get(Stack::OkHttp, "/api/search/V8/car/poll")
            .q_dyn("searchid")
            .resp(RespKind::Json(vec!["cars".into(), "price".into()])),
        true,
    ));

    // ---- Travel Planner (11 GETs) ----
    for sub in [
        "/edit/trip",
        "/list",
        "/detail",
        "/share",
        "/delete",
        "/events",
        "/notes",
        "/flightstatus",
        "/checkin",
        "/summary",
        "/sync",
    ] {
        g.txn(kayak_spec(
            TxnSpec::get(Stack::OkHttp, &format!("/trips/v2{sub}")).q_dyn("tripid"),
            false,
        ));
    }

    // ---- Mobile Specific (12 GETs; one JSON: currency/allRates) ----
    g.txn(kayak_spec(
        TxnSpec::get(Stack::OkHttp, "/h/mobileapis/currency/allRates")
            .resp(RespKind::Json(vec!["rates".into(), "base".into()])),
        false,
    ));
    for sub in [
        "/directory/airlines",
        "/directory/airports",
        "/feedback",
        "/config",
        "/translations",
        "/notifications",
        "/pricealerts",
        "/profile",
        "/history",
        "/settings",
        "/appversion",
    ] {
        g.txn(kayak_spec(TxnSpec::get(Stack::OkHttp, &format!("/h/mobileapis{sub}")), false));
    }

    // ---- Advertising (1 GET; response handed to a webview, not parsed,
    // so it does not add a JSON signature beyond the six of §5.3) ----
    g.txn(kayak_spec(TxnSpec::get(Stack::OkHttp, "/s/mobileads").q_dyn("placement"), false));

    // ---- Facebook Auth (2 POSTs) ----
    for sub in ["/login", "/link"] {
        g.txn(kayak_spec(
            TxnSpec::get(Stack::OkHttp, &format!("/k/run/fbauth{sub}"))
                .method(HttpMethod::Post)
                .body(BodyKind::Form(vec![("fbtoken".into(), None)])),
            false,
        ));
    }

    // ---- Etc. (4 POSTs under /k) ----
    for sub in ["/cookie", "/metrics", "/crash", "/push"] {
        g.txn(kayak_spec(
            TxnSpec::get(Stack::OkHttp, &format!("/k{sub}"))
                .method(HttpMethod::Post)
                .body(BodyKind::Form(vec![("payload".into(), None)])),
            false,
        ));
    }

    // ---- remaining GETs to reach 39 (static assets) ----
    for sub in [
        "/res/logo.png",
        "/res/splash.png",
        "/res/fonts.css",
        "/res/strings.json",
        "/res/icons.png",
        "/res/legal.html",
    ] {
        g.txn(kayak_spec(TxnSpec::get(Stack::OkHttp, sub), false));
    }

    g.ballast(400);
    let mut app = g.finish();
    // Every Kayak route requires the app User-Agent (§5.3 access control).
    for r in &mut app.server.routes {
        r.require_header = Some(("User-Agent".to_string(), "kayakandroidphone/.*".to_string()));
    }
    // The okhttp emitter does not set headers; patch the generated IR to
    // add the User-Agent header on every builder — done by a dedicated
    // pass for fidelity with the case study.
    add_user_agent_headers(&mut app.apk);
    app
}

/// Standard Kayak trigger policy: automatic fuzzing only reaches the
/// subset marked `auto`.
fn kayak_spec(spec: TxnSpec, auto: bool) -> TxnSpec {
    let kind = if auto { TriggerKind::StandardUi } else { TriggerKind::CustomUi };
    spec.trigger(kind, true, auto)
}

/// Inserts `builder.header("User-Agent", "kayakandroidphone/8.1")` after
/// every okhttp `Request$Builder` URL call in the app's own classes.
fn add_user_agent_headers(apk: &mut extractocol_ir::Apk) {
    use extractocol_ir::{Call, CallKind, MethodRef, Stmt, Type, Value};
    for class in &mut apk.classes {
        if !class.name.starts_with(PKG) {
            continue;
        }
        for method in &mut class.methods {
            let mut i = 0;
            while i < method.body.len() {
                let is_url_call = method.body[i]
                    .call()
                    .map(|c| c.callee.class == "okhttp3.Request$Builder" && c.callee.name == "url")
                    .unwrap_or(false);
                if is_url_call {
                    let receiver = method.body[i].call().unwrap().receiver.clone();
                    let header_call = Stmt::Invoke(Call {
                        kind: CallKind::Virtual,
                        callee: MethodRef::new(
                            "okhttp3.Request$Builder",
                            "header",
                            vec![Type::string(), Type::string()],
                            Type::object("okhttp3.Request$Builder"),
                        ),
                        receiver,
                        args: vec![Value::str("User-Agent"), Value::str(USER_AGENT)],
                    });
                    // Inserting after position i: fix up branch targets.
                    for s in method.body.iter_mut() {
                        match s {
                            Stmt::If { target, .. } | Stmt::Goto { target } if *target > i => {
                                *target += 1;
                            }
                            Stmt::Switch { arms, default, .. } => {
                                for (_, t) in arms.iter_mut() {
                                    if *t > i {
                                        *t += 1;
                                    }
                                }
                                if *default > i {
                                    *default += 1;
                                }
                            }
                            _ => {}
                        }
                    }
                    method.body.insert(i + 1, header_call);
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn kayak_matches_category_structure() {
        let app = build();
        assert!(validate_apk(&app.apk).is_empty(), "{:?}", validate_apk(&app.apk));
        let c = app.truth.static_counts();
        assert_eq!(c.get, 39, "39 GET transactions (§5.3: 46 total)");
        assert_eq!(c.post, 10, "Table 5 lists 10 POST APIs across categories");
        assert_eq!(c.json, 6, "6 JSON responses (§5.3)");
        assert_eq!(c.pairs, 6);
        assert_eq!(app.truth.txns.len(), 49);
        // The category API counts of Table 5 sum correctly.
        let total: usize = CATEGORIES.iter().map(|(_, _, _, n)| n).sum();
        assert_eq!(total, 43);
        // Routes are User-Agent gated.
        assert!(app.server.routes.iter().all(|r| r.require_header.is_some()));
    }
}
