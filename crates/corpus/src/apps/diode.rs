//! Diode — "a popular open-source browser for Reddit" and the paper's
//! running slicing example (Fig. 3).
//!
//! The centerpiece is a faithful port of Fig. 3's
//! `doInBackground`: an `AsyncTask` that assembles the request URI through
//! nested branches — frontpage vs. search vs. subreddit, then the
//! `count/after/before` pagination suffixes — yielding **nine URI
//! patterns** that Extractocol combines into one regex, one of which is
//! `http://www.reddit.com/search/.json?q=(.*)&sort=(.*)`. Table 1 row:
//! 24 GET / 0 POST, 2 JSON responses, 5 pairs.

use crate::gen::{AppGen, RespKind, Stack, TxnSpec};
use crate::ground_truth::{
    AppSpec, ConcreteArg, PaperRow, RespTruth, RowCounts, Trigger, TriggerKind, TxnTruth,
};
use crate::server::Route;
use extractocol_http::HttpMethod;
use extractocol_ir::{CondOp, Type, Value};

const PKG: &str = "com.andrewshu.android.reddit";
const BASE: &str = "http://www.reddit.com";

fn row(get: usize, post: usize, query: usize, json: usize, xml: usize, pairs: usize) -> RowCounts {
    RowCounts { get, post, put: 0, delete: 0, query, json, xml, pairs }
}

/// Builds the Diode corpus app.
pub fn build() -> AppSpec {
    let mut g = AppGen::new("Diode", PKG, BASE);
    let mut g = {
        g = g.open_source().protocol("HTTP(S)");
        g.paper_row(PaperRow {
            extractocol: row(24, 0, 0, 2, 0, 5),
            manual: row(24, 0, 0, 2, 0, 5),
            third: row(24, 0, 0, 2, 0, 5),
        })
    };

    build_fig3_task(&mut g);

    // Comments listing: JSON response (the second JSON signature).
    g.txn(
        TxnSpec::get(Stack::Apache, "/comments")
            .variants(&[
                "/confidence.json",
                "/top.json",
                "/new.json",
                "/controversial.json",
                "/old.json",
                "/qa.json",
            ])
            .resp(RespKind::Json(vec![
                "kind".into(),
                "data".into(),
                "body".into(),
                "author".into(),
                "ups".into(),
            ])),
    );
    // Subreddit directory browsing: raw HTML-ish payloads.
    g.txn(
        TxnSpec::get(Stack::Apache, "/subreddits")
            .variants(&[
                "/mine.json",
                "/popular.json",
                "/new.json",
                "/gold.json",
                "/employee.json",
                "/default.json",
                "/featured.json",
            ])
            .resp(RespKind::Raw),
    );
    // Thumbnail fetch: dynamically-derived URI from the listing response.
    g.txn(TxnSpec::get(Stack::UrlConn, "/thumbs/t3_xyz.png").resp(RespKind::Raw));
    // CAPTCHA image fetch.
    g.txn(TxnSpec::get(Stack::UrlConn, "/captcha/abc123.png").resp(RespKind::Raw));

    // The remaining reddit API surface Diode touches without processing
    // response bodies (status-only endpoints) — Table 1 counts 24 GET
    // request signatures but only 5 request/response pairs.
    for path in [
        "/api/info.json",
        "/api/me.json",
        "/message/inbox/.json",
        "/message/unread/.json",
        "/message/sent/.json",
        "/user/self/about.json",
        "/user/self/liked.json",
        "/user/self/disliked.json",
        "/user/self/saved.json",
        "/user/self/comments.json",
        "/user/self/submitted.json",
        "/r/pics/about.json",
        "/r/pics/wiki/index.json",
        "/prefs/friends.json",
        "/api/v1/me/karma.json",
        "/api/trending_subreddits.json",
        "/live/updates.json",
        "/api/saved_categories.json",
        "/api/multi/mine.json",
    ] {
        g.txn(TxnSpec::get(Stack::Apache, path));
    }

    // The bulk of a real reddit client is UI/business logic the slices
    // leave behind (Fig. 3: slices are 6.3% of all code).
    g.ballast(220);

    g.finish()
}

/// The Fig. 3 `doInBackground`: nine URI patterns from nested branches.
fn build_fig3_task(g: &mut AppGen) {
    let task = format!("{PKG}.DownloadThreadsTask");
    let b = g.apk_builder();
    b.class(&task, |c| {
        c.extends("android.os.AsyncTask");
        let f_subreddit = c.field("mSubreddit", Type::string());
        let f_sort = c.field("mSortByUrl", Type::string());
        let f_sort_extra = c.field("mSortByUrlExtra", Type::string());
        let f_query = c.field("mSearchQuery", Type::string());
        let f_after = c.field("mAfter", Type::string());
        let f_before = c.field("mBefore", Type::string());
        let f_count = c.field("mCount", Type::string());
        c.method(
            "<init>",
            vec![Type::string(), Type::string(), Type::string(), Type::string(), Type::string()],
            Type::Void,
            |m| {
                let this = m.recv(&task);
                let sub = m.arg(0, "subreddit");
                let q = m.arg(1, "query");
                let after = m.arg(2, "after");
                let before = m.arg(3, "before");
                let count = m.arg(4, "count");
                m.put_field(this, &f_subreddit, sub);
                m.put_field(this, &f_query, q);
                m.put_field(this, &f_after, after);
                m.put_field(this, &f_before, before);
                m.put_field(this, &f_count, count);
                let sort = m.temp(Type::string());
                m.cstr(sort, "hot");
                m.put_field(this, &f_sort, sort);
                let extra = m.temp(Type::string());
                m.cstr(extra, "limit=25");
                m.put_field(this, &f_sort_extra, extra);
                m.ret_void();
            },
        );
        c.method("doInBackground", vec![Type::obj_root()], Type::obj_root(), |m| {
            let this = m.recv(&task);
            m.arg(0, "zzz");
            let subreddit = m.temp(Type::string());
            m.get_field(subreddit, this, &f_subreddit);
            let sb = m.temp(Type::object("java.lang.StringBuilder"));

            // if (FRONTPAGE.equals(mSubreddit)) { base "/" + sort + ".json?" + extra + "&" }
            let is_front = m.scall(
                "java.lang.String",
                "equals",
                vec![Value::str("__frontpage__"), Value::Local(subreddit)],
                Type::Bool,
            );
            m.iff(CondOp::Eq, is_front, Value::int(0), "not_front");
            m.new_obj_into(
                sb,
                "java.lang.StringBuilder",
                vec![Value::str("http://www.reddit.com/")],
            );
            let sort1 = m.temp(Type::string());
            m.get_field(sort1, this, &f_sort);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(sort1)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str(".json?")]);
            let extra1 = m.temp(Type::string());
            m.get_field(extra1, this, &f_sort_extra);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(extra1)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&")]);
            m.goto("pagination");

            // else if (SEARCH.equals(mSubreddit)) { "/search/.json?q=" + enc(query) + "&sort=" + s }
            m.label("not_front");
            let is_search = m.scall(
                "java.lang.String",
                "equals",
                vec![Value::str("__search__"), Value::Local(subreddit)],
                Type::Bool,
            );
            m.iff(CondOp::Eq, is_search, Value::int(0), "plain_subreddit");
            m.new_obj_into(
                sb,
                "java.lang.StringBuilder",
                vec![Value::str("http://www.reddit.com/search/.json?q=")],
            );
            let q = m.temp(Type::string());
            m.get_field(q, this, &f_query);
            let enc = m.scall(
                "java.net.URLEncoder",
                "encode",
                vec![Value::Local(q), Value::str("UTF-8")],
                Type::string(),
            );
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(enc)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&sort=")]);
            let sort2 = m.temp(Type::string());
            m.get_field(sort2, this, &f_sort);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(sort2)]);
            m.goto("pagination");

            // else { "/r/" + subreddit.trim() + "/" + sort + ".json?" + "&" }
            m.label("plain_subreddit");
            m.new_obj_into(
                sb,
                "java.lang.StringBuilder",
                vec![Value::str("http://www.reddit.com/r/")],
            );
            let trimmed = m.vcall(subreddit, "java.lang.String", "trim", vec![], Type::string());
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(trimmed)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("/")]);
            let sort3 = m.temp(Type::string());
            m.get_field(sort3, this, &f_sort);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(sort3)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str(".json?&")]);

            // pagination: if (mAfter != null) "count=" + c + "&after=" + a + "&"
            //             else if (mBefore != null) "count=" + c + "&before=" + b + "&"
            m.label("pagination");
            let after = m.temp(Type::string());
            m.get_field(after, this, &f_after);
            m.iff(CondOp::Eq, after, Value::null(), "try_before");
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("count=")]);
            let cnt1 = m.temp(Type::string());
            m.get_field(cnt1, this, &f_count);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(cnt1)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&after=")]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(after)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&")]);
            m.goto("send");
            m.label("try_before");
            let before = m.temp(Type::string());
            m.get_field(before, this, &f_before);
            m.iff(CondOp::Eq, before, Value::null(), "send");
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("count=")]);
            let cnt2 = m.temp(Type::string());
            m.get_field(cnt2, this, &f_count);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(cnt2)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&before=")]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(before)]);
            m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("&")]);

            // url = sb.toString(); request = new HttpGet(url);
            // response = mClient.execute(request); parseSubredditJSON(in);
            m.label("send");
            let url = m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
            let req = m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
            let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
            let resp = m.vcall(
                client,
                "org.apache.http.client.HttpClient",
                "execute",
                vec![Value::Local(req)],
                Type::object("org.apache.http.HttpResponse"),
            );
            let ent = m.vcall(
                resp,
                "org.apache.http.HttpResponse",
                "getEntity",
                vec![],
                Type::object("org.apache.http.HttpEntity"),
            );
            let body = m.scall(
                "org.apache.http.util.EntityUtils",
                "toString",
                vec![Value::Local(ent)],
                Type::string(),
            );
            m.vcall_void(this, &task, "parseSubredditJSON", vec![Value::Local(body)]);
            let r = m.temp(Type::obj_root());
            m.assign(r, extractocol_ir::Expr::Use(Value::null()));
            m.ret(r);
        });
        c.method("parseSubredditJSON", vec![Type::string()], Type::Void, |m| {
            m.recv(&task);
            let body = m.arg(0, "body");
            let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
            let data = m.vcall(
                j,
                "org.json.JSONObject",
                "getJSONObject",
                vec![Value::str("data")],
                Type::object("org.json.JSONObject"),
            );
            let children = m.vcall(
                data,
                "org.json.JSONObject",
                "getJSONArray",
                vec![Value::str("children")],
                Type::object("org.json.JSONArray"),
            );
            let first = m.vcall(
                children,
                "org.json.JSONArray",
                "getJSONObject",
                vec![Value::int(0)],
                Type::object("org.json.JSONObject"),
            );
            for key in ["title", "author", "url", "thumbnail", "permalink"] {
                let v = m.vcall(
                    first,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str(key)],
                    Type::string(),
                );
                let _ = v;
            }
            m.ret_void();
        });
    });
    // Diode normalizes search input through a `TextFilter` strategy. Three
    // implementors are hierarchy-visible but only `PassthroughFilter` is
    // ever constructed — the shape SPARK-style devirtualization exists
    // for: CHA must assume all three, points-to proves one. Every filter
    // returns its argument (the extra two just shuffle it through locals
    // and a scratch field), so the extracted signatures are identical
    // either way; only slice sizes differ.
    let filter_iface = format!("{PKG}.TextFilter");
    b.iface(&filter_iface, |c| {
        c.stub_method("apply", vec![Type::string()], Type::string());
    });
    b.class(&format!("{PKG}.PassthroughFilter"), |c| {
        c.implements(&filter_iface);
        c.method("apply", vec![Type::string()], Type::string(), |m| {
            m.recv(&format!("{PKG}.PassthroughFilter"));
            let s = m.arg(0, "s");
            m.ret(s);
        });
    });
    for short in ["TrimFilter", "CollapseFilter"] {
        let name = format!("{PKG}.{short}");
        b.class(&name, |c| {
            c.implements(&filter_iface);
            let scratch = c.field("mScratch", Type::string());
            c.method("apply", vec![Type::string()], Type::string(), |m| {
                let this = m.recv(&name);
                let s = m.arg(0, "s");
                let a = m.temp(Type::string());
                m.copy(a, s);
                m.put_field(this, &scratch, a);
                let out = m.temp(Type::string());
                m.get_field(out, this, &scratch);
                m.ret(out);
            });
        });
    }

    // The UI entry: builds the task from user input and executes it.
    let main = format!("{PKG}.Main");
    b.class(&main, |c| {
        c.extends("android.app.Activity");
        c.method(
            "refresh",
            vec![Type::string(), Type::string(), Type::string()],
            Type::Void,
            |m| {
                m.recv(&main);
                let sub = m.arg(0, "subreddit");
                let after = m.arg(1, "after");
                let before = m.arg(2, "before");
                let et = m.temp(Type::object("android.widget.EditText"));
                m.assign(et, extractocol_ir::Expr::New("android.widget.EditText".into()));
                let raw = m.vcall(et, "android.widget.EditText", "getText", vec![], Type::string());
                let filter = m.new_obj(&format!("{PKG}.PassthroughFilter"), vec![]);
                let query = m.icall(
                    filter,
                    &format!("{PKG}.TextFilter"),
                    "apply",
                    vec![Value::Local(raw)],
                    Type::string(),
                );
                let count = m.temp(Type::string());
                m.cstr(count, "25");
                let t = m.new_obj(
                    &format!("{PKG}.DownloadThreadsTask"),
                    vec![
                        Value::Local(sub),
                        Value::Local(query),
                        Value::Local(after),
                        Value::Local(before),
                        Value::Local(count),
                    ],
                );
                m.vcall_void(
                    t,
                    &format!("{PKG}.DownloadThreadsTask"),
                    "execute",
                    vec![Value::null()],
                );
                m.ret_void();
            },
        );
    });

    // Ground truth: 9 concrete example URIs (3 base forms × 3 pagination
    // forms), triggered through Main.refresh.
    let listing_json = r#"{
        "kind": "Listing",
        "data": { "children": [ { "title": "t", "author": "a",
            "url": "http://i.redd.it/x.png",
            "thumbnail": "http://www.reddit.com/thumbs/t3_xyz.png",
            "permalink": "/r/pics/1", "score": 42, "num_comments": 7 } ],
            "after": "t3_next", "before": null, "modhash": "unused" }
    }"#;
    g.record(
        TxnTruth {
            method: HttpMethod::Get,
            variants: 9,
            uri_examples: vec![
                // frontpage × {after, before, plain}
                "http://www.reddit.com/hot.json?limit=25&count=25&after=t3_a&".into(),
                "http://www.reddit.com/hot.json?limit=25&count=25&before=t3_b&".into(),
                "http://www.reddit.com/hot.json?limit=25&".into(),
                // search × {after, before, plain}
                "http://www.reddit.com/search/.json?q=user-input&sort=hot&count=25&after=t3_a&"
                    .into(),
                "http://www.reddit.com/search/.json?q=user-input&sort=hot&count=25&before=t3_b&"
                    .into(),
                "http://www.reddit.com/search/.json?q=user-input&sort=hot".into(),
                // subreddit × {after, before, plain}
                "http://www.reddit.com/r/pics/hot.json?&count=25&after=t3_a&".into(),
                "http://www.reddit.com/r/pics/hot.json?&count=25&before=t3_b&".into(),
                "http://www.reddit.com/r/pics/hot.json?&".into(),
            ],
            query_keys: vec![
                "limit".into(),
                "q".into(),
                "sort".into(),
                "count".into(),
                "after".into(),
                "before".into(),
            ],
            body_json_keys: vec![],
            form_keys: vec![],
            resp: RespTruth::Json(vec![
                "data".into(),
                "children".into(),
                "title".into(),
                "author".into(),
                "url".into(),
                "thumbnail".into(),
                "permalink".into(),
            ]),
            trigger: Trigger::new(TriggerKind::StandardUi, &main, "refresh", vec![]),
            variant_args: vec![
                vec![ConcreteArg::s("__frontpage__"), ConcreteArg::s("t3_a"), ConcreteArg::Null],
                vec![ConcreteArg::s("__frontpage__"), ConcreteArg::Null, ConcreteArg::s("t3_b")],
                vec![ConcreteArg::s("__frontpage__"), ConcreteArg::Null, ConcreteArg::Null],
                vec![ConcreteArg::s("__search__"), ConcreteArg::s("t3_a"), ConcreteArg::Null],
                vec![ConcreteArg::s("__search__"), ConcreteArg::Null, ConcreteArg::s("t3_b")],
                vec![ConcreteArg::s("__search__"), ConcreteArg::Null, ConcreteArg::Null],
                vec![ConcreteArg::s("pics"), ConcreteArg::s("t3_a"), ConcreteArg::Null],
                vec![ConcreteArg::s("pics"), ConcreteArg::Null, ConcreteArg::s("t3_b")],
                vec![ConcreteArg::s("pics"), ConcreteArg::Null, ConcreteArg::Null],
            ],
            setup: None,
            visible_manual: true,
            visible_auto: true,
            static_visible: true,
            body_requires_async: false,
        },
        vec![Route::json(
            HttpMethod::Get,
            "http://www\\.reddit\\.com/(hot|search/|r/).*",
            listing_json,
        )],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn diode_builds_and_matches_table1() {
        let app = build();
        assert!(validate_apk(&app.apk).is_empty());
        let c = app.truth.static_counts();
        assert_eq!(c.get, 24, "24 GET transactions (Table 1)");
        assert_eq!(c.post, 0);
        assert_eq!(c.json, 2, "listing + comments JSON responses");
        assert_eq!(c.pairs, 5);
        // Fig. 3: the listing transaction covers 9 URI examples.
        assert_eq!(app.truth.txns[0].variants, 9);
        assert_eq!(app.truth.txns[0].uri_examples.len(), 9);
    }
}
