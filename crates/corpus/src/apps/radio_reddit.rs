//! radio reddit — the Table 3 case study.
//!
//! Six transactions with the published dependency graph:
//!
//! 1. `GET http://www.reddit.com/api/info.json?…` — thing metadata; the
//!    response carries the *fullname* ids used by save/vote (`id` field).
//! 2. `GET http://www.radioreddit.com/<station>/status.json` — the Fig. 8
//!    trace: the app reads 16 of the 18 JSON keys (not `album`/`score`)
//!    and passes the station's `relay` URI to Android's `MediaPlayer`,
//!    which generates transaction 6.
//! 3. `POST https://ssl.reddit.com/api/login` with
//!    `user=…&passwd=…&api_type=json`; the JSON response's `modhash` and
//!    `cookie` feed transactions 4 and 5 (`uh` field + `Cookie` header).
//! 4. `POST http://www.reddit.com/api/(unsave|save)` — form `id`, `uh`.
//! 5. `POST http://www.reddit.com/api/vote` — form `id`, `dir`, `uh`.
//! 6. `GET (.*)` — the relay stream, response to the media player.

use crate::gen::AppGen;
use crate::ground_truth::{
    AppSpec, ConcreteArg, PaperRow, RespTruth, RowCounts, Trigger, TriggerKind, TxnTruth,
};
use crate::server::Route;
use extractocol_http::{Body, HttpMethod};
use extractocol_ir::{CondOp, Type, Value};

const PKG: &str = "com.radioreddit.android";

fn row(get: usize, post: usize, query: usize, json: usize, xml: usize, pairs: usize) -> RowCounts {
    RowCounts { get, post, put: 0, delete: 0, query, json, xml, pairs }
}

/// The 16 status.json keys the app reads (Fig. 8 highlights; `album` and
/// `score` are served but never parsed).
pub const STATUS_KEYS_READ: [&str; 16] = [
    "all_listeners",
    "listeners",
    "online",
    "playlist",
    "relay",
    "songs",
    "song",
    "artist",
    "download_url",
    "genre",
    "id",
    "preview_url",
    "reddit_title",
    "reddit_url",
    "redditor",
    "title",
];

/// Builds the radio reddit corpus app.
pub fn build() -> AppSpec {
    let mut g = AppGen::new("radio reddit", PKG, "http://www.radioreddit.com")
        .open_source()
        .protocol("HTTP(S)")
        .paper_row(PaperRow {
            extractocol: row(3, 3, 3, 4, 0, 4),
            manual: row(3, 3, 3, 4, 0, 4),
            third: row(3, 3, 3, 4, 0, 4),
        });

    let api = format!("{PKG}.Api");
    {
        let b = g.apk_builder();
        b.class(&api, |c| {
            c.extends("java.lang.Object");
            let f_modhash = c.field("mModhash", Type::string());
            let f_cookie = c.field("mCookie", Type::string());
            let f_fullname = c.field("mFullname", Type::string());
            let f_relay = c.field("mRelay", Type::string());

            // #1: thing info — the response's fullname feeds save/vote ids.
            c.method("fetchInfo", vec![], Type::Void, |m| {
                let this = m.recv(&api);
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpGet",
                    vec![Value::str("http://www.reddit.com/api/info.json?")],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let name = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("name")],
                    Type::string(),
                );
                m.put_field(this, &f_fullname, name);
                m.ret_void();
            });

            // #2: station status (Fig. 8) — relay URI goes to MediaPlayer.
            c.method("fetchStatus", vec![Type::string()], Type::Void, |m| {
                let this = m.recv(&api);
                let station = m.arg(0, "station");
                let sb = m.new_obj(
                    "java.lang.StringBuilder",
                    vec![Value::str("http://www.radioreddit.com/")],
                );
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::Local(station)]);
                m.vcall_void(
                    sb,
                    "java.lang.StringBuilder",
                    "append",
                    vec![Value::str("/status.json")],
                );
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpGet", vec![Value::Local(url)]);
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let ent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(ent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                for k in ["all_listeners", "listeners", "online", "playlist"] {
                    let v = m.vcall(
                        j,
                        "org.json.JSONObject",
                        "getString",
                        vec![Value::str(k)],
                        Type::string(),
                    );
                    let _ = v;
                }
                let relay = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("relay")],
                    Type::string(),
                );
                m.put_field(this, &f_relay, relay);
                let songs = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getJSONObject",
                    vec![Value::str("songs")],
                    Type::object("org.json.JSONObject"),
                );
                let arr = m.vcall(
                    songs,
                    "org.json.JSONObject",
                    "getJSONArray",
                    vec![Value::str("song")],
                    Type::object("org.json.JSONArray"),
                );
                let song = m.vcall(
                    arr,
                    "org.json.JSONArray",
                    "getJSONObject",
                    vec![Value::int(0)],
                    Type::object("org.json.JSONObject"),
                );
                for k in [
                    "artist",
                    "download_url",
                    "genre",
                    "id",
                    "preview_url",
                    "reddit_title",
                    "reddit_url",
                    "redditor",
                    "title",
                ] {
                    let v = m.vcall(
                        song,
                        "org.json.JSONObject",
                        "getString",
                        vec![Value::str(k)],
                        Type::string(),
                    );
                    let _ = v;
                }
                m.ret_void();
            });

            // #3: login — modhash/cookie stored for later requests.
            c.method("login", vec![Type::string(), Type::string()], Type::Void, |m| {
                let this = m.recv(&api);
                let user = m.arg(0, "user");
                let passwd = m.arg(1, "passwd");
                let list = m.new_obj("java.util.ArrayList", vec![]);
                let p1 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("user"), Value::Local(user)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p1)]);
                let p2 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("passwd"), Value::Local(passwd)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p2)]);
                let p3 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("api_type"), Value::str("json")],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p3)]);
                let ent = m.new_obj(
                    "org.apache.http.client.entity.UrlEncodedFormEntity",
                    vec![Value::Local(list)],
                );
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpPost",
                    vec![Value::str("https://ssl.reddit.com/api/login")],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setEntity",
                    vec![Value::Local(ent)],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let rent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(rent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let modhash = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("modhash")],
                    Type::string(),
                );
                m.put_field(this, &f_modhash, modhash);
                let cookie = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("cookie")],
                    Type::string(),
                );
                m.put_field(this, &f_cookie, cookie);
                let https = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("need_https")],
                    Type::string(),
                );
                let _ = https;
                m.ret_void();
            });

            // #4: save/unsave — disjunctive URI, form id/uh, Cookie header.
            c.method("save", vec![Type::Bool], Type::Void, |m| {
                let this = m.recv(&api);
                let unsave = m.arg(0, "unsave");
                let sb = m.new_obj(
                    "java.lang.StringBuilder",
                    vec![Value::str("http://www.reddit.com/api/")],
                );
                m.iff(CondOp::Eq, unsave, Value::int(0), "do_save");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("unsave")]);
                m.goto("built");
                m.label("do_save");
                m.vcall_void(sb, "java.lang.StringBuilder", "append", vec![Value::str("save")]);
                m.label("built");
                let url =
                    m.vcall(sb, "java.lang.StringBuilder", "toString", vec![], Type::string());
                let id = m.temp(Type::string());
                m.get_field(id, this, &f_fullname);
                let uh = m.temp(Type::string());
                m.get_field(uh, this, &f_modhash);
                let ck = m.temp(Type::string());
                m.get_field(ck, this, &f_cookie);
                let list = m.new_obj("java.util.ArrayList", vec![]);
                let p1 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("id"), Value::Local(id)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p1)]);
                let p2 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("uh"), Value::Local(uh)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p2)]);
                let ent = m.new_obj(
                    "org.apache.http.client.entity.UrlEncodedFormEntity",
                    vec![Value::Local(list)],
                );
                let req =
                    m.new_obj("org.apache.http.client.methods.HttpPost", vec![Value::Local(url)]);
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setEntity",
                    vec![Value::Local(ent)],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setHeader",
                    vec![Value::str("Cookie"), Value::Local(ck)],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                let resp = m.vcall(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                    Type::object("org.apache.http.HttpResponse"),
                );
                let rent = m.vcall(
                    resp,
                    "org.apache.http.HttpResponse",
                    "getEntity",
                    vec![],
                    Type::object("org.apache.http.HttpEntity"),
                );
                let body = m.scall(
                    "org.apache.http.util.EntityUtils",
                    "toString",
                    vec![Value::Local(rent)],
                    Type::string(),
                );
                let j = m.new_obj("org.json.JSONObject", vec![Value::Local(body)]);
                let err = m.vcall(
                    j,
                    "org.json.JSONObject",
                    "getString",
                    vec![Value::str("errors")],
                    Type::string(),
                );
                let _ = err;
                m.ret_void();
            });

            // #5: vote — form id/dir/uh, Cookie header.
            c.method("vote", vec![Type::string()], Type::Void, |m| {
                let this = m.recv(&api);
                let dir = m.arg(0, "dir");
                let id = m.temp(Type::string());
                m.get_field(id, this, &f_fullname);
                let uh = m.temp(Type::string());
                m.get_field(uh, this, &f_modhash);
                let ck = m.temp(Type::string());
                m.get_field(ck, this, &f_cookie);
                let list = m.new_obj("java.util.ArrayList", vec![]);
                let p1 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("id"), Value::Local(id)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p1)]);
                let p2 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("dir"), Value::Local(dir)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p2)]);
                let p3 = m.new_obj(
                    "org.apache.http.message.BasicNameValuePair",
                    vec![Value::str("uh"), Value::Local(uh)],
                );
                m.vcall_void(list, "java.util.ArrayList", "add", vec![Value::Local(p3)]);
                let ent = m.new_obj(
                    "org.apache.http.client.entity.UrlEncodedFormEntity",
                    vec![Value::Local(list)],
                );
                let req = m.new_obj(
                    "org.apache.http.client.methods.HttpPost",
                    vec![Value::str("http://www.reddit.com/api/vote")],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setEntity",
                    vec![Value::Local(ent)],
                );
                m.vcall_void(
                    req,
                    "org.apache.http.client.methods.HttpPost",
                    "setHeader",
                    vec![Value::str("Cookie"), Value::Local(ck)],
                );
                let client = m.new_obj("org.apache.http.impl.client.DefaultHttpClient", vec![]);
                m.vcall_void(
                    client,
                    "org.apache.http.client.HttpClient",
                    "execute",
                    vec![Value::Local(req)],
                );
                m.ret_void();
            });

            // #6: the relay stream — "the app then passes the station's
            // relay URI to Android's MediaPlayer" (Fig. 8).
            c.method("play", vec![], Type::Void, |m| {
                let this = m.recv(&api);
                let relay = m.temp(Type::string());
                m.get_field(relay, this, &f_relay);
                let mp = m.new_obj("android.media.MediaPlayer", vec![]);
                m.vcall_void(
                    mp,
                    "android.media.MediaPlayer",
                    "setDataSource",
                    vec![Value::Local(relay)],
                );
                m.vcall_void(mp, "android.media.MediaPlayer", "prepare", vec![]);
                m.vcall_void(mp, "android.media.MediaPlayer", "start", vec![]);
                m.ret_void();
            });
        });
    }

    // ---- ground truth and routes ----
    let t = |method,
             uri: &str,
             query: Vec<&str>,
             form: Vec<&str>,
             resp: RespTruth,
             trig_method: &str,
             args: Vec<ConcreteArg>,
             kind: TriggerKind| TxnTruth {
        method,
        variants: 1,
        uri_examples: vec![uri.to_string()],
        query_keys: query.into_iter().map(str::to_string).collect(),
        body_json_keys: vec![],
        form_keys: form.into_iter().map(str::to_string).collect(),
        resp,
        variant_args: vec![],
        setup: None,
        trigger: Trigger::new(kind, &api, trig_method, args),
        visible_manual: true,
        visible_auto: true,
        static_visible: true,
        body_requires_async: false,
    };

    // Fig. 8's exact status.json payload shape (18 keys, 2 unread).
    let status_json = r#"[{ "all_listeners":"99999", "listeners":"13586", "online":"TRUE",
        "playlist":"hiphop",
        "relay":"http://cdn.audiopump.co/radioreddit/hiphop_mp3_128k",
        "songs":{ "song":[{ "album": "", "artist": "stirus",
            "download_url": "http://www.radioreddit.com/dl/837",
            "genre": "Hip-Hop", "id": "837",
            "preview_url": "http://www.radioreddit.com/pv/837",
            "reddit_title": "stirus - Surviving Minds",
            "reddit_url": "http://redd.it/x1", "redditor": "sonus",
            "score": "6", "title": "Surviving Minds" }]} }]"#;

    g.record(
        t(
            HttpMethod::Get,
            "http://www.reddit.com/api/info.json?",
            vec![],
            vec![],
            RespTruth::Json(vec!["name".into()]),
            "fetchInfo",
            vec![],
            TriggerKind::StandardUi,
        ),
        vec![Route::json(
            HttpMethod::Get,
            "http://www\\.reddit\\.com/api/info\\.json.*",
            r#"{"name":"t3_song837","kind":"t3","extra":"unused"}"#,
        )],
    );
    g.record(
        t(
            HttpMethod::Get,
            "http://www.radioreddit.com/api/hiphop/status.json",
            vec![],
            vec![],
            RespTruth::Json(STATUS_KEYS_READ.iter().map(|s| s.to_string()).collect()),
            "fetchStatus",
            vec![ConcreteArg::s("api/hiphop")],
            TriggerKind::StandardUi,
        ),
        vec![Route::json(
            HttpMethod::Get,
            "http://www\\.radioreddit\\.com/.*status\\.json",
            status_json,
        )],
    );
    g.record(
        t(
            HttpMethod::Post,
            "https://ssl.reddit.com/api/login",
            vec![],
            vec!["user", "passwd", "api_type"],
            RespTruth::Json(vec!["modhash".into(), "cookie".into(), "need_https".into()]),
            "login",
            vec![ConcreteArg::s("alice"), ConcreteArg::s("hunter2")],
            TriggerKind::LoginFlow,
        ),
        vec![Route::json(
            HttpMethod::Post,
            "https://ssl\\.reddit\\.com/api/login",
            r#"{"modhash":"mh-4242","cookie":"ck-9999","need_https":"true"}"#,
        )],
    );
    g.record(
        t(
            HttpMethod::Post,
            "http://www.reddit.com/api/save",
            vec![],
            vec!["id", "uh"],
            RespTruth::Json(vec!["errors".into()]),
            "save",
            vec![ConcreteArg::Int(0)],
            TriggerKind::LoginFlow,
        ),
        vec![Route::json(
            HttpMethod::Post,
            "http://www\\.reddit\\.com/api/(save|unsave)",
            r#"{"errors":""}"#,
        )],
    );
    g.record(
        t(
            HttpMethod::Post,
            "http://www.reddit.com/api/vote",
            vec![],
            vec!["id", "dir", "uh"],
            RespTruth::None,
            "vote",
            vec![ConcreteArg::s("1")],
            TriggerKind::LoginFlow,
        ),
        vec![Route::json(
            HttpMethod::Post,
            "http://www\\.reddit\\.com/api/vote",
            r#"{"errors":""}"#,
        )],
    );
    g.record(
        t(
            HttpMethod::Get,
            "http://cdn.audiopump.co/radioreddit/hiphop_mp3_128k",
            vec![],
            vec![],
            RespTruth::None,
            "play",
            vec![],
            TriggerKind::StandardUi,
        ),
        vec![Route::ok(HttpMethod::Get, "http://cdn\\.audiopump\\.co/.*", Body::Binary(2048))],
    );

    g.ballast(70);
    g.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use extractocol_ir::validate::validate_apk;

    #[test]
    fn radio_reddit_matches_table3_shape() {
        let app = build();
        assert!(validate_apk(&app.apk).is_empty());
        assert_eq!(app.truth.txns.len(), 6, "six transactions (Table 3)");
        let c = app.truth.static_counts();
        assert_eq!(c.get, 3);
        assert_eq!(c.post, 3);
        assert_eq!(c.query, 3, "login/save/vote form bodies");
        assert_eq!(c.json, 4, "info, status, login, save JSON responses");
        assert_eq!(c.pairs, 4);
        // Fig. 8: 16 of 18 keys read.
        assert_eq!(STATUS_KEYS_READ.len(), 16);
    }
}
